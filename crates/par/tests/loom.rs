//! Loom model suite for the worker-pool queue/shutdown/waiting-caller
//! protocol (`magellan_par::Queue`).
//!
//! Built only with `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p magellan-par --test loom
//! ```
//!
//! Each test wraps its scenario in `loom::model`, which re-runs it
//! under `LOOM_MAX_ITER` (default 64) distinct deterministic yield
//! schedules. The vendored loom façade bounds every condvar wait, so
//! a lost wakeup in the protocol fails the test instead of hanging
//! the suite. The properties checked are the ones the production pool
//! relies on:
//!
//! * shutdown never abandons accepted jobs — workers drain the queue
//!   before exiting;
//! * shutdown wakes workers parked on the condvar;
//! * concurrent stealers (the waiting-caller path of `wait_step`)
//!   claim each job exactly once.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex, PoisonError};
use loom::thread;
use magellan_par::{Job, Queue};

#[test]
fn shutdown_drains_every_submitted_job() {
    loom::model(|| {
        let q = Arc::new(Queue::new());
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let done = Arc::clone(&done);
            let job: Job = Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
            q.submit(job);
        }
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.worker_loop())
        };
        // The worker may be anywhere — parked, mid-drain, not yet
        // scheduled. Whatever the interleaving, every accepted job
        // must run before the worker exits.
        q.shutdown();
        worker.join().expect("worker exits after shutdown");
        assert_eq!(done.load(Ordering::SeqCst), 3);
        assert!(q.is_empty());
    });
}

#[test]
fn shutdown_wakes_a_parked_worker() {
    loom::model(|| {
        let q = Arc::new(Queue::new());
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.worker_loop())
        };
        // With an empty queue the worker parks on the condvar (or is
        // about to); shutdown must always get it out. A lost wakeup
        // here trips the façade's bounded wait and fails the test.
        q.shutdown();
        worker.join().expect("parked worker wakes and exits");
    });
}

#[test]
fn concurrent_stealers_claim_each_job_exactly_once() {
    loom::model(|| {
        let q = Arc::new(Queue::new());
        let seen = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4usize {
            let seen = Arc::clone(&seen);
            let job: Job = Box::new(move || {
                seen.lock().unwrap_or_else(PoisonError::into_inner).push(i);
            });
            q.submit(job);
        }
        // Two racing stealers model waiting callers helping while
        // they block (`wait_step`); the main thread then drains the
        // leftovers. FIFO pops under one mutex must hand each job to
        // exactly one claimant.
        let stealers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    while let Some(job) = q.try_steal() {
                        job();
                    }
                })
            })
            .collect();
        for s in stealers {
            s.join().expect("stealer finishes");
        }
        while let Some(job) = q.try_steal() {
            job();
        }
        let mut got = seen.lock().unwrap_or_else(PoisonError::into_inner).clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    });
}

#[test]
fn worker_and_stealer_race_without_loss() {
    loom::model(|| {
        let q = Arc::new(Queue::new());
        let done = Arc::new(AtomicUsize::new(0));
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.worker_loop())
        };
        for _ in 0..3 {
            let done = Arc::clone(&done);
            let job: Job = Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
            q.submit(job);
        }
        // A waiting caller competes with the live worker for the same
        // queue — the mix of claims varies by schedule, the total
        // never does.
        while let Some(job) = q.try_steal() {
            job();
        }
        q.shutdown();
        worker.join().expect("worker exits after shutdown");
        assert_eq!(done.load(Ordering::SeqCst), 3);
    });
}
