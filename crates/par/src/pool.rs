//! Long-lived worker pool behind the fork-join façade.
//!
//! [`crate::par_map_collect`] used to open a fresh [`std::thread::scope`]
//! per call, paying one `clone`/`spawn`/`join` round-trip per worker per
//! kernel invocation. The study loop calls the metric kernels thousands
//! of times per run, so that fixed cost dominated cheap kernels (the
//! 8-worker `reciprocity` rows in `BENCH_metrics.json` lost to serial).
//! This module replaces the per-call scopes with one process-wide set of
//! long-lived workers sharing a FIFO job queue; a fork-join call now
//! costs one mutex push + condvar wake per remote chunk.
//!
//! # Lifecycle
//!
//! Workers are spawned lazily on the first parallel call —
//! `host_cores() - 1` of them (minimum 1), because the submitting caller
//! always executes chunk 0 itself. They park on a condvar when the queue
//! is empty and live for the rest of the process; a sequential program
//! that never crosses the parallel cutoff never spawns them. The
//! process-wide queue is never shut down — [`Queue::shutdown`] exists
//! for the model-checked instances the loom suite constructs (below).
//!
//! # Determinism
//!
//! The pool changes *where* chunks run, never what they compute or the
//! order results are assembled: [`run_chunks`] splits `0..len` into the
//! same contiguous chunks the scoped version used, tags each remote
//! result with its chunk index, and concatenates the per-chunk vectors
//! in index order after all of them arrive. Scheduling (which worker
//! runs which chunk, in which interleaving) is invisible in the output,
//! so the byte-identity guarantee is unchanged.
//!
//! # Deadlock freedom
//!
//! A caller waiting for remote chunks does not merely block: it first
//! drains the shared queue (running other submitters' jobs inline) and
//! only parks on its result channel once the queue is empty. A submitted
//! job is therefore always claimed either by a free worker or by a
//! waiting submitter — nested fork-joins (`join` of two closures that
//! each `par_map_collect`) cannot strand work on the queue even when
//! every pool worker is blocked inside a nested wait.
//!
//! # Model checking
//!
//! The queue/shutdown/waiting-caller protocol is an instantiable type
//! ([`Queue`]) rather than free functions over a global, so the loom
//! suite (`tests/loom.rs`, built with `RUSTFLAGS="--cfg loom"`) can
//! construct fresh queues and model-check the protocol: shutdown must
//! drain every submitted job and wake parked workers, and concurrent
//! stealers must claim each job exactly once. Under `cfg(loom)` the
//! `Mutex`/`Condvar` below come from the vendored `loom` façade, which
//! injects deterministic yields at every sync operation and converts
//! lost-wakeup hangs into panics; the production build uses `std`
//! directly and compiles the shim away.
//!
//! # Safety
//!
//! `std` offers no safe way to run a borrowing closure on a thread that
//! outlives its stack frame, so job boxes are lifetime-erased with one
//! `transmute` (the only `unsafe` in the workspace). The soundness
//! argument is the scoped-thread one, enforced by control flow instead
//! of types: [`run_chunks`] and [`run_pair`] do not return — normally or
//! by unwind — until every job they submitted has either run to
//! completion or been dropped, so no borrow captured by a job can
//! outlive the frame that owns it.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Once, OnceLock, PoisonError};

#[cfg(loom)]
use loom::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex, MutexGuard};

/// A lifetime-erased unit of work. Every job is wrapped in
/// `catch_unwind` by its submitter before erasure, so running one never
/// unwinds into the worker loop.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Everything guarded by the queue mutex: the FIFO of pending jobs and
/// the shutdown flag. Keeping the flag under the same mutex as the
/// jobs is what makes the condvar protocol lost-wakeup-free — a worker
/// only parks after observing (under the lock) that there is no job
/// *and* no shutdown, and [`Queue::shutdown`] flips the flag under
/// that same lock before notifying.
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The shared FIFO job queue workers and waiting submitters drain.
///
/// Instantiable so the loom suite can model-check the protocol on
/// fresh instances; production uses one process-wide [`Queue`] (see
/// [`queue`]) that is never shut down.
pub struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl Default for Queue {
    fn default() -> Self {
        Self::new()
    }
}

impl Queue {
    /// An empty queue, accepting jobs, not shut down.
    pub fn new() -> Self {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Locks the queue state, recovering from poisoning (jobs never
    /// unwind while holding the lock, but a defensive recovery keeps
    /// one broken test from cascading).
    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues a job and wakes one parked worker.
    pub fn submit(&self, job: Job) {
        self.lock_state().jobs.push_back(job);
        self.ready.notify_one();
    }

    /// Claims one queued job without blocking, for submitters helping
    /// while they wait.
    pub fn try_steal(&self) -> Option<Job> {
        self.lock_state().jobs.pop_front()
    }

    /// The number of jobs currently queued and unclaimed — a point-in-
    /// time snapshot for debug metadata, stale by the time it returns.
    pub fn len(&self) -> usize {
        self.lock_state().jobs.len()
    }

    /// Whether the queue currently holds no unclaimed jobs.
    ///
    /// Callers: the loom suite (via the `cfg(loom)` re-export) and
    /// the unit tests — the production build never asks.
    #[cfg_attr(not(any(test, loom)), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Worker body: pop a job or park until one arrives. Returns only
    /// after [`Queue::shutdown`] *and* the queue has been drained — a
    /// worker never abandons accepted jobs. The production workers run
    /// this on a never-shut-down queue, so they live for the process.
    pub fn worker_loop(&self) {
        loop {
            let job = {
                let mut state = self.lock_state();
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        break job;
                    }
                    if state.shutdown {
                        return;
                    }
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            job();
        }
    }

    /// Asks every worker to exit once the queue is drained. Jobs
    /// already submitted still run ([`Queue::worker_loop`] drains
    /// before exiting); used by the loom suite — the production queue
    /// is never shut down.
    #[cfg_attr(not(any(test, loom)), allow(dead_code))]
    pub fn shutdown(&self) {
        self.lock_state().shutdown = true;
        self.ready.notify_all();
    }
}

/// The process-wide queue, created on first use by [`queue`].
static Q: OnceLock<Queue> = OnceLock::new();
/// One-shot guard for spawning the process-wide workers.
static SPAWN: Once = Once::new();
/// How many pool workers were actually spawned (0 until the first
/// parallel call; spawn failures shrink the count, never block it).
static WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The process-wide queue, spawning the workers on first use.
fn queue() -> &'static Queue {
    let q = Q.get_or_init(Queue::new);
    SPAWN.call_once(|| {
        // The caller of every fork-join runs chunk 0 itself, so
        // `cores - 1` workers saturate the host; the minimum of one
        // keeps the pool real (and testable) on single-core hosts.
        let workers = crate::host_cores().saturating_sub(1).max(1);
        for i in 0..workers {
            // A failed spawn only shrinks the pool: waiting submitters
            // drain the queue themselves, so progress never depends on
            // any worker existing.
            let spawned = std::thread::Builder::new()
                .name(format!("magellan-par-{i}"))
                .spawn(move || q.worker_loop());
            if spawned.is_ok() {
                WORKERS.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    q
}

/// `(worker count, queue depth)` of the process-wide pool, without
/// forcing it into existence: `(0, 0)` until the first parallel call
/// spawns the workers. Feeds [`crate::pool_stats`].
pub(crate) fn stats() -> (usize, usize) {
    let depth = Q.get().map_or(0, Queue::len);
    (WORKERS.load(Ordering::Relaxed), depth)
}

/// Erases the borrow lifetime of a job box so it can cross onto a
/// long-lived worker.
///
/// # Safety
///
/// The caller must not return (normally or by unwind) until the job has
/// either executed to completion or been dropped — exactly the
/// guarantee [`std::thread::scope`] encodes in types. [`run_chunks`]
/// and [`run_pair`] uphold it by collecting every outstanding result
/// (or channel disconnect) before returning.
unsafe fn erase(job: Box<dyn FnOnce() + Send + '_>) -> Job {
    // SAFETY: lifetime-only transmute between identical fat-pointer
    // types; the borrow-validity obligation is the caller contract
    // documented above.
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) }
}

/// Runs one job-completion wait step for a submitter: take a finished
/// result if one is ready, otherwise help drain the queue, otherwise
/// park until a result arrives. Returns `None` when the channel is
/// drained and disconnected (all jobs accounted for).
fn wait_step<R>(rx: &Receiver<R>, q: &Queue) -> Option<R> {
    match rx.try_recv() {
        Ok(r) => return Some(r),
        Err(TryRecvError::Disconnected) => return None,
        Err(TryRecvError::Empty) => {}
    }
    if let Some(job) = q.try_steal() {
        job();
        return match rx.try_recv() {
            Ok(r) => Some(r),
            Err(_) => wait_step(rx, q),
        };
    }
    // Queue empty: every outstanding job is running on some thread, so
    // parking here cannot strand queued work (see module docs).
    rx.recv().ok()
}

/// The result of one chunk: its index and the mapped sub-vector (or the
/// panic payload it unwound with).
type ChunkResult<T> = (usize, std::thread::Result<Vec<T>>);

/// Maps `f` over `0..len` in `workers` contiguous chunks: chunks
/// `1..workers` go to the pool, chunk 0 runs on the caller, and the
/// pieces are concatenated in chunk order. Panics from any chunk are
/// re-raised (lowest chunk index first) only after every chunk has
/// finished, keeping the borrow contract of [`erase`].
pub(crate) fn run_chunks<T, F>(workers: usize, len: usize, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let chunk = len.div_ceil(workers.max(1));
    let q = queue();
    let (tx, rx) = channel::<ChunkResult<T>>();
    for w in 1..workers {
        let lo = (w * chunk).min(len);
        let hi = ((w + 1) * chunk).min(len);
        let tx: Sender<ChunkResult<T>> = tx.clone();
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let part = catch_unwind(AssertUnwindSafe(|| (lo..hi).map(f).collect::<Vec<T>>()));
            let _ = tx.send((w, part));
        });
        // SAFETY: this function collects every chunk result (or the
        // channel disconnect) below before returning, so the borrows of
        // `f` and `tx` captured by the job cannot outlive this frame.
        q.submit(unsafe { erase(job) });
    }
    drop(tx);
    let own = catch_unwind(AssertUnwindSafe(|| {
        (0..chunk.min(len)).map(f).collect::<Vec<T>>()
    }));
    let mut parts: Vec<Option<std::thread::Result<Vec<T>>>> = Vec::new();
    parts.resize_with(workers, || None);
    let mut pending = workers - 1;
    while pending > 0 {
        match wait_step(&rx, q) {
            Some((w, part)) => {
                parts[w] = Some(part);
                pending -= 1;
            }
            // Disconnected with results still pending: unreachable in
            // practice (each job sends exactly once), but if a job box
            // were dropped unrun its captures died with it, so
            // returning is sound either way.
            None => break,
        }
    }
    parts[0] = Some(own);
    let mut out = Vec::with_capacity(len);
    for part in parts {
        match part {
            Some(Ok(piece)) => out.extend(piece),
            // Deterministic re-raise: the lowest-indexed panicking
            // chunk wins, matching the join-in-spawn-order semantics of
            // the scoped implementation this replaced.
            Some(Err(payload)) => resume_unwind(payload),
            None => unreachable!("pool chunk vanished without a result"),
        }
    }
    out
}

/// Runs `fa` on the pool and `fb` on the caller, returning `(a, b)`
/// after both finish. Panics re-raise only after both closures have
/// completed (the borrow contract of [`erase`]); `fa`'s payload wins
/// when both unwind.
pub(crate) fn run_pair<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    let q = queue();
    let (tx, rx) = channel::<std::thread::Result<A>>();
    let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
        let result = catch_unwind(AssertUnwindSafe(fa));
        let _ = tx.send(result);
    });
    // SAFETY: the wait loop below does not return until the job's
    // result (or the channel disconnect) arrives, so the borrows
    // captured by `fa` cannot outlive this frame.
    q.submit(unsafe { erase(job) });
    let b = catch_unwind(AssertUnwindSafe(fb));
    let a = match wait_step(&rx, q) {
        Some(result) => result,
        None => unreachable!("pool job vanished without a result"),
    };
    match (a, b) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(payload), _) | (Ok(_), Err(payload)) => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_assemble_in_index_order() {
        let expect: Vec<u64> = (0..10_000u64).map(|i| i * 3 + 1).collect();
        for workers in [2, 3, 5, 8] {
            let got = run_chunks(workers, 10_000, &|i| (i as u64) * 3 + 1);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn remote_chunks_really_cross_threads() {
        // With >= 2 workers at least one chunk runs off-caller; detect
        // it via thread names (workers are named magellan-par-*). On a
        // loaded queue the caller may steal everything back, so accept
        // either outcome but require correctness.
        let hits = AtomicUsize::new(0);
        let got = run_chunks(4, 4096, &|i| {
            if std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("magellan-par-"))
            {
                hits.fetch_add(1, Ordering::Relaxed);
            }
            i
        });
        assert_eq!(got, (0..4096).collect::<Vec<_>>());
        // Not asserted: hits > 0 (scheduling-dependent); the counter
        // exists so the test exercises cross-thread capture soundly.
        let _ = hits.load(Ordering::Relaxed);
    }

    #[test]
    fn nested_fork_join_completes() {
        // A pair whose halves each fan out again: exercises the
        // help-while-waiting path that prevents queue deadlock.
        let (a, b) = run_pair(
            || run_chunks(3, 3_000, &|i| i as u64).iter().sum::<u64>(),
            || {
                run_chunks(3, 3_000, &|i| (i as u64) * 2)
                    .iter()
                    .sum::<u64>()
            },
        );
        let base: u64 = (0..3_000u64).sum();
        assert_eq!(a, base);
        assert_eq!(b, base * 2);
    }

    #[test]
    fn chunk_panic_reraises_lowest_index_first() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_chunks(4, 1_024, &|i| {
                if i >= 256 {
                    panic!("chunk-{}", i / 256);
                }
                i
            })
        }));
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "chunk-1");
    }

    #[test]
    fn pair_panic_prefers_pool_side() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_pair::<(), (), _, _>(|| panic!("side-a"), || panic!("side-b"))
        }));
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<&'static str>()
            .copied()
            .unwrap_or_default();
        assert_eq!(msg, "side-a");
    }

    #[test]
    fn borrowed_state_survives_pool_round_trip() {
        // The whole point of the lifetime erasure: jobs may borrow the
        // caller's stack. Sum a stack-owned slice through the pool.
        let data: Vec<u64> = (0..50_000u64).collect();
        let view = data.as_slice();
        let partials = run_chunks(6, view.len(), &|i| view[i]);
        assert_eq!(partials.iter().sum::<u64>(), (0..50_000u64).sum());
    }

    #[test]
    fn fresh_queue_drains_on_shutdown() {
        // The protocol the loom suite model-checks, smoke-tested here
        // on the plain std build: shutdown lets a worker drain every
        // accepted job before exiting.
        let q = std::sync::Arc::new(Queue::new());
        let done = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = std::sync::Arc::clone(&done);
            q.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert!(!q.is_empty());
        let worker = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.worker_loop())
        };
        q.shutdown();
        worker.join().expect("worker exits after shutdown");
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert_eq!(q.len(), 0);
    }
}
