//! # magellan-par
//!
//! Dependency-free deterministic fork-join primitives for the Magellan
//! metric kernels, built on a process-wide persistent worker pool (see
//! [`pool`] internals in `pool.rs`).
//!
//! The Magellan pipeline guarantees that two runs with the same seed
//! produce byte-identical outputs. Parallelism is only admissible when
//! it cannot perturb that guarantee, so this crate exposes nothing but
//! *deterministic* primitives:
//!
//! * [`par_map_collect`] — maps a pure function over `0..len` with
//!   static contiguous chunking and returns the results **in index
//!   order**. The output is the same `Vec` the sequential loop would
//!   produce, for every thread count, so any subsequent reduction that
//!   folds the `Vec` left-to-right (including floating-point sums) is
//!   bit-identical to the sequential run.
//! * [`par_map_collect_grained`] — the same map with an explicit
//!   per-worker work-size cutoff, for kernels whose per-item cost is
//!   far from the [`PAR_CUTOFF`] default (a 15 ns adjacency merge
//!   should not fan out at 64 items per worker; a multi-millisecond
//!   BFS batch should fan out even one item per worker).
//! * [`join`] — runs two independent closures, possibly concurrently,
//!   and returns both results as an ordered pair.
//!
//! Work-stealing *reductions*, atomic accumulators, and unordered
//! combining are deliberately absent: their results depend on
//! scheduling. (The pool lets waiting callers execute queued chunks —
//! that moves work between threads but never reorders the assembled
//! output.) The static lint rule D3 (see `magellan-lint`) keeps raw
//! `std::thread::spawn` out of the simulation and metric crates so
//! that this crate stays the single entry point for parallelism.
//!
//! ## Worker pool
//!
//! Earlier versions opened a fresh [`std::thread::scope`] per call;
//! spawn/join overhead then dominated cheap kernels called thousands
//! of times per study run. Workers are now spawned once, lazily, and
//! parked on a condvar between calls — a fork-join costs one queue
//! push and one wake per remote chunk. Scheduling remains invisible
//! in outputs; see `pool.rs` for the lifecycle, deadlock-freedom, and
//! safety arguments.
//!
//! ## Thread-count knob
//!
//! The worker count is resolved, in order, from:
//!
//! 1. a programmatic [`set_threads`] override (used by benches and the
//!    parallel-equivalence determinism test),
//! 2. the `MAGELLAN_THREADS` environment variable (read once per
//!    process),
//! 3. [`std::thread::available_parallelism`] (cached — the underlying
//!    syscall was measurable per-call overhead on µs-scale kernels).
//!
//! The knob is a *ceiling*, not a demand: the primitives additionally
//! clamp to the host's core count (eight requested workers on a
//! one-core host would only add scheduling overhead) and to the work
//! size, so each worker has at least one grain of items (see
//! [`effective_workers_grained`]). Because every primitive is
//! deterministic, none of this ever changes output bytes — only wall
//! clock.

#![deny(unsafe_code)]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

// The one module allowed to use `unsafe`: lifetime erasure for job
// boxes crossing onto long-lived workers, with a scoped-thread-style
// completion contract enforced by control flow. Everything else in the
// workspace stays `unsafe`-free (lint rule H1).
#[allow(unsafe_code)]
mod pool;

/// The instantiable pool queue, exported only for the loom model
/// suite (`tests/loom.rs`, built with `RUSTFLAGS="--cfg loom"`) so it
/// can construct and model-check fresh queues. Production callers go
/// through [`par_map_collect`] / [`join`] and never see this type.
#[cfg(loom)]
pub use pool::{Job, Queue};

/// A point-in-time snapshot of the process-wide worker pool, for
/// debug/metadata reporting (the bench harness embeds it in
/// `BENCH_metrics.json`). Both fields are racy observations: the pool
/// keeps running while you look at it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads successfully spawned — 0 until the first
    /// parallel call creates the pool, then fixed for the process.
    pub workers: usize,
    /// Jobs currently enqueued and not yet claimed by any worker or
    /// waiting submitter.
    pub queue_depth: usize,
}

/// Snapshots the worker pool without forcing it into existence: a
/// process that never crossed the parallel cutoff reports
/// `{ workers: 0, queue_depth: 0 }`.
pub fn pool_stats() -> PoolStats {
    let (workers, queue_depth) = pool::stats();
    PoolStats {
        workers,
        queue_depth,
    }
}

/// Programmatic thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Minimum items per worker for [`par_map_collect`]: below this,
/// dispatch cost dominates the work, and the tiny graphs of unit tests
/// should not pay it. Kernels with unusually cheap or expensive items
/// pick their own grain via [`par_map_collect_grained`].
pub const PAR_CUTOFF: usize = 64;

/// The host's [`std::thread::available_parallelism`], queried once per
/// process and cached.
///
/// The per-call syscall behind `available_parallelism` was a measurable
/// fraction of cheap kernels' runtime (the `reciprocity` 8-worker rows
/// in `BENCH_metrics.json` lost to serial partly on this overhead).
pub fn host_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Overrides the worker count for this process (`0` clears the
/// override, returning control to `MAGELLAN_THREADS` /
/// [`host_cores`]).
///
/// Intended for benchmarks and determinism tests that compare thread
/// counts within one process; production code should prefer the
/// environment variable.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The `MAGELLAN_THREADS` environment variable, parsed once per
/// process; 0 means unset or unparseable.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("MAGELLAN_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// The worker count the primitives will use right now.
///
/// Resolution order: [`set_threads`] override, then the
/// `MAGELLAN_THREADS` environment variable (values that fail to parse
/// or equal 0 are ignored; read once per process), then
/// [`host_cores`].
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    let env = env_threads();
    if env > 0 {
        return env;
    }
    host_cores()
}

/// The worker count [`par_map_collect`] would actually use for `len`
/// items: [`effective_workers_grained`] at the default [`PAR_CUTOFF`]
/// grain.
pub fn effective_workers(len: usize) -> usize {
    effective_workers_grained(len, PAR_CUTOFF)
}

/// The worker count a grained map would actually use: [`threads()`]
/// clamped to [`host_cores`] (a requested count above the core count
/// only adds context-switch overhead) and to `len / grain` (so every
/// worker owns at least `grain` items). A result of 1 or 0 means the
/// map runs inline.
pub fn effective_workers_grained(len: usize, grain: usize) -> usize {
    threads().min(host_cores()).min(len / grain.max(1))
}

/// Maps `f` over `0..len` and collects the results in index order.
///
/// The items are split into at most [`threads()`] contiguous chunks —
/// chunk 0 on the caller, the rest on the worker pool — and the
/// per-chunk vectors are concatenated in chunk order, so the returned
/// `Vec` is identical to `(0..len).map(f).collect()` for every thread
/// count. `f` must be a pure function of its index (it may read shared
/// state, never write).
///
/// The fan-out width is [`effective_workers`]`(len)`: the thread knob
/// clamped to the host core count and the work size, so short inputs
/// and oversubscribed configurations fall back to the inline
/// sequential loop instead of paying dispatch overhead for nothing.
/// Kernels whose per-item cost is far from the default should use
/// [`par_map_collect_grained`].
///
/// # Panics
///
/// Propagates a panic from any chunk (lowest chunk index first), after
/// all chunks have finished.
pub fn par_map_collect<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_collect_grained(len, PAR_CUTOFF, f)
}

/// [`par_map_collect`] with an explicit per-worker work-size cutoff:
/// the fan-out width is clamped so every worker owns at least `grain`
/// items (see [`effective_workers_grained`]).
///
/// Pick the grain so that one grain of items clearly outweighs one
/// pool dispatch (~µs): cheap per-item kernels (adjacency merges,
/// ns-scale) want grains in the thousands so small inputs never lose
/// to serial; expensive per-item kernels (BFS batches, ms-scale) want
/// `grain = 1`. The choice affects wall clock only — the output `Vec`
/// is identical to the sequential map for every grain and thread
/// count.
///
/// # Panics
///
/// Propagates a panic from any chunk (lowest chunk index first), after
/// all chunks have finished.
pub fn par_map_collect_grained<T, F>(len: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = effective_workers_grained(len, grain);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    pool::run_chunks(workers, len, &f)
}

/// Runs `fa` and `fb`, possibly concurrently, returning `(a, b)`.
///
/// With one worker — requested via the knob or all the host has — the
/// closures run sequentially in argument order. Otherwise `fa` is
/// dispatched to the worker pool and `fb` runs on the caller. Either
/// way the result pair is the same, so callers may treat this as a
/// drop-in replacement for `(fa(), fb())`.
///
/// # Panics
///
/// Propagates a panic from either closure, after both have finished.
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if threads().min(host_cores()) <= 1 {
        let a = fa();
        let b = fb();
        return (a, b);
    }
    pool::run_pair(fa, fb)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global override. Recovers from
    /// poisoning so one panicking test cannot cascade.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn map_matches_sequential_for_every_thread_count() {
        let _g = lock();
        let expect: Vec<u64> = (0..1000u64).map(|i| i * i).collect();
        for t in [1, 2, 3, 8, 16] {
            set_threads(t);
            let got = par_map_collect(1000, |i| (i as u64) * (i as u64));
            assert_eq!(got, expect, "threads = {t}");
        }
        set_threads(0);
    }

    #[test]
    fn float_reduction_is_bit_identical_across_thread_counts() {
        let _g = lock();
        // Left-fold of the returned Vec must be bit-identical because
        // the Vec itself is identical — the property every metric
        // kernel relies on.
        let f = |i: usize| ((i as f64) * 0.1).sin();
        set_threads(1);
        let seq: f64 = par_map_collect(4096, f).iter().sum();
        set_threads(7);
        let par: f64 = par_map_collect(4096, f).iter().sum();
        set_threads(0);
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn grained_map_matches_sequential_for_every_grain() {
        let _g = lock();
        let expect: Vec<usize> = (0..5_000).map(|i| i ^ 0x55).collect();
        set_threads(8);
        for grain in [1, 7, 64, 1024, 8192, usize::MAX] {
            let got = par_map_collect_grained(5_000, grain, |i| i ^ 0x55);
            assert_eq!(got, expect, "grain = {grain}");
        }
        set_threads(0);
    }

    #[test]
    fn short_inputs_run_inline() {
        let _g = lock();
        set_threads(8);
        let got = par_map_collect(5, |i| i + 1);
        set_threads(0);
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_input_yields_empty_vec() {
        let got: Vec<usize> = par_map_collect(0, |i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn join_returns_both_in_order() {
        let _g = lock();
        for t in [1, 4] {
            set_threads(t);
            let (a, b) = join(|| 2 + 2, || "b".to_owned());
            assert_eq!(a, 4);
            assert_eq!(b, "b");
        }
        set_threads(0);
    }

    #[test]
    fn workers_are_clamped_to_cores_and_work_size() {
        let _g = lock();
        set_threads(64);
        // An oversubscribed request never exceeds the host cores…
        assert!(effective_workers(1_000_000) <= host_cores());
        // …and small inputs never fan out: 100 items / 64-per-worker
        // rounds down to one worker, i.e. the inline path.
        assert!(effective_workers(100) <= 1);
        assert_eq!(effective_workers(PAR_CUTOFF - 1), 0);
        // A coarse grain keeps even large inputs inline.
        assert!(effective_workers_grained(8_000, 8_192) == 0);
        set_threads(0);
    }

    #[test]
    fn pool_stats_reports_workers_after_first_dispatch() {
        let _g = lock();
        if host_cores() < 2 {
            // A single-core host runs everything inline and never
            // spawns the pool; nothing to observe.
            return;
        }
        set_threads(4);
        // Force at least one real pool dispatch, then snapshot.
        let got = par_map_collect(4 * PAR_CUTOFF, |i| i);
        set_threads(0);
        assert_eq!(got.len(), 4 * PAR_CUTOFF);
        let stats = pool_stats();
        assert!(
            stats.workers >= 1 && stats.workers <= host_cores(),
            "workers = {}",
            stats.workers
        );
        // Depth is racy (other tests may be dispatching); only its
        // availability is asserted here.
        let _ = stats.queue_depth;
    }

    #[test]
    fn override_beats_env() {
        let _g = lock();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _g = lock();
        set_threads(4);
        let r = std::panic::catch_unwind(|| {
            par_map_collect(256, |i| {
                if i == 200 {
                    panic!("boom");
                }
                i
            })
        });
        set_threads(0);
        if let Err(e) = r {
            std::panic::resume_unwind(e)
        }
    }
}
