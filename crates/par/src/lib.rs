//! # magellan-par
//!
//! Dependency-free deterministic fork-join primitives for the Magellan
//! metric kernels, built on [`std::thread::scope`].
//!
//! The Magellan pipeline guarantees that two runs with the same seed
//! produce byte-identical outputs. Parallelism is only admissible when
//! it cannot perturb that guarantee, so this crate exposes nothing but
//! *deterministic* primitives:
//!
//! * [`par_map_collect`] — maps a pure function over `0..len` with
//!   static contiguous chunking and returns the results **in index
//!   order**. The output is the same `Vec` the sequential loop would
//!   produce, for every thread count, so any subsequent reduction that
//!   folds the `Vec` left-to-right (including floating-point sums) is
//!   bit-identical to the sequential run.
//! * [`join`] — runs two independent closures, possibly concurrently,
//!   and returns both results as an ordered pair.
//!
//! Work-stealing, atomic accumulators, and unordered reductions are
//! deliberately absent: their results depend on scheduling. The static
//! lint rule D3 (see `magellan-lint`) keeps raw `std::thread::spawn`
//! out of the simulation and metric crates so that this module stays
//! the single entry point for parallelism.
//!
//! ## Thread-count knob
//!
//! The worker count is resolved, in order, from:
//!
//! 1. a programmatic [`set_threads`] override (used by benches and the
//!    parallel-equivalence determinism test),
//! 2. the `MAGELLAN_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! The knob is a *ceiling*, not a demand: the primitives additionally
//! clamp to the host's [`std::thread::available_parallelism`] (eight
//! requested workers on a one-core host would only add scheduling
//! overhead) and to the work size, so each worker has at least
//! [`PAR_CUTOFF`] items (see [`effective_workers`]). Because every
//! primitive is deterministic, none of this ever changes output bytes
//! — only wall clock.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Programmatic thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Minimum items per worker: below this, spawn cost dominates the
/// work, and the tiny graphs of unit tests should not pay it.
pub const PAR_CUTOFF: usize = 64;

/// Overrides the worker count for this process (`0` clears the
/// override, returning control to `MAGELLAN_THREADS` /
/// `available_parallelism`).
///
/// Intended for benchmarks and determinism tests that compare thread
/// counts within one process; production code should prefer the
/// environment variable.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count the primitives will use right now.
///
/// Resolution order: [`set_threads`] override, then the
/// `MAGELLAN_THREADS` environment variable (values that fail to parse
/// or equal 0 are ignored), then [`std::thread::available_parallelism`]
/// (1 when unavailable).
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("MAGELLAN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The worker count [`par_map_collect`] would actually spawn for
/// `len` items: [`threads()`] clamped to the host's
/// [`std::thread::available_parallelism`] (a requested count above
/// the core count only adds context-switch overhead) and to
/// `len / PAR_CUTOFF` (so every worker owns at least [`PAR_CUTOFF`]
/// items). A result of 1 or 0 means the map runs inline.
pub fn effective_workers(len: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    threads().min(cores).min(len / PAR_CUTOFF)
}

/// Maps `f` over `0..len` and collects the results in index order.
///
/// The items are split into at most [`threads()`] contiguous chunks,
/// one scoped worker per chunk, and the per-chunk vectors are
/// concatenated in chunk order — so the returned `Vec` is identical to
/// `(0..len).map(f).collect()` for every thread count. `f` must be a
/// pure function of its index (it may read shared state, never write).
///
/// The spawn count is [`effective_workers`]`(len)`: the thread knob
/// clamped to the host core count and the work size, so short inputs
/// and oversubscribed configurations (more workers than cores, or
/// fewer than [`PAR_CUTOFF`] items each) fall back to the inline
/// sequential loop instead of paying spawn overhead for nothing.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn par_map_collect<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = effective_workers(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(len);
                    (lo..hi).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for h in handles {
            // Re-raise a worker panic with its original payload so the
            // caller sees the mapped closure's own message.
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Runs `fa` and `fb`, possibly concurrently, returning `(a, b)`.
///
/// With one worker — requested via the knob or all the host has — the
/// closures run sequentially in argument order. Either way the result
/// pair is the same, so callers may treat this as a drop-in
/// replacement for `(fa(), fb())`.
///
/// # Panics
///
/// Propagates a panic from either closure.
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if threads().min(cores) <= 1 {
        let a = fa();
        let b = fb();
        return (a, b);
    }
    std::thread::scope(|scope| {
        let ha = scope.spawn(fa);
        let b = fb();
        // Re-raise a panic from `fa` with its original payload.
        let a = match ha.join() {
            Ok(a) => a,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global override. Recovers from
    /// poisoning so one panicking test cannot cascade.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn map_matches_sequential_for_every_thread_count() {
        let _g = lock();
        let expect: Vec<u64> = (0..1000u64).map(|i| i * i).collect();
        for t in [1, 2, 3, 8, 16] {
            set_threads(t);
            let got = par_map_collect(1000, |i| (i as u64) * (i as u64));
            assert_eq!(got, expect, "threads = {t}");
        }
        set_threads(0);
    }

    #[test]
    fn float_reduction_is_bit_identical_across_thread_counts() {
        let _g = lock();
        // Left-fold of the returned Vec must be bit-identical because
        // the Vec itself is identical — the property every metric
        // kernel relies on.
        let f = |i: usize| ((i as f64) * 0.1).sin();
        set_threads(1);
        let seq: f64 = par_map_collect(4096, f).iter().sum();
        set_threads(7);
        let par: f64 = par_map_collect(4096, f).iter().sum();
        set_threads(0);
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn short_inputs_run_inline() {
        let _g = lock();
        set_threads(8);
        let got = par_map_collect(5, |i| i + 1);
        set_threads(0);
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_input_yields_empty_vec() {
        let got: Vec<usize> = par_map_collect(0, |i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn join_returns_both_in_order() {
        let _g = lock();
        for t in [1, 4] {
            set_threads(t);
            let (a, b) = join(|| 2 + 2, || "b".to_owned());
            assert_eq!(a, 4);
            assert_eq!(b, "b");
        }
        set_threads(0);
    }

    #[test]
    fn workers_are_clamped_to_cores_and_work_size() {
        let _g = lock();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        set_threads(64);
        // An oversubscribed request never exceeds the host cores…
        assert!(effective_workers(1_000_000) <= cores);
        // …and small inputs never spawn: 100 items / 64-per-worker
        // rounds down to one worker, i.e. the inline path.
        assert!(effective_workers(100) <= 1);
        assert_eq!(effective_workers(PAR_CUTOFF - 1), 0);
        set_threads(0);
    }

    #[test]
    fn override_beats_env() {
        let _g = lock();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _g = lock();
        set_threads(4);
        let r = std::panic::catch_unwind(|| {
            par_map_collect(256, |i| {
                if i == 200 {
                    panic!("boom");
                }
                i
            })
        });
        set_threads(0);
        if let Err(e) = r {
            std::panic::resume_unwind(e)
        }
    }
}
