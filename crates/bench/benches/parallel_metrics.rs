//! Thread-scaling benches of the Csr metric kernels.
//!
//! Complements `metrics_micro` (which times the public one-shot
//! wrappers): here one [`Csr`] snapshot is built per scale and the
//! deterministic fork-join kernels run over it at 1 and 8 workers, so
//! the delta is purely scheduling. `scripts/bench.sh` runs the
//! machine-readable variant (`bench_metrics` bin); this harness is the
//! quick interactive smoke check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use magellan_graph::clustering::clustering_coefficient_csr;
use magellan_graph::kcore::core_decomposition_csr;
use magellan_graph::paths::{average_path_length_csr, PathSampling, PathTreatment};
use magellan_graph::random::watts_strogatz;
use magellan_graph::reciprocity::garlaschelli_reciprocity_csr;
use magellan_graph::Csr;
use std::hint::black_box;

const THREADS: [usize; 2] = [1, 8];

fn bench_csr_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_csr_build");
    g.sample_size(20);
    for &n in &[500usize, 2_000, 8_000] {
        let ws = watts_strogatz(n, 8, 0.1, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &ws, |b, ws| {
            b.iter(|| black_box(Csr::from_digraph(black_box(ws))))
        });
    }
    g.finish();
}

fn bench_clustering_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_clustering");
    g.sample_size(15);
    for &n in &[500usize, 2_000, 8_000] {
        let csr = Csr::from_digraph(&watts_strogatz(n, 8, 0.1, 1));
        for t in THREADS {
            magellan_par::set_threads(t);
            g.bench_with_input(BenchmarkId::new(format!("t{t}"), n), &csr, |b, csr| {
                b.iter(|| black_box(clustering_coefficient_csr(black_box(csr))))
            });
        }
    }
    magellan_par::set_threads(0);
    g.finish();
}

fn bench_paths_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_apl_sampled64");
    g.sample_size(10);
    let sampling = PathSampling::Sources { count: 64, seed: 5 };
    for &n in &[500usize, 2_000, 8_000] {
        let csr = Csr::from_digraph(&watts_strogatz(n, 8, 0.1, 1));
        for t in THREADS {
            magellan_par::set_threads(t);
            g.bench_with_input(BenchmarkId::new(format!("t{t}"), n), &csr, |b, csr| {
                b.iter(|| {
                    black_box(average_path_length_csr(
                        black_box(csr),
                        PathTreatment::Undirected,
                        sampling,
                    ))
                })
            });
        }
    }
    magellan_par::set_threads(0);
    g.finish();
}

fn bench_reciprocity_and_kcore(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_reciprocity_kcore");
    g.sample_size(20);
    for &n in &[2_000usize, 8_000] {
        let csr = Csr::from_digraph(&watts_strogatz(n, 8, 0.1, 1));
        for t in THREADS {
            magellan_par::set_threads(t);
            g.bench_with_input(BenchmarkId::new(format!("rho_t{t}"), n), &csr, |b, csr| {
                b.iter(|| black_box(garlaschelli_reciprocity_csr(black_box(csr))))
            });
        }
        magellan_par::set_threads(1);
        g.bench_with_input(BenchmarkId::new("kcore", n), &csr, |b, csr| {
            b.iter(|| black_box(core_decomposition_csr(black_box(csr))))
        });
    }
    magellan_par::set_threads(0);
    g.finish();
}

criterion_group!(
    benches,
    bench_csr_build,
    bench_clustering_scaling,
    bench_paths_scaling,
    bench_reciprocity_and_kcore
);
criterion_main!(benches);
