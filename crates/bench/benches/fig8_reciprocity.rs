//! Fig. 8 — edge reciprocity.
//!
//! Prints the regenerated ρ for the whole topology and its intra-/
//! inter-ISP splits at the bench peak, then times graph construction,
//! the edge-split extraction, and the ρ computation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use magellan_analysis::graphs::{
    active_link_graph, inter_isp_link_graph, intra_isp_link_graph, NodeScope,
};
use magellan_bench::{bench_trace, peak_snapshot};
use magellan_graph::reciprocity::{garlaschelli_reciprocity, simple_reciprocity};
use std::hint::black_box;

fn print_figure() {
    let trace = bench_trace();
    let reports = peak_snapshot();
    let g = active_link_graph(&reports, NodeScope::AllKnown);
    let intra = intra_isp_link_graph(&g, &trace.db);
    let inter = inter_isp_link_graph(&g, &trace.db);
    println!("--- Fig 8 at bench peak ---");
    println!(
        "all   : n {} m {} r {:.3} rho {:?}",
        g.node_count(),
        g.edge_count(),
        simple_reciprocity(&g),
        garlaschelli_reciprocity(&g)
    );
    println!(
        "intra : n {} m {} rho {:?}",
        intra.node_count(),
        intra.edge_count(),
        garlaschelli_reciprocity(&intra)
    );
    println!(
        "inter : n {} m {} rho {:?}",
        inter.node_count(),
        inter.edge_count(),
        garlaschelli_reciprocity(&inter)
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    let trace = bench_trace();
    let reports = peak_snapshot();
    let g = active_link_graph(&reports, NodeScope::AllKnown);

    let mut grp = c.benchmark_group("fig8_reciprocity");
    grp.sample_size(30);
    grp.bench_function("graph_construction_all_known", |b| {
        b.iter(|| black_box(active_link_graph(black_box(&reports), NodeScope::AllKnown)))
    });
    grp.bench_function("rho", |b| {
        b.iter(|| black_box(garlaschelli_reciprocity(black_box(&g))))
    });
    grp.bench_function("isp_edge_split", |b| {
        b.iter(|| {
            let intra = intra_isp_link_graph(black_box(&g), &trace.db);
            let inter = inter_isp_link_graph(black_box(&g), &trace.db);
            black_box((intra.edge_count(), inter.edge_count()))
        })
    });
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
