//! Fig. 7 — small-world metrics of the stable-peer graph.
//!
//! Prints the regenerated clustering / path-length numbers for the
//! global graph and the Netcom subgraph at the bench peak, then times
//! graph construction, exact clustering, and exact/sampled path
//! lengths — the dominant costs of the whole study pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use magellan_analysis::graphs::{active_link_graph, isp_subgraph, NodeScope};
use magellan_bench::{bench_trace, peak_snapshot};
use magellan_graph::clustering::clustering_coefficient;
use magellan_graph::paths::{average_path_length, PathSampling, PathTreatment};
use magellan_graph::smallworld::{assess, SmallWorldConfig};
use magellan_netsim::Isp;
use std::hint::black_box;

fn print_figure() {
    let trace = bench_trace();
    let reports = peak_snapshot();
    let g = active_link_graph(&reports, NodeScope::StableOnly);
    let cfg = SmallWorldConfig::default();
    let global = assess(&g, &cfg);
    println!("--- Fig 7(A) at bench peak ---");
    println!(
        "n {} | und. edges {} | C {:.3} vs C_rand {:.4} | L {:?} vs L_rand {:?} | small world: {}",
        global.n,
        global.undirected_edges,
        global.c,
        global.c_rand,
        global.l,
        global.l_rand,
        global.is_small_world
    );
    let sub = isp_subgraph(&g, &trace.db, Isp::Netcom);
    let isp = assess(&sub, &cfg);
    println!("--- Fig 7(B): China Netcom subgraph ---");
    println!(
        "n {} | C {:.3} vs C_rand {:.4} | L {:?} vs L_rand {:?}",
        isp.n, isp.c, isp.c_rand, isp.l, isp.l_rand
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    let reports = peak_snapshot();
    let g = active_link_graph(&reports, NodeScope::StableOnly);

    let mut grp = c.benchmark_group("fig7_smallworld");
    grp.sample_size(20);
    grp.bench_function("graph_construction", |b| {
        b.iter(|| {
            black_box(active_link_graph(
                black_box(&reports),
                NodeScope::StableOnly,
            ))
        })
    });
    grp.bench_function("clustering_exact", |b| {
        b.iter(|| black_box(clustering_coefficient(black_box(&g))))
    });
    grp.bench_function("paths_exact", |b| {
        b.iter(|| {
            black_box(average_path_length(
                black_box(&g),
                PathTreatment::Undirected,
                PathSampling::Exact,
            ))
        })
    });
    grp.bench_function("paths_sampled_32", |b| {
        b.iter(|| {
            black_box(average_path_length(
                black_box(&g),
                PathTreatment::Undirected,
                PathSampling::Sources { count: 32, seed: 7 },
            ))
        })
    });
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
