//! Fig. 5 — evolution of average degrees.
//!
//! Prints the regenerated average partner/indegree/outdegree curve
//! over the bench window, then times one evolution point.

use criterion::{criterion_group, criterion_main, Criterion};
use magellan_analysis::classify::degree_triple;
use magellan_bench::{bench_trace, peak_snapshot, sample_instants};
use magellan_trace::SnapshotBuilder;
use std::hint::black_box;

fn print_figure() {
    let trace = bench_trace();
    println!("--- Fig 5: average degrees (bench window) ---");
    for &t in &sample_instants() {
        let snap = SnapshotBuilder::new(&trace.store).at(t);
        let reports: Vec<_> = snap.reports().collect();
        if reports.is_empty() {
            continue;
        }
        let (mut sp, mut si, mut so) = (0usize, 0usize, 0usize);
        for r in &reports {
            let (p, i, o) = degree_triple(r);
            sp += p;
            si += i;
            so += o;
        }
        let n = reports.len() as f64;
        println!(
            "{t}: partners {:5.1}  indegree {:5.1}  outdegree {:5.1}",
            sp as f64 / n,
            si as f64 / n,
            so as f64 / n
        );
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let reports = peak_snapshot();

    let mut g = c.benchmark_group("fig5_degree_evolution");
    g.sample_size(50);
    g.bench_function("average_degree_point", |b| {
        b.iter(|| {
            let (mut sp, mut si, mut so) = (0usize, 0usize, 0usize);
            for r in &reports {
                let (p, i, o) = degree_triple(black_box(r));
                sp += p;
                si += i;
                so += o;
            }
            black_box((sp, si, so))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
