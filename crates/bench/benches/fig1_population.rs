//! Fig. 1 — peer population statistics.
//!
//! Prints the regenerated Fig. 1(A)/(B) data for the bench window,
//! then times the snapshot-population computation (stable set +
//! known-IP union) that produces each point of the figure.

use criterion::{criterion_group, criterion_main, Criterion};
use magellan_bench::{bench_trace, peak_snapshot, sample_instants};
use magellan_trace::SnapshotBuilder;
use std::collections::HashSet;
use std::hint::black_box;

fn print_figure() {
    let trace = bench_trace();
    println!("--- Fig 1(A): concurrent population (bench window) ---");
    for &t in &sample_instants() {
        let snap = SnapshotBuilder::new(&trace.store).at(t);
        let stable = snap.stable_count();
        let total = snap.known_peers().len();
        println!("{t}: total {total:>6} stable {stable:>6}");
    }
    let mut day_ips: HashSet<u32> = HashSet::new();
    for r in trace.store.reports() {
        day_ips.insert(r.addr.as_u32());
        for p in &r.partners {
            day_ips.insert(p.addr.as_u32());
        }
    }
    println!(
        "--- Fig 1(B): distinct IPs on bench day: {} ---",
        day_ips.len()
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    let trace = bench_trace();
    let reports = peak_snapshot();

    let mut g = c.benchmark_group("fig1_population");
    g.sample_size(20);
    g.bench_function("snapshot_reconstruction", |b| {
        let builder = SnapshotBuilder::new(&trace.store);
        let t = magellan_netsim::SimTime::at(0, 21, 0);
        b.iter(|| black_box(builder.at(black_box(t)).stable_count()))
    });
    g.bench_function("known_peer_union", |b| {
        b.iter(|| {
            let mut known: HashSet<u32> = HashSet::new();
            for r in &reports {
                known.insert(r.addr.as_u32());
                for p in &r.partners {
                    known.insert(p.addr.as_u32());
                }
            }
            black_box(known.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
