//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! 1. **Selection policy** — quality-driven vs random partner
//!    selection: printed comparison of intra-ISP clustering (Fig. 6)
//!    and reciprocity (Fig. 8); the mechanism claim of §4.2.3.
//! 2. **Volunteer bootstrap** — with vs without the volunteer list:
//!    printed comparison of streaming quality (Fig. 3).
//! 3. **Estimators** — exact vs sampled clustering / path length:
//!    timed, with the approximation error printed.
//! 4. **Report interval** — 10- vs 20-minute reporting: printed
//!    population-estimate fidelity.

use criterion::{criterion_group, criterion_main, Criterion};
use magellan_analysis::graphs::{active_link_graph, NodeScope};
use magellan_analysis::study::MagellanStudy;
use magellan_bench::{peak_snapshot, quick_study};
use magellan_graph::clustering::{clustering_coefficient, sampled_clustering};
use magellan_graph::paths::{average_path_length, PathSampling, PathTreatment};
use std::hint::black_box;

fn ablation_selection_and_volunteer() {
    let base = quick_study(0xAB1);
    let quality = MagellanStudy::new(base.clone()).run();

    let mut random_cfg = base.clone();
    random_cfg.sim.random_selection = true;
    let random = MagellanStudy::new(random_cfg).run();

    let mut novol_cfg = base;
    novol_cfg.sim.disable_volunteer = true;
    let novol = MagellanStudy::new(novol_cfg).run();

    println!("--- ablation 1: selection policy (quality vs random) ---");
    println!(
        "intra-ISP indegree fraction: {:.3} vs {:.3} (baseline {:.3})",
        quality.fig6.indegree.mean(),
        random.fig6.indegree.mean(),
        quality.fig6.baseline
    );
    println!(
        "reciprocity rho            : {:.3} vs {:.3}",
        quality.fig8.all.mean(),
        random.fig8.all.mean()
    );
    let mut locality_cfg = quick_study(0xAB1);
    locality_cfg.sim.tracker_locality_fraction = 0.7;
    let locality = MagellanStudy::new(locality_cfg).run();
    println!("--- extension: ISP-locality-aware tracker (0.7) vs oblivious ---");
    println!(
        "intra-ISP partner pool     : {:.3} vs {:.3}",
        locality.fig6.pool.mean(),
        quality.fig6.pool.mean()
    );
    println!("--- ablation 2: volunteer bootstrap (on vs off) ---");
    println!(
        "CCTV1 satisfied fraction   : {:.3} vs {:.3}",
        quality.fig3.cctv1.mean(),
        novol.fig3.cctv1.mean()
    );
    println!(
        "mean partner count         : {:.1} vs {:.1}",
        quality.fig5.partners.mean(),
        novol.fig5.partners.mean()
    );
}

fn ablation_estimators(c: &mut Criterion) {
    let reports = peak_snapshot();
    let g = active_link_graph(&reports, NodeScope::StableOnly);
    let c_exact = clustering_coefficient(&g);
    let c_sampled = sampled_clustering(&g, 64, 9);
    let l_exact = average_path_length(&g, PathTreatment::Undirected, PathSampling::Exact);
    let l_sampled = average_path_length(
        &g,
        PathTreatment::Undirected,
        PathSampling::Sources { count: 32, seed: 9 },
    );
    println!("--- ablation 3: estimator accuracy on the bench graph ---");
    println!("C exact {c_exact:.4} vs sampled(64) {c_sampled:.4}");
    println!(
        "L exact {:?} vs sampled(32) {:?}",
        l_exact.map(|s| s.mean),
        l_sampled.map(|s| s.mean)
    );

    let mut grp = c.benchmark_group("ablation_estimators");
    grp.sample_size(20);
    grp.bench_function("clustering_exact", |b| {
        b.iter(|| black_box(clustering_coefficient(black_box(&g))))
    });
    grp.bench_function("clustering_sampled_64", |b| {
        b.iter(|| black_box(sampled_clustering(black_box(&g), 64, 9)))
    });
    grp.bench_function("paths_exact", |b| {
        b.iter(|| {
            black_box(average_path_length(
                black_box(&g),
                PathTreatment::Undirected,
                PathSampling::Exact,
            ))
        })
    });
    grp.bench_function("paths_sampled_32", |b| {
        b.iter(|| {
            black_box(average_path_length(
                black_box(&g),
                PathTreatment::Undirected,
                PathSampling::Sources { count: 32, seed: 9 },
            ))
        })
    });
    grp.finish();
}

fn ablation_report_interval() {
    // The report interval is a compile-spec constant of the trace
    // schema (§3.2), so the sensitivity probe varies the *sampling*
    // side instead: how much does halving the analysis cadence move
    // the population estimate?
    use magellan_netsim::SimDuration;
    let mut fine_cfg = quick_study(0xAB2);
    fine_cfg.sample_every = SimDuration::from_mins(30);
    let fine = MagellanStudy::new(fine_cfg).run();
    let mut coarse_cfg = quick_study(0xAB2);
    coarse_cfg.sample_every = SimDuration::from_mins(120);
    let coarse = MagellanStudy::new(coarse_cfg).run();
    println!("--- ablation 4: sampling cadence (30 vs 120 minutes) ---");
    println!(
        "mean stable population: {:.1} vs {:.1}",
        fine.fig1a.stable.mean(),
        coarse.fig1a.stable.mean()
    );
    println!(
        "mean reciprocity      : {:.3} vs {:.3}",
        fine.fig8.all.mean(),
        coarse.fig8.all.mean()
    );
}

fn bench(c: &mut Criterion) {
    ablation_selection_and_volunteer();
    ablation_report_interval();
    ablation_estimators(c);
}

criterion_group!(benches, bench);
criterion_main!(benches);
