//! Micro-benchmarks of the graph metrics on synthetic topologies.
//!
//! These size the cost of each metric independent of the streaming
//! pipeline: Erdős–Rényi, Watts–Strogatz and Barabási–Albert graphs
//! at several sizes, through clustering, path lengths (exact and
//! sampled), reciprocity, and power-law fitting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use magellan_graph::clustering::{clustering_coefficient, sampled_clustering};
use magellan_graph::paths::{average_path_length, PathSampling, PathTreatment};
use magellan_graph::powerlaw;
use magellan_graph::random::{barabasi_albert, gnm_directed, gnm_undirected, watts_strogatz};
use magellan_graph::reciprocity::garlaschelli_reciprocity;
use std::hint::black_box;

fn bench_clustering(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_clustering");
    g.sample_size(15);
    for &n in &[200usize, 800, 2_000] {
        let ws = watts_strogatz(n, 8, 0.1, 1);
        g.bench_with_input(BenchmarkId::new("exact_ws", n), &ws, |b, ws| {
            b.iter(|| black_box(clustering_coefficient(black_box(ws))))
        });
        g.bench_with_input(BenchmarkId::new("sampled_200_ws", n), &ws, |b, ws| {
            b.iter(|| black_box(sampled_clustering(black_box(ws), 200, 3)))
        });
    }
    g.finish();
}

fn bench_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_paths");
    g.sample_size(10);
    for &n in &[200usize, 800, 2_000] {
        let er = gnm_undirected(n, n * 4, 2);
        g.bench_with_input(BenchmarkId::new("exact_er", n), &er, |b, er| {
            b.iter(|| {
                black_box(average_path_length(
                    black_box(er),
                    PathTreatment::Undirected,
                    PathSampling::Exact,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("sampled_32_er", n), &er, |b, er| {
            b.iter(|| {
                black_box(average_path_length(
                    black_box(er),
                    PathTreatment::Undirected,
                    PathSampling::Sources { count: 32, seed: 5 },
                ))
            })
        });
    }
    g.finish();
}

fn bench_reciprocity(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_reciprocity");
    g.sample_size(20);
    for &n in &[500usize, 2_000, 8_000] {
        let d = gnm_directed(n, n * 6, 4);
        g.bench_with_input(BenchmarkId::new("rho_er", n), &d, |b, d| {
            b.iter(|| black_box(garlaschelli_reciprocity(black_box(d))))
        });
    }
    g.finish();
}

fn bench_powerlaw(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_powerlaw");
    g.sample_size(10);
    let ba = barabasi_albert(5_000, 3, 6);
    let degrees: Vec<usize> = ba.node_ids().map(|id| ba.undirected_degree(id)).collect();
    g.bench_function("assess_ba_5000", |b| {
        b.iter(|| black_box(powerlaw::assess(black_box(&degrees))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_clustering,
    bench_paths,
    bench_reciprocity,
    bench_powerlaw
);
criterion_main!(benches);
