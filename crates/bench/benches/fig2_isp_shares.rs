//! Fig. 2 — ISP membership shares.
//!
//! Prints the regenerated ISP share table for the bench window's peak
//! population, then times the share computation (IP→ISP lookups over
//! a snapshot's known-peer set).

use criterion::{criterion_group, criterion_main, Criterion};
use magellan_bench::{bench_trace, peak_snapshot};
use magellan_netsim::Isp;
use std::collections::HashSet;
use std::hint::black_box;

fn known_addrs() -> Vec<u32> {
    let reports = peak_snapshot();
    let mut known: HashSet<u32> = HashSet::new();
    for r in &reports {
        known.insert(r.addr.as_u32());
        for p in &r.partners {
            known.insert(p.addr.as_u32());
        }
    }
    let mut v: Vec<u32> = known.into_iter().collect();
    v.sort();
    v
}

fn print_figure() {
    let trace = bench_trace();
    let addrs = known_addrs();
    let mut counts = [0usize; 7];
    for &a in &addrs {
        counts[trace
            .db
            .lookup(magellan_netsim::PeerAddr::from_u32(a))
            .index()] += 1;
    }
    println!("--- Fig 2: ISP shares at the bench peak ---");
    for isp in Isp::ALL {
        println!(
            "{:<14} {:>5.1}%",
            isp.name(),
            100.0 * counts[isp.index()] as f64 / addrs.len().max(1) as f64
        );
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let trace = bench_trace();
    let addrs = known_addrs();

    let mut g = c.benchmark_group("fig2_isp_shares");
    g.sample_size(30);
    g.bench_function("share_computation", |b| {
        b.iter(|| {
            let mut counts = [0usize; 7];
            for &a in &addrs {
                counts[trace
                    .db
                    .lookup(magellan_netsim::PeerAddr::from_u32(black_box(a)))
                    .index()] += 1;
            }
            black_box(counts)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
