//! Fig. 3 — streaming quality (viewers at ≥90 % of the channel rate).
//!
//! Prints the regenerated satisfaction curve for CCTV1 and CCTV4 over
//! the bench window, then times the per-snapshot quality computation.

use criterion::{criterion_group, criterion_main, Criterion};
use magellan_bench::{bench_trace, peak_snapshot, sample_instants};
use magellan_trace::SnapshotBuilder;
use magellan_workload::ChannelId;
use std::hint::black_box;

fn print_figure() {
    let trace = bench_trace();
    println!("--- Fig 3: satisfied-viewer fraction (bench window) ---");
    for &t in &sample_instants() {
        let snap = SnapshotBuilder::new(&trace.store).at(t);
        let frac = |ch: ChannelId| {
            let viewers: Vec<_> = snap.reports_on_channel(ch).collect();
            if viewers.is_empty() {
                return f64::NAN;
            }
            viewers
                .iter()
                .filter(|r| r.achieves_rate(400.0, 0.9))
                .count() as f64
                / viewers.len() as f64
        };
        println!(
            "{t}: CCTV1 {:.2}  CCTV4 {:.2}",
            frac(ChannelId::CCTV1),
            frac(ChannelId::CCTV4)
        );
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let reports = peak_snapshot();

    let mut g = c.benchmark_group("fig3_quality");
    g.sample_size(50);
    g.bench_function("satisfaction_fraction", |b| {
        b.iter(|| {
            let viewers = reports
                .iter()
                .filter(|r| r.channel == ChannelId::CCTV1)
                .count();
            let good = reports
                .iter()
                .filter(|r| r.channel == ChannelId::CCTV1 && r.achieves_rate(400.0, 0.9))
                .count();
            black_box((viewers, good))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
