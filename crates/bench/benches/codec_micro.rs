//! Micro-benchmarks of the trace codecs: the wire datagram format and
//! the JSON-lines archive format, on realistic report sizes (the
//! paper's reports carry ~40-partner lists).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use magellan_bench::bench_trace;
use magellan_netsim::{PeerAddr, SimTime};
use magellan_trace::{jsonl, wire, BufferMap, PartnerRecord, PeerReport};
use magellan_workload::ChannelId;
use std::hint::black_box;

fn synthetic_report(partners: usize) -> PeerReport {
    PeerReport {
        time: SimTime::at(3, 21, 0),
        addr: PeerAddr::from_u32(0x0B01_0203),
        channel: ChannelId::CCTV1,
        buffer_map: BufferMap::new(123_456, 150),
        download_capacity_kbps: 2_048.5,
        upload_capacity_kbps: 512.25,
        recv_throughput_kbps: 398.0,
        send_throughput_kbps: 610.0,
        partners: (0..partners)
            .map(|k| PartnerRecord {
                addr: PeerAddr::from_u32(0x0C00_0000 + k as u32),
                tcp_port: 16_800 + k as u16,
                udp_port: 26_800 + k as u16,
                segments_sent: (k as u64 * 37) % 500,
                segments_received: (k as u64 * 17) % 500,
            })
            .collect(),
    }
}

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_micro");
    g.sample_size(60);
    for &partners in &[0usize, 10, 40, 120] {
        let report = synthetic_report(partners);
        let datagram = wire::encode(&report);
        let line = jsonl::to_json_line(&report);
        g.bench_with_input(
            BenchmarkId::new("wire_encode", partners),
            &report,
            |b, r| b.iter(|| black_box(wire::encode(black_box(r)))),
        );
        g.bench_with_input(
            BenchmarkId::new("wire_decode", partners),
            &datagram,
            |b, d| b.iter(|| black_box(wire::decode(&mut d.clone()).unwrap())),
        );
        g.bench_with_input(
            BenchmarkId::new("jsonl_encode", partners),
            &report,
            |b, r| b.iter(|| black_box(jsonl::to_json_line(black_box(r)))),
        );
        g.bench_with_input(BenchmarkId::new("jsonl_decode", partners), &line, |b, l| {
            b.iter(|| black_box(jsonl::from_json_line(black_box(l)).unwrap()))
        });
    }
    g.finish();
}

fn bench_store_roundtrip(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("trace_store");
    g.sample_size(10);
    g.bench_function("write_jsonl_full_trace", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(1 << 20);
            trace.store.write_jsonl(&mut buf).unwrap();
            black_box(buf.len())
        })
    });
    let mut archived = Vec::new();
    trace.store.write_jsonl(&mut archived).unwrap();
    g.bench_function("read_jsonl_full_trace", |b| {
        b.iter(|| {
            let store = magellan_trace::TraceStore::read_jsonl(black_box(&archived[..])).unwrap();
            black_box(store.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codecs, bench_store_roundtrip);
criterion_main!(benches);
