//! Fig. 4 — degree distributions of stable peers.
//!
//! Prints the regenerated partner/indegree/outdegree distributions at
//! the bench peak, then times histogram construction and the
//! power-law plausibility test the paper's §4.2.1 argument rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use magellan_analysis::classify::degree_triple;
use magellan_bench::peak_snapshot;
use magellan_graph::{powerlaw, DegreeHistogram};
use std::hint::black_box;

fn print_figure() {
    let reports = peak_snapshot();
    let mut partners = DegreeHistogram::new();
    let mut indeg = DegreeHistogram::new();
    let mut outdeg = DegreeHistogram::new();
    for r in &reports {
        let (p, i, o) = degree_triple(r);
        partners.record(p);
        indeg.record(i);
        outdeg.record(o);
    }
    println!("--- Fig 4 at bench peak (n = {}) ---", reports.len());
    println!(
        "(A) partners : spike {:?}, mean {:.1}, max {:?}",
        partners.spike(),
        partners.mean(),
        partners.max_degree()
    );
    println!(
        "(B) indegree : spike {:?}, mean {:.1}, p99 {:?}",
        indeg.spike(),
        indeg.mean(),
        indeg.quantile(0.99)
    );
    println!(
        "(C) outdegree: spike {:?}, mean {:.1}, max {:?}",
        outdeg.spike(),
        outdeg.mean(),
        outdeg.max_degree()
    );
    match powerlaw::assess(&partners.to_samples()) {
        Ok(v) => println!(
            "power-law verdict on (A): plausible = {} (ks {:.3}, threshold {:.3})",
            v.plausible, v.fit.ks, v.threshold
        ),
        Err(e) => println!("power-law fit not possible: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let reports = peak_snapshot();
    let samples: Vec<usize> = reports.iter().map(|r| degree_triple(r).0).collect();

    let mut g = c.benchmark_group("fig4_degree");
    g.sample_size(30);
    g.bench_function("classify_and_histogram", |b| {
        b.iter(|| {
            let mut h = DegreeHistogram::new();
            for r in &reports {
                h.record(degree_triple(black_box(r)).1);
            }
            black_box(h.total())
        })
    });
    g.bench_function("powerlaw_assess", |b| {
        b.iter(|| black_box(powerlaw::assess(black_box(&samples))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
