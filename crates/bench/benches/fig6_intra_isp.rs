//! Fig. 6 — intra-ISP fractions of active degrees.
//!
//! Prints the regenerated intra-ISP in/outdegree fraction curve, then
//! times the per-snapshot fraction computation (two ISP lookups per
//! partner record).

use criterion::{criterion_group, criterion_main, Criterion};
use magellan_analysis::graphs::{intra_isp_degree_fractions, isp_share_baseline};
use magellan_bench::{bench_trace, peak_snapshot, sample_instants};
use magellan_trace::SnapshotBuilder;
use std::hint::black_box;

fn print_figure() {
    let trace = bench_trace();
    println!(
        "--- Fig 6: intra-ISP degree fractions (mixing baseline {:.3}) ---",
        isp_share_baseline(&trace.db)
    );
    for &t in &sample_instants() {
        let snap = SnapshotBuilder::new(&trace.store).at(t);
        let reports: Vec<_> = snap.reports().collect();
        let (fin, fout) = intra_isp_degree_fractions(reports.iter().copied(), &trace.db);
        println!("{t}: indegree {fin:.3}  outdegree {fout:.3}");
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let trace = bench_trace();
    let reports = peak_snapshot();

    let mut g = c.benchmark_group("fig6_intra_isp");
    g.sample_size(50);
    g.bench_function("fraction_computation", |b| {
        b.iter(|| black_box(intra_isp_degree_fractions(black_box(&reports), &trace.db)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
