//! Regenerates every figure of the paper from one simulated study.
//!
//! ```text
//! cargo run --release -p magellan-bench --bin figures -- \
//!     [--scale 0.01] [--days 14] [--seed 2006] [--sample-mins 60] \
//!     [--fig all|1a|1b|2|3|4|5|6|7|8] [--csv-dir out/] [--svg-dir out/] \
//!     [--save-trace trace.jsonl] [--trace trace.jsonl]
//! ```
//!
//! `--save-trace` streams every report of the run to a JSON-lines
//! file; `--trace` skips the simulation and re-analyzes such an
//! archive (the workflow a measurement group actually has); `--svg-dir`
//! renders each figure as an SVG chart.
//!
//! At `--scale 1.0` this is the paper's full population (~100k
//! concurrent peers); the default 0.01 preserves every reported shape
//! at ~1000 concurrent peers and runs in minutes.

use magellan_analysis::study::{MagellanStudy, StudyConfig};
use magellan_analysis::timeseries::to_csv;
use magellan_netsim::SimDuration;

struct Args {
    scale: f64,
    days: u64,
    seed: u64,
    sample_mins: u64,
    fig: String,
    csv_dir: Option<String>,
    svg_dir: Option<String>,
    save_trace: Option<String>,
    trace: Option<String>,
    isp: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let get = |name: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    Args {
        scale: get("--scale").and_then(|v| v.parse().ok()).unwrap_or(0.01),
        days: get("--days").and_then(|v| v.parse().ok()).unwrap_or(14),
        seed: get("--seed").and_then(|v| v.parse().ok()).unwrap_or(2006),
        sample_mins: get("--sample-mins")
            .and_then(|v| v.parse().ok())
            .unwrap_or(60),
        fig: get("--fig").unwrap_or_else(|| "all".to_owned()),
        csv_dir: get("--csv-dir"),
        svg_dir: get("--svg-dir"),
        save_trace: get("--save-trace"),
        trace: get("--trace"),
        isp: get("--isp"),
    }
}

fn parse_isp(name: &str) -> Option<magellan_netsim::Isp> {
    use magellan_netsim::Isp;
    Isp::ALL.into_iter().find(|i| {
        i.name().eq_ignore_ascii_case(name) || format!("{i:?}").eq_ignore_ascii_case(name)
    })
}

fn main() {
    let args = parse_args();
    eprintln!(
        "running Magellan study: seed {}, scale {}, {} days, {}-minute samples",
        args.seed, args.scale, args.days, args.sample_mins
    );
    let mut cfg = StudyConfig {
        seed: args.seed,
        scale: args.scale,
        window_days: args.days,
        sample_every: SimDuration::from_mins(args.sample_mins),
        ..StudyConfig::default()
    };
    if let Some(name) = &args.isp {
        match parse_isp(name) {
            Some(isp) => cfg.isp_panel = isp,
            None => {
                eprintln!("unknown ISP '{name}' (try Netcom, Telecom, Unicom, Tietong, Edu)");
                std::process::exit(2);
            }
        }
    }
    let start = std::time::Instant::now();
    let report = if let Some(path) = &args.trace {
        // Replay an archived trace through the analysis.
        let file = std::fs::File::open(path).expect("open trace archive");
        let store = magellan_trace::TraceStore::read_jsonl(std::io::BufReader::new(file))
            .expect("parse trace archive");
        eprintln!("replaying {} archived reports from {path}", store.len());
        let db = magellan_netsim::IspDatabase::default();
        MagellanStudy::new(cfg).analyze_trace(&store, &db)
    } else if let Some(path) = &args.save_trace {
        // Simulate, archiving every report as it streams by.
        use std::io::Write as _;
        let file = std::fs::File::create(path).expect("create trace archive");
        let writer = std::sync::Mutex::new(std::io::BufWriter::new(file));
        let study = MagellanStudy::new(cfg.clone());
        let scenario = cfg.scenario();
        let mut sim = magellan_overlay::OverlaySim::new(scenario, cfg.sim.clone());
        let db = sim.isp_database().clone();
        let store = std::sync::Mutex::new(magellan_trace::TraceStore::new());
        let summary = sim
            .run(|r| {
                let mut w = writer.lock().expect("writer");
                w.write_all(magellan_trace::jsonl::to_json_line(&r).as_bytes())
                    .and_then(|_| w.write_all(b"\n"))
                    .expect("write trace archive");
                store.lock().expect("store").push(r);
            })
            .expect("archival scenario is self-consistent");
        writer
            .into_inner()
            .expect("writer")
            .flush()
            .expect("flush trace archive");
        eprintln!("archived trace to {path}");
        let mut report = study.analyze_trace(&store.into_inner().expect("store"), &db);
        report.sim = summary;
        report
    } else {
        MagellanStudy::new(cfg).run()
    };
    eprintln!("study complete in {:.1}s\n", start.elapsed().as_secs_f64());

    let want = |k: &str| args.fig == "all" || args.fig == k;
    if want("1a") {
        print!("{}", report.fig1a.render_text());
    }
    if want("1b") {
        print!("{}", report.fig1b.render_text());
    }
    if want("2") {
        print!("{}", report.fig2.render_text());
    }
    if want("3") {
        print!("{}", report.fig3.render_text());
    }
    if want("4") {
        print!("{}", report.fig4.render_text());
    }
    if want("5") {
        print!("{}", report.fig5.render_text());
    }
    if want("6") {
        print!("{}", report.fig6.render_text());
    }
    if want("7") {
        print!("{}", report.fig7.render_text());
    }
    if want("8") {
        print!("{}", report.fig8.render_text());
    }

    if let Some(dir) = &args.svg_dir {
        use magellan_analysis::plot::{
            render_bars_svg, render_loglog_svg, render_series_svg, PlotOptions,
        };
        std::fs::create_dir_all(dir).expect("create svg dir");
        let write = |name: &str, contents: String| {
            let path = format!("{dir}/{name}.svg");
            magellan_trace::atomic_write(std::path::Path::new(&path), contents.as_bytes())
                .expect("write svg");
            eprintln!("wrote {path}");
        };
        let opts = |title: &str, y: &str| PlotOptions {
            title: title.to_owned(),
            y_label: y.to_owned(),
            ..PlotOptions::default()
        };
        write(
            "fig1a_population",
            render_series_svg(
                &[&report.fig1a.total, &report.fig1a.stable],
                &opts("Fig 1(A): concurrent peers", "peers"),
            ),
        );
        write(
            "fig1b_daily_ips",
            render_bars_svg(
                &report
                    .fig1b
                    .total
                    .iter()
                    .map(|&(d, n)| (format!("d{d}"), n as f64))
                    .collect::<Vec<_>>(),
                &opts("Fig 1(B): distinct IPs per day", "distinct IPs"),
            ),
        );
        write(
            "fig2_isp_shares",
            render_bars_svg(
                &report
                    .fig2
                    .shares
                    .iter()
                    .map(|&(isp, s)| (isp.name().to_owned(), s * 100.0))
                    .collect::<Vec<_>>(),
                &opts("Fig 2: ISP shares (%)", "%"),
            ),
        );
        write(
            "fig3_quality",
            render_series_svg(
                &[&report.fig3.cctv1, &report.fig3.cctv4],
                &opts("Fig 3: viewers at >=90% of stream rate", "fraction"),
            ),
        );
        write(
            "fig5_degree_evolution",
            render_series_svg(
                &[
                    &report.fig5.partners,
                    &report.fig5.indegree,
                    &report.fig5.outdegree,
                ],
                &opts("Fig 5: average degrees", "degree"),
            ),
        );
        write(
            "fig6_intra_isp",
            render_series_svg(
                &[&report.fig6.indegree, &report.fig6.outdegree],
                &opts("Fig 6: intra-ISP degree fractions", "fraction"),
            ),
        );
        write(
            "fig7a_smallworld",
            render_series_svg(
                &[
                    &report.fig7.global.c,
                    &report.fig7.global.c_rand,
                    &report.fig7.global.l,
                    &report.fig7.global.l_rand,
                ],
                &opts("Fig 7(A): small-world metrics, global", "C / L"),
            ),
        );
        write(
            "fig7b_smallworld_isp",
            render_series_svg(
                &[
                    &report.fig7.isp.c,
                    &report.fig7.isp.c_rand,
                    &report.fig7.isp.l,
                    &report.fig7.isp.l_rand,
                ],
                &opts("Fig 7(B): small-world metrics, ISP subgraph", "C / L"),
            ),
        );
        write(
            "fig8_reciprocity",
            render_series_svg(
                &[&report.fig8.all, &report.fig8.intra, &report.fig8.inter],
                &opts("Fig 8: edge reciprocity", "rho"),
            ),
        );
        for snap in &report.fig4.snapshots {
            let slug: String = snap
                .label
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            let partners = snap.partners.pmf();
            let indeg = snap.indegree.pmf();
            let outdeg = snap.outdegree.pmf();
            write(
                &format!("fig4_degrees_{slug}"),
                render_loglog_svg(
                    &[
                        ("partners", partners.as_slice()),
                        ("indegree", indeg.as_slice()),
                        ("outdegree", outdeg.as_slice()),
                    ],
                    &opts(&format!("Fig 4 [{}]", snap.label), "fraction of peers"),
                ),
            );
        }
    }

    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let write = |name: &str, contents: String| {
            let path = format!("{dir}/{name}.csv");
            magellan_trace::atomic_write(std::path::Path::new(&path), contents.as_bytes())
                .expect("write csv");
            eprintln!("wrote {path}");
        };
        write("fig1a_population", report.fig1a.to_csv());
        write("fig3_quality", report.fig3.to_csv());
        write("fig5_degree_evolution", report.fig5.to_csv());
        write("fig6_intra_isp", report.fig6.to_csv());
        write("fig7a_smallworld_global", report.fig7.global.to_csv());
        write("fig7b_smallworld_isp", report.fig7.isp.to_csv());
        write("fig8_reciprocity", report.fig8.to_csv());
        // Fig. 2 and Fig. 4 are not time series; emit simple tables.
        let mut f2 = String::from("isp,share\n");
        for (isp, share) in &report.fig2.shares {
            f2.push_str(&format!("{},{share}\n", isp.name()));
        }
        write("fig2_isp_shares", f2);
        for snap in &report.fig4.snapshots {
            let slug: String = snap
                .label
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            let mut body = String::from("degree,partners_frac,indegree_frac,outdegree_frac\n");
            let max_d = snap
                .partners
                .max_degree()
                .max(snap.indegree.max_degree())
                .max(snap.outdegree.max_degree())
                .unwrap_or(0);
            for d in 0..=max_d {
                body.push_str(&format!(
                    "{d},{},{},{}\n",
                    snap.partners.fraction_at(d),
                    snap.indegree.fraction_at(d),
                    snap.outdegree.fraction_at(d)
                ));
            }
            write(&format!("fig4_degrees_{slug}"), body);
        }
        // The raw aligned evolution bundle.
        write(
            "evolution_all",
            to_csv(&[
                &report.fig1a.total,
                &report.fig1a.stable,
                &report.fig5.partners,
                &report.fig5.indegree,
                &report.fig5.outdegree,
                &report.fig6.indegree,
                &report.fig6.outdegree,
                &report.fig8.all,
            ]),
        );
    }
}
