//! Machine-readable metric-engine baseline: `BENCH_metrics.json`.
//!
//! Times the hot topology kernels on Watts–Strogatz graphs at three
//! scales, at 1 worker and 8 workers (via `magellan_par::set_threads`),
//! against the legacy `DiGraph`-walking implementations they replaced,
//! the `magellan-traced` ingest admission path (reports/sec through
//! one sans-I/O shard), plus the end-to-end latency of one study
//! sample instant. Emits one
//! JSON document on stdout; `scripts/bench.sh` redirects it to
//! `BENCH_metrics.json`.
//!
//! Numbers are wall-clock means from short calibrated loops — a
//! regression baseline, not a statistics engine. `host_cores` is
//! recorded so a reader can tell whether thread scaling was physically
//! possible on the measuring box (on a 1-core host threads=8 cannot
//! beat threads=1).

use magellan_analysis::study::MagellanStudy;
use magellan_bench::{bench_trace, quick_study, BENCH_DAYS};
use magellan_graph::clustering::clustering_coefficient_csr;
use magellan_graph::kcore::core_decomposition_csr;
use magellan_graph::paths::{average_path_length_csr, PathSampling, PathTreatment, UNREACHABLE};
use magellan_graph::random::watts_strogatz;
use magellan_graph::reciprocity::garlaschelli_reciprocity_csr;
use magellan_graph::{Csr, CsrDelta, DiGraph, IncrementalTopology, NodeId};
use magellan_netsim::SimTime;
use magellan_trace::Shard;
use std::collections::VecDeque;
use std::hint::black_box;
use std::time::Instant;

/// Mean ns per call of `f`, from a calibrated loop of at least ~200 ms.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    f(); // warm-up
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 200 || iters >= 1 << 22 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters = iters.saturating_mul(4);
    }
}

/// The legacy graph-level clustering loop: one `undirected_neighbors`
/// Vec allocation per row, re-walked through the nested `DiGraph`
/// adjacency. Kept here as the baseline the Csr kernels replaced.
fn legacy_clustering(g: &DiGraph<u32>) -> f64 {
    let hoods: Vec<Vec<NodeId>> = g.node_ids().map(|u| g.undirected_neighbors(u)).collect();
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for hood in &hoods {
        let k = hood.len();
        if k < 2 {
            continue;
        }
        let mut twice_links = 0usize;
        for u in hood {
            let other = &hoods[u.index()];
            let (mut i, mut j) = (0, 0);
            while i < other.len() && j < hood.len() {
                match other[i].cmp(&hood[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        twice_links += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        sum += twice_links as f64 / (k * (k - 1)) as f64;
    }
    sum / n as f64
}

/// The legacy per-source BFS: VecDeque over `DiGraph::undirected_neighbors`
/// (one Vec allocation per visited node).
fn legacy_bfs(g: &DiGraph<u32>, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    dist[src.index()] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()] + 1;
        for v in g.undirected_neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = d;
                queue.push_back(v);
            }
        }
    }
    dist
}

struct Row {
    name: &'static str,
    n: usize,
    threads: usize,
    ns_per_op: f64,
}

fn main() {
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let scales = [500usize, 2_000, 8_000];
    let thread_counts = [1usize, 8];
    let sampling = PathSampling::Sources { count: 64, seed: 5 };

    let mut rows: Vec<Row> = Vec::new();
    let mut legacy_rows: Vec<Row> = Vec::new();

    for &n in &scales {
        eprintln!("measuring n = {n} ...");
        let g = watts_strogatz(n, 8, 0.1, 1);
        let csr = Csr::from_digraph(&g);

        rows.push(Row {
            name: "csr_build",
            n,
            threads: 1,
            ns_per_op: time_ns(|| {
                black_box(Csr::from_digraph(black_box(&g)));
            }),
        });
        for &t in &thread_counts {
            magellan_par::set_threads(t);
            rows.push(Row {
                name: "clustering",
                n,
                threads: t,
                ns_per_op: time_ns(|| {
                    black_box(clustering_coefficient_csr(black_box(&csr)));
                }),
            });
            rows.push(Row {
                name: "apl_sampled64",
                n,
                threads: t,
                ns_per_op: time_ns(|| {
                    black_box(average_path_length_csr(
                        black_box(&csr),
                        PathTreatment::Undirected,
                        sampling,
                    ));
                }),
            });
            rows.push(Row {
                name: "reciprocity",
                n,
                threads: t,
                ns_per_op: time_ns(|| {
                    black_box(garlaschelli_reciprocity_csr(black_box(&csr)).ok());
                }),
            });
        }
        magellan_par::set_threads(1);
        rows.push(Row {
            name: "kcore",
            n,
            threads: 1,
            ns_per_op: time_ns(|| {
                black_box(core_decomposition_csr(black_box(&csr)));
            }),
        });
        // One bit-parallel traversal of 64 sources — the batched
        // kernel behind apl_sampled64, measured raw. Directly
        // comparable to the scalar-loop apl_sampled64 rows of older
        // baselines (64 BFS passes vs one 64-wide pass).
        let sources: Vec<NodeId> = (0..64.min(n)).map(NodeId::from_index).collect();
        rows.push(Row {
            name: "bfs_multi64",
            n,
            threads: 1,
            ns_per_op: time_ns(|| {
                black_box(magellan_graph::paths::bfs_multi64_csr(
                    black_box(&csr),
                    black_box(&sources),
                    PathTreatment::Undirected,
                ));
            }),
        });
        // Incremental snapshot engine: one boundary advance under a
        // study-shaped delta (every surviving link reweighted, ~1% of
        // links churned) vs the full rebuild it replaces. The timing
        // loop applies an A->B delta then its B->A inverse, so the
        // engine lands back on A every cycle; one sync = half a cycle.
        let nodes_a: Vec<u32> = (0..n as u32).collect();
        let mut edges_a: Vec<(u32, u32, u64)> = g
            .edges()
            .map(|e| (e.from.index() as u32, e.to.index() as u32, e.weight.max(1)))
            .collect();
        edges_a.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let cut = edges_a.len() / 100;
        let mut edges_b: Vec<(u32, u32, u64)> = edges_a[cut..]
            .iter()
            .map(|&(u, v, w)| (u, v, w + 1))
            .collect();
        edges_b.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let base = IncrementalTopology::from_snapshot(&nodes_a, &edges_a);
        let d_ab = CsrDelta::diff_snapshot(&base, &nodes_a, &edges_b);
        let other = IncrementalTopology::from_snapshot(&nodes_a, &edges_b);
        let d_ba = CsrDelta::diff_snapshot(&other, &nodes_a, &edges_a);
        let mut live = base;
        rows.push(Row {
            name: "study_incremental_sync",
            n,
            threads: 1,
            ns_per_op: time_ns(|| {
                live.apply_delta(black_box(&d_ab));
                live.apply_delta(black_box(&d_ba));
            }) / 2.0,
        });
        rows.push(Row {
            name: "study_incremental_rebuild",
            n,
            threads: 1,
            ns_per_op: time_ns(|| {
                black_box(IncrementalTopology::from_snapshot(
                    black_box(&nodes_a),
                    black_box(&edges_a),
                ));
            }),
        });

        legacy_rows.push(Row {
            name: "clustering_digraph_walk",
            n,
            threads: 1,
            ns_per_op: time_ns(|| {
                black_box(legacy_clustering(black_box(&g)));
            }),
        });
        let src = NodeId::from_index(0);
        legacy_rows.push(Row {
            name: "bfs_digraph_walk",
            n,
            threads: 1,
            ns_per_op: time_ns(|| {
                black_box(legacy_bfs(black_box(&g), src));
            }),
        });
        legacy_rows.push(Row {
            name: "bfs_csr",
            n,
            threads: 1,
            ns_per_op: time_ns(|| {
                black_box(magellan_graph::paths::bfs_distances_csr(
                    black_box(&csr),
                    src,
                    PathTreatment::Undirected,
                ));
            }),
        });
    }

    // Service ingest throughput — the per-datagram admission path of
    // magellan-traced (wire decode + window/dedup checks + bounded
    // pending queue), measured sans-I/O on one shard so the number is
    // pure CPU cost, not socket overhead. Each timed pass replays the
    // whole bench window through a fresh shard and drains it once at
    // the end, i.e. one full seal cycle. reports/sec is per shard;
    // the service scales it by --shards until the wire saturates.
    eprintln!("service ingest throughput ...");
    let ingest_payloads: Vec<Vec<u8>> = bench_trace()
        .store
        .reports()
        .iter()
        .map(|r| magellan_trace::wire::encode(r).to_vec())
        .collect();
    let ingest_window_end = SimTime::at(BENCH_DAYS, 0, 0);
    let ns_per_report = time_ns(|| {
        let mut shard = Shard::new(ingest_window_end, 1 << 20);
        for p in &ingest_payloads {
            black_box(shard.ingest_wire(black_box(p)));
        }
        black_box(shard.drain_below(ingest_window_end));
    }) / ingest_payloads.len() as f64;
    let ingest = (
        ingest_payloads.len(),
        ns_per_report,
        1e9 / ns_per_report.max(1.0),
    );

    // Lint-gate wall time — the fixed cost every scripts/check.sh run
    // pays. One cold run (incremental cache deleted) and one warm run
    // (cache reused); the gap is what the cache buys. Rows are empty
    // when the release binary is missing (bench.sh builds it).
    let lint_bin = std::path::Path::new("target/release/magellan-lint");
    let mut lint_rows: Vec<(&str, f64)> = Vec::new();
    if lint_bin.is_file() {
        let _ = std::fs::remove_file("target/magellan-lint-cache.v3");
        for phase in ["cold", "warm"] {
            eprintln!("lint gate, {phase} cache ...");
            let start = Instant::now();
            let status = std::process::Command::new(lint_bin)
                .stdout(std::process::Stdio::null())
                .status();
            match status {
                Ok(s) if s.success() => {
                    lint_rows.push((phase, start.elapsed().as_secs_f64() * 1e3));
                }
                _ => {
                    eprintln!("lint gate {phase} run failed; dropping lint rows");
                    lint_rows.clear();
                    break;
                }
            }
        }
    } else {
        eprintln!("target/release/magellan-lint missing; skipping lint rows");
    }

    // End-to-end: one full quick study (12 sample boundaries) per
    // thread count. The study includes the simulation itself, so this
    // is the pipeline latency a user actually sees.
    let mut end_to_end = Vec::new();
    for &t in &thread_counts {
        eprintln!("end-to-end study, threads = {t} ...");
        magellan_par::set_threads(t);
        let study = MagellanStudy::new(quick_study(0xBEEF));
        let start = Instant::now();
        let report = black_box(study.run());
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        let samples = report.fig1a.total.len().max(1);
        end_to_end.push((t, total_ms, samples));
    }
    magellan_par::set_threads(0);

    // Debug metadata: the worker pool as the studies above left it.
    // Workers spawn lazily on first dispatch and live for the process,
    // so after the end-to-end runs this records how many threads the
    // baseline actually exercised; queue_depth should read 0 between
    // dispatches (a nonzero value here means a wedged drain).
    let pool = magellan_par::pool_stats();

    // Hand-rolled JSON (no serializer dependency in the bench crate).
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!(
        "  \"pool\": {{\"workers\": {}, \"queue_depth\": {}}},\n",
        pool.workers, pool.queue_depth
    ));
    out.push_str(&format!(
        "  \"threads_measured\": [{}],\n",
        thread_counts.map(|t| t.to_string()).join(", ")
    ));
    let emit = |rows: &[Row]| {
        rows.iter()
            .map(|r| {
                format!(
                    "    {{\"name\": \"{}\", \"n\": {}, \"threads\": {}, \"ns_per_op\": {:.1}}}",
                    r.name, r.n, r.threads, r.ns_per_op
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    out.push_str("  \"kernels\": [\n");
    out.push_str(&emit(&rows));
    out.push_str("\n  ],\n");
    out.push_str("  \"legacy_baseline\": [\n");
    out.push_str(&emit(&legacy_rows));
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"service_ingest\": {{\"reports\": {}, \"ns_per_report\": {:.1}, \"reports_per_sec\": {:.0}}},\n",
        ingest.0, ingest.1, ingest.2
    ));
    out.push_str("  \"lint_gate\": [\n");
    out.push_str(
        &lint_rows
            .iter()
            .map(|(phase, ms)| format!("    {{\"phase\": \"{phase}\", \"wall_ms\": {ms:.1}}}"))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    out.push_str("\n  ],\n");
    out.push_str("  \"end_to_end_study\": [\n");
    out.push_str(
        &end_to_end
            .iter()
            .map(|(t, ms, samples)| {
                format!(
                    "    {{\"threads\": {t}, \"total_ms\": {ms:.1}, \"samples\": {samples}, \"ms_per_sample\": {:.2}}}",
                    ms / *samples as f64
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    out.push_str("\n  ]\n}\n");
    print!("{out}");
}
