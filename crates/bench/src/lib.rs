//! Shared fixtures for the benchmark harness.
//!
//! Every figure bench needs the same two inputs: a trace produced by
//! a small simulated study window, and snapshots reconstructed from
//! it. Building the trace costs seconds, so it is computed once per
//! process in a [`std::sync::OnceLock`] and shared.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use magellan_analysis::study::StudyConfig;
use magellan_netsim::{SimDuration, SimTime, StudyCalendar};
use magellan_overlay::{OverlaySim, SimConfig};
use magellan_trace::{PeerReport, SnapshotBuilder, TraceStore};
use magellan_workload::{DiurnalProfile, Scenario};
use std::sync::OnceLock;

/// Scale of the shared bench trace: ~120 concurrent peers.
pub const BENCH_SCALE: f64 = 0.0012;
/// Days simulated for the shared bench trace.
pub const BENCH_DAYS: u64 = 1;

/// The shared fixture: a trace store plus the sim's ISP database.
pub struct BenchTrace {
    /// All reports of the bench window.
    pub store: TraceStore,
    /// ISP database the run allocated addresses from.
    pub db: magellan_netsim::IspDatabase,
}

static TRACE: OnceLock<BenchTrace> = OnceLock::new();

/// The scenario the shared trace was generated from.
pub fn bench_scenario() -> Scenario {
    Scenario::builder(0xBEEF, BENCH_SCALE)
        .calendar(StudyCalendar {
            window_days: BENCH_DAYS,
        })
        .build()
}

/// Returns (building on first call) the shared bench trace.
pub fn bench_trace() -> &'static BenchTrace {
    TRACE.get_or_init(|| {
        let mut sim = OverlaySim::new(bench_scenario(), SimConfig::default());
        let db = sim.isp_database().clone();
        let (store, _) = sim
            .run_collecting()
            .expect("bench scenario is self-consistent");
        BenchTrace { store, db }
    })
}

/// The evening-peak snapshot of the shared trace, as owned reports.
pub fn peak_snapshot() -> Vec<PeerReport> {
    let trace = bench_trace();
    let t = SimTime::at(0, 21, 0);
    let snap = SnapshotBuilder::new(&trace.store).at(t);
    let mut reports: Vec<PeerReport> = snap.reports().cloned().collect();
    reports.sort_by_key(|r| r.addr);
    reports
}

/// Snapshot instants spread over the bench window (hourly).
pub fn sample_instants() -> Vec<SimTime> {
    (1..BENCH_DAYS * 24)
        .map(|h| SimTime::ORIGIN + SimDuration::from_hours(h))
        .collect()
}

/// A short study config matching the shared trace, for end-to-end
/// pipeline benches and ablation comparisons.
pub fn quick_study(seed: u64) -> StudyConfig {
    StudyConfig {
        seed,
        scale: BENCH_SCALE,
        window_days: BENCH_DAYS,
        sample_every: SimDuration::from_hours(2),
        degree_captures: vec![
            ("9am".into(), SimTime::at(0, 9, 0)),
            ("9pm".into(), SimTime::at(0, 21, 0)),
        ],
        min_graph_nodes: 10,
        ..StudyConfig::default()
    }
}

/// A flat-diurnal scenario used by micro benches that want steady
/// population.
pub fn flat_scenario(seed: u64, scale: f64, days: u64) -> Scenario {
    Scenario::builder(seed, scale)
        .calendar(StudyCalendar { window_days: days })
        .diurnal(DiurnalProfile::flat())
        .flash_crowds(vec![])
        .build()
}
