//! Property tests over the networked ingest path: the framed-TCP
//! codec and the UDP datagram path must never panic on truncated,
//! bit-flipped, duplicated, or reordered input; a corrupt datagram
//! must cost at most the one report it carried; and the service
//! accounting must balance no matter what arrives.

use magellan_netsim::{PeerAddr, SimDuration, SimTime};
use magellan_trace::codec::{
    decode_client_msg, decode_reply, encode_client_msg, encode_reply, frame,
};
use magellan_trace::{wire, BufferMap, ClientMsg, FrameReader, PeerReport, ReplyMsg, ServiceCore};
use magellan_workload::ChannelId;
use proptest::prelude::*;

fn report(ip: u32, minute: u64) -> PeerReport {
    PeerReport {
        time: SimTime::ORIGIN + SimDuration::from_mins(minute),
        addr: PeerAddr::from_u32(ip),
        channel: ChannelId::CCTV1,
        buffer_map: BufferMap::new(0, 8),
        download_capacity_kbps: 2000.0,
        upload_capacity_kbps: 512.0,
        recv_throughput_kbps: 400.0,
        send_throughput_kbps: 50.0,
        partners: vec![],
    }
}

fn window_end() -> SimTime {
    SimTime::at(14, 0, 0)
}

/// Deterministic Fisher-Yates (the proptest stand-in has no shuffle
/// strategy); splitmix64 stream seeded by the generated `seed`.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        items.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

fn arb_msg() -> impl Strategy<Value = ClientMsg> {
    (
        0u8..4,
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        0u64..(14 * 86_400_000),
        0u32..5_000,
        0u64..200,
    )
        .prop_map(
            |(kind, client_id, clients, seq, at, ip, minute)| match kind {
                0 => ClientMsg::Hello { client_id, clients },
                1 => ClientMsg::Report {
                    seq,
                    payload: wire::encode(&report(ip, minute)),
                },
                2 => ClientMsg::WindowMark {
                    client_id,
                    up_to: SimTime::from_millis(at),
                },
                _ => ClientMsg::Finish {
                    client_id,
                    sent: seq,
                },
            },
        )
}

proptest! {
    #[test]
    fn client_messages_roundtrip(msg in arb_msg()) {
        let mut body = encode_client_msg(&msg);
        let back = decode_client_msg(&mut body).expect("decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn replies_roundtrip_and_truncations_never_panic(
        seq in any::<u64>(),
        status_byte in 0u8..8,
        cut in 0usize..9,
    ) {
        let status = wire::StatusCode::from_u8(status_byte).expect("valid code");
        let reply = ReplyMsg { seq, status };
        let bytes = encode_reply(&reply);
        prop_assert_eq!(decode_reply(&mut bytes.clone()).expect("decode"), reply);
        let mut short = bytes.slice(0..cut);
        prop_assert!(decode_reply(&mut short).is_err());
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_client_msg(&mut bytes::Bytes::from(bytes));
    }

    /// A framed TCP stream delivered in arbitrary chunk sizes — with
    /// the tail truncated mid-frame — reassembles exactly the
    /// complete frames, in order, and never panics.
    #[test]
    fn frame_reader_survives_chunking_and_truncation(
        msgs in proptest::collection::vec(arb_msg(), 0..12),
        chunk_size in 1usize..64,
        cut_tail in 0usize..40,
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&frame(&encode_client_msg(m)));
        }
        let keep = stream.len().saturating_sub(cut_tail);
        let truncated_tail = keep < stream.len();
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for chunk in stream[..keep].chunks(chunk_size.max(1)) {
            reader.extend(chunk);
            while let Some(mut body) = reader.next_frame().expect("well-formed lengths") {
                out.push(decode_client_msg(&mut body).expect("framed bodies decode"));
            }
        }
        if truncated_tail {
            prop_assert!(out.len() < msgs.len() || msgs.is_empty() || cut_tail == 0);
        }
        prop_assert_eq!(&msgs[..out.len()], &out[..], "frames out of order or corrupted");
    }

    /// A bit-flipped frame length that exceeds the cap is rejected as
    /// an error (connection teardown), not a panic or a huge
    /// allocation.
    #[test]
    fn frame_reader_rejects_oversized_lengths(len in (64 * 1024u32 + 1)..u32::MAX) {
        let mut reader = FrameReader::new();
        reader.extend(&len.to_be_bytes());
        prop_assert!(reader.next_frame().is_err());
    }

    /// The UDP datagram path: corrupt payload bytes cost at most the
    /// one report they carried — every datagram fed is classified
    /// exactly once and the books balance.
    #[test]
    fn corrupt_datagrams_cost_at_most_one_report(
        ips in proptest::collection::vec(1u32..500, 1..40),
        flip_at in any::<prop::sample::Index>(),
        flip_with in 1u8..=255,
        corrupt_every in 2usize..5,
    ) {
        let mut core = ServiceCore::new(window_end(), 4, 1024, 1);
        core.handle(&ClientMsg::Hello { client_id: 0, clients: 1 });
        let mut fed = 0u64;
        for (i, ip) in ips.iter().enumerate() {
            let mut payload = wire::encode(&report(*ip, 20)).to_vec();
            if i % corrupt_every == 0 {
                let at = flip_at.index(payload.len());
                payload[at] ^= flip_with;
            }
            let msg = ClientMsg::Report { seq: i as u64, payload: payload.into() };
            let (reply, _) = core.handle(&msg);
            prop_assert!(reply.is_some(), "every report datagram gets a verdict");
            fed += 1;
        }
        core.handle(&ClientMsg::Finish { client_id: 0, sent: fed });
        let (_, stats) = core.finalize();
        prop_assert!(stats.balanced(), "unbalanced: {stats:?}");
        prop_assert_eq!(stats.received(), fed, "a datagram was classified twice or not at all");
        prop_assert_eq!(stats.lost, 0);
    }

    /// Duplicated, reordered, corrupted traffic interleaved with
    /// window marks: the service stays balanced, classifies every
    /// datagram exactly once, and two runs over the same stream agree
    /// on both the archive batch and the accounting (determinism).
    #[test]
    fn service_balances_and_is_deterministic_under_hostile_traffic(
        ips in proptest::collection::vec(1u32..200, 1..30),
        seed in any::<u64>(),
        flip_with in 1u8..=255,
        mark_minute in 5u64..120,
    ) {
        // Build the hostile datagram list: every report once, every
        // third duplicated, every fourth corrupted, then shuffled.
        let mut datagrams: Vec<Vec<u8>> = Vec::new();
        for (i, ip) in ips.iter().enumerate() {
            let payload = wire::encode(&report(*ip, (i as u64 * 7) % 100)).to_vec();
            datagrams.push(payload.clone());
            if i % 3 == 0 {
                datagrams.push(payload.clone());
            }
            if i % 4 == 0 {
                let mut bad = payload;
                let at = (seed as usize) % bad.len();
                bad[at] ^= flip_with;
                datagrams.push(bad);
            }
        }
        shuffle(&mut datagrams, seed);
        let mark_at = datagrams.len() / 2;

        let run = || {
            let mut core = ServiceCore::new(window_end(), 3, 1024, 1);
            core.handle(&ClientMsg::Hello { client_id: 0, clients: 1 });
            let mut sent = 0u64;
            let mut archive = Vec::new();
            for (i, payload) in datagrams.iter().enumerate() {
                if i == mark_at {
                    // A mid-stream mark seals a window; everything
                    // older arriving after it is Late or a duplicate.
                    let (_, sealed) = core.handle(&ClientMsg::WindowMark {
                        client_id: 0,
                        up_to: SimTime::ORIGIN + SimDuration::from_mins(mark_minute),
                    });
                    archive.extend(sealed.unwrap_or_default());
                }
                let msg = ClientMsg::Report {
                    seq: i as u64,
                    payload: payload.clone().into(),
                };
                let (reply, _) = core.handle(&msg);
                assert!(reply.is_some());
                sent += 1;
            }
            core.handle(&ClientMsg::Finish { client_id: 0, sent });
            let (tail, stats) = core.finalize();
            archive.extend(tail);
            (archive, stats)
        };

        let (batch_a, stats_a) = run();
        let (batch_b, stats_b) = run();
        prop_assert!(stats_a.balanced(), "unbalanced: {stats_a:?}");
        prop_assert_eq!(stats_a.received(), datagrams.len() as u64);
        prop_assert_eq!(stats_a, stats_b, "accounting not deterministic");
        prop_assert_eq!(batch_a, batch_b, "final batch not deterministic");
        // Dedup holds: no (time, addr) identity is archived twice.
        let mut ids: Vec<(u64, u32)> = batch_a
            .iter()
            .map(|r| (r.time.as_millis(), r.addr.as_u32()))
            .collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(before, ids.len(), "duplicate identity archived");
    }
}
