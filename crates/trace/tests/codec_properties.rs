//! Property tests over the trace codecs: any structurally valid
//! report must survive both the wire format and the JSON-lines format
//! byte-for-byte, and malformed inputs must fail cleanly.

use magellan_netsim::{PeerAddr, SimTime};
use magellan_trace::{jsonl, wire, BufferMap, PartnerRecord, PeerReport, TraceServer};
use magellan_workload::ChannelId;
use proptest::prelude::*;

fn arb_buffer_map() -> impl Strategy<Value = BufferMap> {
    (
        0u64..1_000_000,
        0u16..256,
        proptest::collection::vec(any::<u64>(), 0..40),
    )
        .prop_map(|(start, len, seqs)| {
            let mut bm = BufferMap::new(start, len);
            for s in seqs {
                bm.set(start + s % (len as u64 + 1));
            }
            bm
        })
}

fn arb_partner() -> impl Strategy<Value = PartnerRecord> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        0u64..100_000,
        0u64..100_000,
    )
        .prop_map(|(addr, tcp, udp, sent, recv)| PartnerRecord {
            addr: PeerAddr::from_u32(addr),
            tcp_port: tcp,
            udp_port: udp,
            segments_sent: sent,
            segments_received: recv,
        })
}

prop_compose! {
    fn arb_report()(
        time in 0u64..(14 * 86_400_000),
        addr in any::<u32>(),
        channel in 0u16..800,
        bm in arb_buffer_map(),
        down in 0.0f64..1e6,
        up in 0.0f64..1e6,
        recv in 0.0f64..1e5,
        send in 0.0f64..1e5,
        partners in proptest::collection::vec(arb_partner(), 0..60),
    ) -> PeerReport {
        PeerReport {
            time: SimTime::from_millis(time),
            addr: PeerAddr::from_u32(addr),
            channel: ChannelId(channel),
            buffer_map: bm,
            download_capacity_kbps: down,
            upload_capacity_kbps: up,
            recv_throughput_kbps: recv,
            send_throughput_kbps: send,
            partners,
        }
    }
}

proptest! {
    #[test]
    fn wire_roundtrip(report in arb_report()) {
        let bytes = wire::encode(&report);
        let back = wire::decode(&mut bytes.clone()).expect("decode");
        prop_assert_eq!(back, report);
    }

    #[test]
    fn wire_truncation_never_panics(report in arb_report(), cut_frac in 0.0f64..1.0) {
        let bytes = wire::encode(&report);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        let mut short = bytes.slice(0..cut.min(bytes.len().saturating_sub(1)));
        // Either EOF or (never) success-with-equal; must not panic.
        let _ = wire::decode(&mut short);
    }

    #[test]
    fn jsonl_roundtrip(report in arb_report()) {
        let line = jsonl::to_json_line(&report);
        prop_assert!(!line.contains('\n'), "line breaks corrupt JSONL");
        let back = jsonl::from_json_line(&line).expect("parse");
        prop_assert_eq!(back, report);
    }

    #[test]
    fn jsonl_parser_never_panics_on_mutations(report in arb_report(), idx in any::<prop::sample::Index>(), byte in any::<u8>()) {
        let mut line = jsonl::to_json_line(&report).into_bytes();
        let i = idx.index(line.len());
        line[i] = byte;
        if let Ok(s) = String::from_utf8(line) {
            let _ = jsonl::from_json_line(&s); // may fail, must not panic
        }
    }

    #[test]
    fn jsonl_parser_never_panics_on_garbage(garbage in "\\PC*") {
        let _ = jsonl::from_json_line(&garbage);
    }

    #[test]
    fn wire_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = bytes::Bytes::from(bytes);
        let _ = wire::decode(&mut buf);
    }

    /// A truncated datagram fired at the server must land in a
    /// [`SubmitError`] path (almost always `Malformed`), never a
    /// panic, and the rejection must be counted.
    #[test]
    fn server_counts_truncated_datagrams(report in arb_report(), cut_frac in 0.0f64..1.0) {
        let mut server = TraceServer::new(SimTime::from_millis(14 * 86_400_000));
        let bytes = wire::encode(&report);
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len().saturating_sub(1));
        let res = server.submit_wire(bytes.slice(0..cut));
        let st = server.stats();
        prop_assert_eq!(st.accepted + st.rejected, 1);
        prop_assert_eq!(res.is_ok(), st.accepted == 1);
        if let Err(e) = res {
            prop_assert!(!e.to_string().is_empty());
        }
    }

    /// A single flipped bit either still decodes into a report the
    /// validator can judge, or fails decoding — both are counted
    /// `SubmitError` paths; nothing panics and the books balance.
    #[test]
    fn server_counts_bitflipped_datagrams(
        report in arb_report(),
        idx in any::<prop::sample::Index>(),
        bit in 0u32..8,
    ) {
        let mut server = TraceServer::new(SimTime::from_millis(14 * 86_400_000));
        let mut bytes = wire::encode(&report).to_vec();
        let i = idx.index(bytes.len());
        bytes[i] ^= 1 << bit;
        let res = server.submit_wire(bytes::Bytes::from(bytes));
        let st = server.stats();
        prop_assert_eq!(st.accepted + st.rejected, 1);
        prop_assert_eq!(res.is_ok(), st.accepted == 1);
        if let Err(e) = res {
            prop_assert!(!e.to_string().is_empty());
        }
    }
}
