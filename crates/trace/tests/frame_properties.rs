//! Property tests over the archive frame codec: any sequence of
//! framed payloads survives a scan byte-for-byte, truncation and
//! byte-flips never panic, and damage to one frame never costs the
//! frames around it.

use magellan_trace::segment::{append_frame, scan_frames, FrameScan, FRAME_HEADER_LEN};
use proptest::prelude::*;

/// Payloads that cannot collide with the frame magic, so resync
/// guarantees are exercised without self-inflicted false positives.
fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(0u8..=0x3F, 0..64), 1..12)
}

/// Frames `payloads` back to back, returning the buffer and each
/// frame's byte range.
fn build(payloads: &[Vec<u8>]) -> (Vec<u8>, Vec<(usize, usize)>) {
    let mut buf = Vec::new();
    let mut extents = Vec::new();
    for p in payloads {
        let start = buf.len();
        append_frame(&mut buf, p);
        extents.push((start, buf.len()));
    }
    (buf, extents)
}

fn scan_collect(bytes: &[u8]) -> (FrameScan, Vec<Vec<u8>>) {
    let mut got = Vec::new();
    let scan = scan_frames(bytes, 0, |_, payload| {
        got.push(payload.to_vec());
        true
    });
    (scan, got)
}

proptest! {
    #[test]
    fn roundtrip_recovers_every_frame(payloads in arb_payloads()) {
        let (buf, _) = build(&payloads);
        let (scan, got) = scan_collect(&buf);
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(scan.corrupt_regions, 0);
        prop_assert!(!scan.truncated_tail);
        prop_assert_eq!(scan.bytes_quarantined(), 0);
    }

    /// Cutting the buffer anywhere never panics and recovers exactly
    /// the frames wholly inside the cut; a cut mid-frame reads as a
    /// torn tail, never as corruption.
    #[test]
    fn truncation_loses_only_the_tail(payloads in arb_payloads(), cut_frac in 0.0f64..1.0) {
        let (buf, extents) = build(&payloads);
        let cut = ((buf.len() as f64 * cut_frac) as usize).min(buf.len());
        let (scan, got) = scan_collect(&buf[..cut]);
        let whole: Vec<Vec<u8>> = extents
            .iter()
            .zip(&payloads)
            .filter(|((_, end), _)| *end <= cut)
            .map(|(_, p)| p.clone())
            .collect();
        prop_assert_eq!(got, whole);
        prop_assert_eq!(scan.corrupt_regions, 0, "clean truncation misread as corruption");
        // Any partial bytes past the last whole frame are a torn tail.
        let last_whole_end = extents
            .iter()
            .map(|(_, e)| *e)
            .filter(|e| *e <= cut)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(scan.truncated_tail, cut > last_whole_end);
    }

    /// Flipping one byte never panics and costs at most the single
    /// frame it landed in — every frame before and after it is
    /// recovered, in order.
    #[test]
    fn byte_flip_costs_at_most_one_frame(
        payloads in arb_payloads(),
        idx in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let (mut buf, extents) = build(&payloads);
        let i = idx.index(buf.len());
        buf[i] ^= flip;
        let hit = extents.iter().position(|(s, e)| (*s..*e).contains(&i));
        let (scan, got) = scan_collect(&buf);
        let survivors: Vec<Vec<u8>> = extents
            .iter()
            .enumerate()
            .filter(|(k, _)| Some(*k) != hit)
            .map(|(k, _)| payloads[k].clone())
            .collect();
        // The damaged frame may still surface if the flip landed in
        // slack (it cannot: frames are dense) — it must be exactly the
        // survivors, possibly still including the hit frame only if
        // the flip was a no-op (excluded by flip >= 1).
        prop_assert_eq!(got, survivors);
        prop_assert!(
            scan.corrupt_regions + u64::from(scan.truncated_tail) >= 1,
            "damage went unreported: {scan:?}"
        );
        prop_assert!(scan.bytes_quarantined() > 0);
    }

    /// Arbitrary garbage (no framing at all) never panics and never
    /// yields a frame unless a valid one exists by construction.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let (scan, got) = scan_collect(&bytes);
        // Whatever was "recovered" must at least be structurally
        // plausible: total recovered bytes fit in the buffer.
        let framed: usize = got.iter().map(|p| p.len() + FRAME_HEADER_LEN).sum();
        prop_assert!(framed <= bytes.len());
        prop_assert_eq!(
            scan.frames as usize, got.len(),
            "scan count disagrees with callback count"
        );
    }
}
