//! Property tests over snapshot reconstruction: the stable-peer set
//! must match the surviving reports under *any* report-loss pattern,
//! and the coverage flag must agree with the outage schedule.

use magellan_netsim::{FaultWindow, PeerAddr, SimDuration, SimTime};
use magellan_trace::{BufferMap, PeerReport, SnapshotBuilder, TraceStore};
use magellan_workload::ChannelId;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn report(ip: u32, minute: u64) -> PeerReport {
    PeerReport {
        time: SimTime::ORIGIN + SimDuration::from_mins(minute),
        addr: PeerAddr::from_u32(ip),
        channel: ChannelId::CCTV1,
        buffer_map: BufferMap::new(0, 8),
        download_capacity_kbps: 2000.0,
        upload_capacity_kbps: 512.0,
        recv_throughput_kbps: 400.0,
        send_throughput_kbps: 50.0,
        partners: vec![],
    }
}

fn at_min(m: u64) -> SimTime {
    SimTime::ORIGIN + SimDuration::from_mins(m)
}

proptest! {
    /// Drop any subset of a regular report schedule: the snapshot must
    /// contain exactly the peers with a surviving report inside the
    /// staleness horizon, each represented by its freshest survivor.
    #[test]
    fn stable_set_matches_survivors_under_any_loss_pattern(
        peers in 1u32..12,
        survive in proptest::collection::vec(any::<bool>(), 0..144),
        sample_min in 0u64..150,
        staleness_mins in 1u64..40,
    ) {
        // Peer p would report at minutes 10, 20, …, 120; `survive`
        // masks each (peer, slot) pair.
        let mut surviving = Vec::new();
        let mut idx = 0usize;
        for p in 1..=peers {
            for slot in 1..=12u64 {
                if survive.get(idx).copied().unwrap_or(false) {
                    surviving.push(report(p, slot * 10));
                }
                idx += 1;
            }
        }
        let store: TraceStore = surviving.iter().cloned().collect();
        let staleness = SimDuration::from_mins(staleness_mins);
        let at = at_min(sample_min);
        let snap = SnapshotBuilder::new(&store).staleness(staleness).at(at);

        // Independent oracle for the stable set.
        let floor = at - staleness;
        let expect: BTreeSet<u32> = surviving
            .iter()
            .filter(|r| r.time <= at && r.time > floor)
            .map(|r| r.addr.as_u32())
            .collect();
        let got: BTreeSet<u32> = snap.reports().map(|r| r.addr.as_u32()).collect();
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(snap.stable_count(), expect.len());

        // Freshest survivor wins for every stable peer.
        for r in snap.reports() {
            let best = surviving
                .iter()
                .filter(|x| x.addr == r.addr && x.time <= at && x.time > floor)
                .map(|x| x.time)
                .max()
                .expect("stable peer has a surviving report");
            prop_assert_eq!(r.time, best);
        }

        // Loss alone never marks a snapshot partial — only a declared
        // server outage does.
        prop_assert!(!snap.is_partial());
    }

    /// The coverage fraction equals the uncovered share of the
    /// staleness horizon for a single outage window.
    #[test]
    fn coverage_matches_outage_overlap(
        sample_min in 40u64..200,
        out_start in 0u64..220,
        out_len in 1u64..60,
        staleness_mins in 5u64..30,
    ) {
        prop_assume!(sample_min >= staleness_mins);
        let store = TraceStore::new();
        let outage = [FaultWindow::new(at_min(out_start), at_min(out_start + out_len))];
        let snap = SnapshotBuilder::new(&store)
            .staleness(SimDuration::from_mins(staleness_mins))
            .outages(&outage)
            .at(at_min(sample_min));

        // Oracle in milliseconds over the horizon
        // [sample − staleness + 1ms, sample + 1ms).
        let lo = at_min(sample_min - staleness_mins).as_millis() + 1;
        let hi = at_min(sample_min).as_millis() + 1;
        let (os, oe) = (at_min(out_start).as_millis(), at_min(out_start + out_len).as_millis());
        let overlap = oe.min(hi).saturating_sub(os.max(lo));
        let expected = 1.0 - overlap as f64 / (hi - lo) as f64;

        prop_assert!((0.0..=1.0).contains(&snap.coverage));
        prop_assert!(
            (snap.coverage - expected).abs() < 1e-9,
            "coverage {} expected {}",
            snap.coverage,
            expected
        );
        prop_assert_eq!(snap.is_partial(), overlap > 0);
    }
}
