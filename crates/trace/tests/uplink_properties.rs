//! Property tests over the report uplink's store-and-forward buffer:
//! the delivery books always balance, overflow always evicts oldest
//! first, and a post-outage flush drains everything that survived.

use magellan_netsim::{FaultWindow, PeerAddr, SimDuration, SimTime};
use magellan_trace::{BufferMap, PeerReport, ReportUplink, TraceServer};
use magellan_workload::ChannelId;
use proptest::prelude::*;

const WINDOW_END_MIN: u64 = 14 * 24 * 60;

fn report(ip: u32, minute: u64) -> PeerReport {
    PeerReport {
        time: SimTime::ORIGIN + SimDuration::from_mins(minute),
        addr: PeerAddr::from_u32(ip),
        channel: ChannelId::CCTV1,
        buffer_map: BufferMap::new(0, 8),
        download_capacity_kbps: 2000.0,
        upload_capacity_kbps: 512.0,
        recv_throughput_kbps: 400.0,
        send_throughput_kbps: 50.0,
        partners: vec![],
    }
}

proptest! {
    /// Every offered report ends in exactly one of: delivered,
    /// still pending, evicted on overflow, or rejected — whatever the
    /// interleaving of sends and a downtime window.
    #[test]
    fn delivery_accounting_always_balances(
        capacity in 1usize..8,
        minutes in proptest::collection::vec(0u64..200, 1..40),
        down_start in 0u64..150,
        down_len in 1u64..120,
    ) {
        let mut server = TraceServer::with_downtime(
            SimTime::ORIGIN + SimDuration::from_mins(WINDOW_END_MIN),
            vec![FaultWindow::new(
                SimTime::ORIGIN + SimDuration::from_mins(down_start),
                SimTime::ORIGIN + SimDuration::from_mins(down_start + down_len),
            )],
        );
        let mut up = ReportUplink::new(capacity);
        let mut sorted = minutes.clone();
        sorted.sort_unstable();
        for (i, m) in sorted.iter().enumerate() {
            up.send(report(i as u32 + 1, *m), SimTime::ORIGIN + SimDuration::from_mins(*m), &mut server);
            let st = up.stats();
            prop_assert_eq!(st.offered, i as u64 + 1);
            prop_assert_eq!(
                st.offered,
                st.delivered + up.pending() as u64 + st.dropped_overflow + st.rejected,
                "books out of balance mid-stream: {:?} pending {}", st, up.pending()
            );
            prop_assert!(up.pending() <= capacity);
            prop_assert!(st.retransmitted <= st.delivered);
        }
        // The collector keeps listening after the outage: a flush past
        // the window drains every survivor.
        up.flush(
            SimTime::ORIGIN + SimDuration::from_mins(down_start + down_len + 1),
            &mut server,
        );
        let st = up.stats();
        prop_assert_eq!(up.pending(), 0, "flush past the outage left a backlog");
        prop_assert_eq!(st.offered, st.delivered + st.dropped_overflow + st.rejected);
        prop_assert_eq!(st.rejected, 0, "well-formed reports were rejected");
        prop_assert_eq!(server.len() as u64, st.delivered - server.stats().duplicates);
    }

    /// Overflow during an outage always evicts the *oldest* buffered
    /// report: the server ends up with exactly the newest `capacity`
    /// reports, in FIFO order.
    #[test]
    fn overflow_evicts_oldest_first(
        capacity in 1usize..6,
        extra in 1usize..10,
    ) {
        let n = capacity + extra;
        let down_end = 1000u64;
        let mut server = TraceServer::with_downtime(
            SimTime::ORIGIN + SimDuration::from_mins(WINDOW_END_MIN),
            vec![FaultWindow::new(
                SimTime::ORIGIN,
                SimTime::ORIGIN + SimDuration::from_mins(down_end),
            )],
        );
        let mut up = ReportUplink::new(capacity);
        for i in 0..n {
            let m = i as u64;
            up.send(report(i as u32 + 1, m), SimTime::ORIGIN + SimDuration::from_mins(m), &mut server);
        }
        prop_assert_eq!(up.pending(), capacity);
        prop_assert_eq!(up.stats().dropped_overflow, extra as u64);
        up.flush(SimTime::ORIGIN + SimDuration::from_mins(down_end + 1), &mut server);
        let delivered: Vec<u32> = server
            .into_store()
            .reports()
            .iter()
            .map(|r| r.addr.as_u32())
            .collect();
        let expected: Vec<u32> = ((extra + 1) as u32..=n as u32).collect();
        prop_assert_eq!(delivered, expected, "eviction was not oldest-first");
    }
}
