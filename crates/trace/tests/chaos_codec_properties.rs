//! Property tests driving the framed-TCP ingest codec through the
//! nemesis chaos engine: a byte stream mangled by a seeded
//! [`FlowSchedule`] — re-chunked, split, coalesced, bit-flipped, cut
//! short — must never panic the reader, must reassemble exactly the
//! original messages when the schedule only repaces (no corruption,
//! no connection death), must degrade to a clean prefix when the
//! connection dies, and must leave the service books balanced no
//! matter what arrives.

use magellan_netsim::{
    ChaosAction, ChaosProfile, FlowKind, FlowSchedule, PeerAddr, SimDuration, SimTime,
};
use magellan_trace::codec::{decode_client_msg, encode_client_msg, frame};
use magellan_trace::{wire, BufferMap, ClientMsg, FrameReader, PeerReport, ServiceCore};
use magellan_workload::ChannelId;
use proptest::prelude::*;

fn report(ip: u32, minute: u64) -> PeerReport {
    PeerReport {
        time: SimTime::ORIGIN + SimDuration::from_mins(minute),
        addr: PeerAddr::from_u32(ip),
        channel: ChannelId::CCTV1,
        buffer_map: BufferMap::new(0, 8),
        download_capacity_kbps: 2000.0,
        upload_capacity_kbps: 512.0,
        recv_throughput_kbps: 400.0,
        send_throughput_kbps: 50.0,
        partners: vec![],
    }
}

fn window_end() -> SimTime {
    SimTime::at(14, 0, 0)
}

/// A full client conversation: Hello, `ips.len()` reports, Finish.
fn conversation(ips: &[u32]) -> Vec<ClientMsg> {
    let mut msgs = vec![ClientMsg::Hello {
        client_id: 0,
        clients: 1,
    }];
    for (i, ip) in ips.iter().enumerate() {
        msgs.push(ClientMsg::Report {
            seq: i as u64,
            payload: wire::encode(&report(*ip, (i as u64 * 7) % 100)),
        });
    }
    msgs.push(ClientMsg::Finish {
        client_id: 0,
        sent: ips.len() as u64,
    });
    msgs
}

fn framed_stream(msgs: &[ClientMsg]) -> Vec<u8> {
    let mut stream = Vec::new();
    for m in msgs {
        stream.extend_from_slice(&frame(&encode_client_msg(m)));
    }
    stream
}

/// Pure model of the `tracetool nemesis` TCP pump: cuts `stream` into
/// `chunk`-byte reads, asks the schedule what to do with each, and
/// returns the write sequence the downstream socket would observe
/// plus whether the connection was cut short (Reset/Kill). Timing
/// actions (Delay/Stall) are delivery in this model — the bytes are
/// what the codec sees; the clock is the shell's business.
fn pump_model(stream: &[u8], chunk: usize, sched: &mut FlowSchedule) -> (Vec<Vec<u8>>, bool) {
    let mut out: Vec<Vec<u8>> = Vec::new();
    let mut held: Vec<u8> = Vec::new();
    for piece in stream.chunks(chunk.max(1)) {
        held.extend_from_slice(piece);
        match sched.next_action() {
            ChaosAction::Coalesce => continue,
            ChaosAction::Deliver | ChaosAction::Delay { .. } | ChaosAction::Stall { .. } => {
                out.push(std::mem::take(&mut held));
            }
            ChaosAction::SplitAt { at_pm } => {
                let cut = ((held.len() * at_pm as usize) / 1000).clamp(1, held.len());
                let rest = held.split_off(cut);
                out.push(std::mem::take(&mut held));
                if !rest.is_empty() {
                    out.push(rest);
                }
            }
            ChaosAction::FlipBit { offset, bit } => {
                if !held.is_empty() {
                    let i = offset as usize % held.len();
                    held[i] ^= 1 << bit;
                }
                out.push(std::mem::take(&mut held));
            }
            ChaosAction::Reset => return (out, true),
            ChaosAction::Kill => {
                out.push(std::mem::take(&mut held));
                return (out, true);
            }
            ChaosAction::Drop | ChaosAction::Duplicate | ChaosAction::Reorder => {
                unreachable!("stream flows never see datagram faults")
            }
        }
    }
    if !held.is_empty() {
        out.push(held);
    }
    (out, false)
}

/// Feeds mangled chunks through a [`FrameReader`], decoding whole
/// frames as they surface. A framing error (corrupt length prefix)
/// models connection teardown: stop reading, keep what arrived.
fn reassemble(chunks: &[Vec<u8>]) -> (Vec<ClientMsg>, bool) {
    let mut reader = FrameReader::new();
    let mut msgs = Vec::new();
    for chunk in chunks {
        reader.extend(chunk);
        loop {
            match reader.next_frame() {
                Ok(Some(mut body)) => match decode_client_msg(&mut body) {
                    Ok(m) => msgs.push(m),
                    Err(_) => return (msgs, true),
                },
                Ok(None) => break,
                Err(_) => return (msgs, true),
            }
        }
    }
    (msgs, false)
}

/// The TCP drill's pacing faults only: everything that reshapes the
/// byte stream without corrupting or killing it.
fn pacing_only() -> ChaosProfile {
    ChaosProfile {
        reset_pm: 0,
        kill_pm: 0,
        ..ChaosProfile::tcp_drill()
    }
}

/// Corruption-heavy profile: pacing hostility plus frequent bit
/// flips, so damage lands in length prefixes, message tags, and
/// opaque report payloads alike.
fn corrupting() -> ChaosProfile {
    ChaosProfile {
        flip_pm: 150,
        ..pacing_only()
    }
}

proptest! {
    /// Re-pacing is invisible to the codec: any schedule of splits,
    /// coalesces, delays, and stalls delivers exactly the original
    /// conversation, and the service books it cleanly.
    #[test]
    fn pacing_chaos_is_transparent(
        ips in proptest::collection::vec(1u32..500, 1..24),
        seed in any::<u64>(),
        flow in 0u64..8,
        chunk in 1usize..96,
    ) {
        let msgs = conversation(&ips);
        let stream = framed_stream(&msgs);
        let mut sched = FlowSchedule::new(seed, flow, FlowKind::Stream, pacing_only());
        let (chunks, killed) = pump_model(&stream, chunk, &mut sched);
        prop_assert!(!killed, "pacing profile must never cut the connection");
        let (got, torn) = reassemble(&chunks);
        prop_assert!(!torn, "pacing profile must never corrupt framing");
        prop_assert_eq!(&got, &msgs, "re-paced stream decoded differently");

        let mut core = ServiceCore::new(window_end(), 3, 1024, 1);
        for m in &got {
            core.handle(m);
        }
        let (_, stats) = core.finalize();
        prop_assert!(stats.balanced(), "unbalanced: {stats:?}");
        prop_assert_eq!(stats.received(), ips.len() as u64);
    }

    /// The full TCP drill (resets and kills allowed, still no
    /// corruption): whatever survives is a clean prefix of the
    /// conversation — never reordered, never mangled — and the reader
    /// never errors.
    #[test]
    fn connection_death_degrades_to_a_prefix(
        ips in proptest::collection::vec(1u32..500, 1..24),
        seed in any::<u64>(),
        flow in 0u64..8,
        chunk in 1usize..96,
    ) {
        let msgs = conversation(&ips);
        let stream = framed_stream(&msgs);
        let mut sched = FlowSchedule::new(seed, flow, FlowKind::Stream, ChaosProfile::tcp_drill());
        let (chunks, _killed) = pump_model(&stream, chunk, &mut sched);
        let (got, torn) = reassemble(&chunks);
        prop_assert!(!torn, "drill profile does not corrupt, reader must not error");
        prop_assert_eq!(&msgs[..got.len()], &got[..], "survivors are not a clean prefix");
    }

    /// Corrupting chaos: the reader and service never panic, and
    /// every report that does get through is classified exactly once
    /// with balanced books — a flipped bit costs at most the frames
    /// after it on that connection, never the accounting identity.
    #[test]
    fn corruption_never_panics_and_books_balance(
        ips in proptest::collection::vec(1u32..500, 1..24),
        seed in any::<u64>(),
        flow in 0u64..8,
        chunk in 1usize..96,
    ) {
        let msgs = conversation(&ips);
        let stream = framed_stream(&msgs);
        let mut sched = FlowSchedule::new(seed, flow, FlowKind::Stream, corrupting());
        let (chunks, _killed) = pump_model(&stream, chunk, &mut sched);
        let (got, _torn) = reassemble(&chunks);
        prop_assert!(got.len() <= msgs.len() + 1, "chaos conjured extra frames");

        let mut core = ServiceCore::new(window_end(), 3, 1024, 1);
        core.handle(&ClientMsg::Hello { client_id: 0, clients: 1 });
        let mut verdicts = 0u64;
        let mut reports = 0u64;
        for m in &got {
            if let ClientMsg::Report { .. } = m {
                reports += 1;
                let (reply, _) = core.handle(m);
                prop_assert!(reply.is_some(), "a report went unclassified");
                verdicts += 1;
            }
        }
        let (_, stats) = core.finalize();
        prop_assert_eq!(verdicts, reports);
        prop_assert!(stats.balanced(), "unbalanced: {stats:?}");
        prop_assert_eq!(stats.received(), reports, "classified twice or not at all");
    }
}
