//! The peer report schema and reporting schedule (paper §3.2).
//!
//! Each report carries "basic information such as the peer's IP
//! address, the channel it is watching, its buffer map, total download
//! and upload capacities, as well as its instantaneous aggregate
//! receiving and sending throughput. In addition, the report also
//! includes a list of all its partners, with their corresponding IP
//! addresses, TCP/UDP ports, and number of segments sent to or
//! received from each partner."

use crate::buffer::BufferMap;
use magellan_netsim::{PeerAddr, SimDuration, SimTime};
use magellan_workload::ChannelId;
use serde::{Deserialize, Serialize};

/// Delay before a freshly joined peer sends its first report: 20
/// minutes, which is what makes reporters the "stable" backbone.
pub const FIRST_REPORT_DELAY: SimDuration = SimDuration::from_mins(20);

/// Interval between subsequent reports: 10 minutes.
pub const REPORT_INTERVAL: SimDuration = SimDuration::from_mins(10);

/// The activity threshold of §4.2: a partner is an *active supplying
/// partner* when more than this many segments were received from it
/// since the last report, and an *active receiving partner* when more
/// than this many were sent to it.
pub const ACTIVE_SEGMENT_THRESHOLD: u64 = 10;

/// One partner entry of a report.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartnerRecord {
    /// Partner's IP address.
    pub addr: PeerAddr,
    /// Partner's TCP port (block transfer).
    pub tcp_port: u16,
    /// Partner's UDP port (control).
    pub udp_port: u16,
    /// Segments the reporter sent to this partner in the report
    /// interval.
    pub segments_sent: u64,
    /// Segments the reporter received from this partner in the report
    /// interval.
    pub segments_received: u64,
}

impl PartnerRecord {
    /// Whether the partner actively supplied the reporter.
    pub fn is_active_supplier(&self) -> bool {
        self.segments_received > ACTIVE_SEGMENT_THRESHOLD
    }

    /// Whether the partner actively received from the reporter.
    pub fn is_active_receiver(&self) -> bool {
        self.segments_sent > ACTIVE_SEGMENT_THRESHOLD
    }

    /// Whether the partner is active in either direction.
    pub fn is_active(&self) -> bool {
        self.is_active_supplier() || self.is_active_receiver()
    }
}

/// A complete peer report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerReport {
    /// When the report was produced.
    pub time: SimTime,
    /// Reporter's IP address.
    pub addr: PeerAddr,
    /// The channel being watched.
    pub channel: ChannelId,
    /// Buffer map at report time.
    pub buffer_map: BufferMap,
    /// Estimated total download capacity (Kbps).
    pub download_capacity_kbps: f64,
    /// Estimated total upload capacity (Kbps).
    pub upload_capacity_kbps: f64,
    /// Instantaneous aggregate receiving throughput (Kbps).
    pub recv_throughput_kbps: f64,
    /// Instantaneous aggregate sending throughput (Kbps).
    pub send_throughput_kbps: f64,
    /// All current partners.
    pub partners: Vec<PartnerRecord>,
}

impl PeerReport {
    /// Number of partners listed (the paper's "total number of
    /// partners", Fig. 4A).
    pub fn partner_count(&self) -> usize {
        self.partners.len()
    }

    /// Active indegree: number of active supplying partners (Fig. 4B).
    pub fn active_indegree(&self) -> usize {
        self.partners
            .iter()
            .filter(|p| p.is_active_supplier())
            .count()
    }

    /// Active outdegree: number of active receiving partners (Fig. 4C).
    pub fn active_outdegree(&self) -> usize {
        self.partners
            .iter()
            .filter(|p| p.is_active_receiver())
            .count()
    }

    /// Whether the peer achieves at least `fraction` of the channel
    /// rate (Fig. 3 uses `fraction = 0.9`).
    pub fn achieves_rate(&self, channel_rate_kbps: f64, fraction: f64) -> bool {
        self.recv_throughput_kbps >= channel_rate_kbps * fraction
    }
}

/// The report schedule: given a join time, yields report instants
/// until the leave time.
///
/// # Example
///
/// ```
/// use magellan_trace::report::report_times;
/// use magellan_netsim::{SimTime, SimDuration};
///
/// let join = SimTime::ORIGIN;
/// let leave = join + SimDuration::from_mins(45);
/// let times: Vec<_> = report_times(join, leave).collect();
/// assert_eq!(times.len(), 3); // t+20, t+30, t+40
/// ```
pub fn report_times(join: SimTime, leave: SimTime) -> impl Iterator<Item = SimTime> {
    let first = join + FIRST_REPORT_DELAY;
    (0u64..)
        .map(move |k| first + SimDuration::from_millis(k * REPORT_INTERVAL.as_millis()))
        .take_while(move |&t| t < leave)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(sent: u64, recv: u64) -> PartnerRecord {
        PartnerRecord {
            addr: PeerAddr::from_u32(0x0B000001),
            tcp_port: 8000,
            udp_port: 8001,
            segments_sent: sent,
            segments_received: recv,
        }
    }

    fn report_with(partners: Vec<PartnerRecord>) -> PeerReport {
        PeerReport {
            time: SimTime::at(0, 1, 0),
            addr: PeerAddr::from_u32(0x0B000002),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 16),
            download_capacity_kbps: 2_000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 390.0,
            send_throughput_kbps: 200.0,
            partners,
        }
    }

    #[test]
    fn activity_threshold_is_strict() {
        assert!(!record(10, 0).is_active_receiver());
        assert!(record(11, 0).is_active_receiver());
        assert!(!record(0, 10).is_active_supplier());
        assert!(record(0, 11).is_active_supplier());
        assert!(record(11, 11).is_active());
        assert!(!record(0, 0).is_active());
    }

    #[test]
    fn degrees_count_both_roles_independently() {
        let r = report_with(vec![
            record(20, 20), // both supplier and receiver
            record(20, 0),  // receiver only
            record(0, 20),  // supplier only
            record(1, 1),   // non-active
        ]);
        assert_eq!(r.partner_count(), 4);
        assert_eq!(r.active_indegree(), 2);
        assert_eq!(r.active_outdegree(), 2);
    }

    #[test]
    fn rate_satisfaction() {
        let r = report_with(vec![]);
        assert!(r.achieves_rate(400.0, 0.9)); // 390 >= 360
        assert!(!r.achieves_rate(400.0, 1.0)); // 390 < 400
    }

    #[test]
    fn report_schedule_matches_paper() {
        let join = SimTime::at(0, 9, 0);
        let leave = join + SimDuration::from_mins(61);
        let times: Vec<_> = report_times(join, leave).collect();
        assert_eq!(
            times,
            vec![
                join + SimDuration::from_mins(20),
                join + SimDuration::from_mins(30),
                join + SimDuration::from_mins(40),
                join + SimDuration::from_mins(50),
                join + SimDuration::from_mins(60),
            ]
        );
    }

    #[test]
    fn short_sessions_never_report() {
        let join = SimTime::ORIGIN;
        let leave = join + SimDuration::from_mins(19);
        assert_eq!(report_times(join, leave).count(), 0);
    }

    #[test]
    fn exact_threshold_session_does_not_report() {
        // Leave exactly at the 20-minute mark: the report at t+20 is
        // not sent (peer departs at that instant).
        let join = SimTime::ORIGIN;
        let leave = join + FIRST_REPORT_DELAY;
        assert_eq!(report_times(join, leave).count(), 0);
    }
}
