//! One shard of the sharded admission pipeline.
//!
//! The networked service replaces the old single-lock trace server
//! with N independent [`Shard`]s: reports are routed by a stable hash
//! of the peer address ([`shard_of`]), so every `(peer, timestamp)`
//! identity lands on exactly one shard and the per-shard
//! [`GatewayCore`] dedup set is *exact* without any cross-shard
//! coordination. A shard owns its admission state outright — no
//! locks, no atomics — and the service shell gives each shard its own
//! thread and bounded queue.
//!
//! Backpressure and shedding are explicit and accounted: a full
//! pending buffer sheds with [`StatusCode::Busy`] (retryable), a
//! fresh report behind the sealed merge frontier sheds with
//! [`StatusCode::Late`] (permanent), and every received datagram
//! increments exactly one [`ShardStats`] counter, so the books
//! balance by construction.

use crate::gateway::GatewayCore;
use crate::report::PeerReport;
use crate::server::SubmitError;
use crate::wire::{self, StatusCode};
use magellan_netsim::{PeerAddr, SimDuration, SimTime};

/// How far behind the sealed merge frontier the dedup set remembers
/// identities. Retries are issued within seconds of the original
/// send, and a window only seals after every client's mark passes it,
/// so three report intervals of history is far more than any
/// in-flight retransmission can span — and it bounds shard memory on
/// arbitrarily long runs.
pub const DEDUP_RETENTION: SimDuration = SimDuration::from_mins(30);

/// Routes a peer address to one of `shards` shards (stable across
/// runs and processes — the multi-process drill partitions clients
/// with the same function).
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_of(addr: PeerAddr, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    // splitmix64 finalizer: cheap, stable, and avalanches the
    // low-entropy allocator-assigned address space evenly.
    let mut h = u64::from(addr.as_u32());
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h % shards as u64) as usize
}

/// Per-shard ingest accounting. Every datagram the shard receives
/// lands in exactly one counter; [`ShardStats::received`] is their
/// sum, which is what makes the service-wide balance identity
/// (`sent == admitted + deduped + shed + lost`) checkable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Fresh reports admitted into the pending buffer.
    pub admitted: u64,
    /// Duplicate `(peer, timestamp)` retransmissions absorbed.
    pub deduped: u64,
    /// Reports shed with [`StatusCode::Busy`] — pending buffer full.
    pub shed_busy: u64,
    /// Reports rejected by validation (out-of-window, implausible).
    pub rejected: u64,
    /// Datagrams that failed wire decoding.
    pub malformed: u64,
    /// Fresh reports shed with [`StatusCode::Late`] — behind the
    /// sealed merge frontier.
    pub late: u64,
    /// Reports bounced by a downtime window (unused in service mode,
    /// where shards run without scheduled downtime).
    pub unavailable: u64,
}

impl ShardStats {
    /// Total datagrams this shard classified.
    pub fn received(&self) -> u64 {
        self.admitted
            + self.deduped
            + self.shed_busy
            + self.rejected
            + self.malformed
            + self.late
            + self.unavailable
    }

    /// Accumulates another shard's counters (service-wide totals).
    pub fn absorb(&mut self, other: &ShardStats) {
        self.admitted += other.admitted;
        self.deduped += other.deduped;
        self.shed_busy += other.shed_busy;
        self.rejected += other.rejected;
        self.malformed += other.malformed;
        self.late += other.late;
        self.unavailable += other.unavailable;
    }
}

/// One shard: an owned [`GatewayCore`] admission authority plus a
/// bounded buffer of admitted reports awaiting the next window merge.
#[derive(Debug)]
pub struct Shard {
    core: GatewayCore,
    pending: Vec<PeerReport>,
    pending_cap: usize,
    merged_below: SimTime,
    stats: ShardStats,
}

impl Shard {
    /// A shard admitting reports with `time < window_end`, buffering
    /// at most `pending_cap` admitted reports between merges (at
    /// least 1). When the buffer is full, fresh reports shed with
    /// [`StatusCode::Busy`] until the coordinator drains a window.
    pub fn new(window_end: SimTime, pending_cap: usize) -> Self {
        Shard {
            core: GatewayCore::new(window_end, Vec::new()),
            pending: Vec::new(),
            pending_cap: pending_cap.max(1),
            merged_below: SimTime::ORIGIN,
            stats: ShardStats::default(),
        }
    }

    /// As [`Shard::new`], but with the sealed merge frontier restored
    /// to `merged_below` — the crash-resume constructor. The dedup
    /// set of the previous incarnation is gone, so a re-received
    /// report below the frontier classifies `Late` (it is already in
    /// the archive or was already accounted) rather than duplicating
    /// archived history; reports at or past the frontier are admitted
    /// fresh, exactly like the first incarnation would have.
    pub fn with_frontier(window_end: SimTime, pending_cap: usize, merged_below: SimTime) -> Self {
        let mut shard = Shard::new(window_end, pending_cap);
        shard.merged_below = merged_below;
        shard
    }

    /// Decodes and ingests one datagram payload. The service runs on
    /// real wall-clock time, so the report's own timestamp serves as
    /// the admission instant (shards have no downtime schedule to
    /// check it against). Decode failures are charged to this shard's
    /// `malformed` counter — at most the one datagram is lost.
    pub fn ingest_wire(&mut self, payload: &[u8]) -> StatusCode {
        let mut buf = payload;
        match wire::decode(&mut buf) {
            Ok(report) if buf.is_empty() => {
                let now = report.time;
                self.ingest(report, now)
            }
            // Trailing bytes after a structurally valid report are
            // corruption too — a datagram is exactly one report.
            Ok(_) | Err(_) => {
                self.stats.malformed += 1;
                StatusCode::Malformed
            }
        }
    }

    /// Ingests one decoded report arriving at `now`, returning the
    /// wire verdict. Exactly one [`ShardStats`] counter moves per
    /// call.
    pub fn ingest(&mut self, report: PeerReport, now: SimTime) -> StatusCode {
        // Straggler handling first: a report behind the sealed merge
        // frontier is either a retransmission of something already
        // archived (absorb as duplicate) or fresh history the
        // append-ordered archive can no longer accept (shed as Late).
        if report.time < self.merged_below && !self.core.contains(&report) {
            self.stats.late += 1;
            return StatusCode::Late;
        }
        // Backpressure: a full pending buffer sheds fresh reports
        // *before* admission so the dedup set is not polluted — the
        // client's retry must be able to succeed after a drain.
        // Duplicates need no buffer space and are still absorbed.
        if self.pending.len() >= self.pending_cap && !self.core.contains(&report) {
            self.stats.shed_busy += 1;
            return StatusCode::Busy;
        }
        let outcome = self.core.admit(&report, now);
        match &outcome {
            Ok(true) => {
                self.stats.admitted += 1;
                self.pending.push(report);
            }
            Ok(false) => self.stats.deduped += 1,
            Err(SubmitError::Unavailable { .. }) => self.stats.unavailable += 1,
            Err(_) => self.stats.rejected += 1,
        }
        StatusCode::from_admission(&outcome)
    }

    /// Removes and returns every pending report with `time < below`,
    /// sorted by `(time, addr)` — the canonical archive order — and
    /// advances the sealed merge frontier. Dedup entries older than
    /// the frontier minus [`DEDUP_RETENTION`] are pruned, bounding
    /// shard memory.
    pub fn drain_below(&mut self, below: SimTime) -> Vec<PeerReport> {
        let mut batch = Vec::new();
        let mut keep = Vec::with_capacity(self.pending.len());
        for r in self.pending.drain(..) {
            if r.time < below {
                batch.push(r);
            } else {
                keep.push(r);
            }
        }
        self.pending = keep;
        batch.sort_by_key(|r| (r.time, r.addr.as_u32()));
        if below > self.merged_below {
            self.merged_below = below;
            let retain_from = self
                .merged_below
                .as_millis()
                .saturating_sub(DEDUP_RETENTION.as_millis());
            self.core
                .prune_seen_below(SimTime::from_millis(retain_from));
        }
        batch
    }

    /// This shard's accounting.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// Admitted reports awaiting the next merge.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Live dedup entries — memory-bound observability.
    pub fn seen_len(&self) -> usize {
        self.core.seen_len()
    }

    /// The sealed merge frontier: reports below it are archived (or
    /// forever shed).
    pub fn merged_below(&self) -> SimTime {
        self.merged_below
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMap;
    use magellan_workload::ChannelId;

    fn report(ip: u32, minute: u64) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(minute),
            addr: PeerAddr::from_u32(ip),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 400.0,
            send_throughput_kbps: 50.0,
            partners: vec![],
        }
    }

    fn at_min(m: u64) -> SimTime {
        SimTime::ORIGIN + SimDuration::from_mins(m)
    }

    fn shard(cap: usize) -> Shard {
        Shard::new(SimTime::at(14, 0, 0), cap)
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for n in [1usize, 2, 4, 7, 16] {
            for ip in 0..2_000u32 {
                let s = shard_of(PeerAddr::from_u32(ip), n);
                assert!(s < n);
                assert_eq!(s, shard_of(PeerAddr::from_u32(ip), n));
            }
        }
    }

    #[test]
    fn shard_of_spreads_sequential_addresses() {
        // Allocator-assigned addresses are sequential; the hash must
        // not map runs of them to one shard.
        let n = 8;
        let mut counts = vec![0usize; n];
        for ip in 0..8_000u32 {
            counts[shard_of(PeerAddr::from_u32(ip), n)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min < 400, "skewed shard spread: {counts:?}");
    }

    #[test]
    fn admits_dedups_and_balances() {
        let mut s = shard(16);
        assert_eq!(s.ingest(report(1, 20), at_min(20)), StatusCode::Ack);
        assert_eq!(
            s.ingest(report(1, 20), at_min(21)),
            StatusCode::AckDuplicate
        );
        let mut bad = report(2, 20);
        bad.upload_capacity_kbps = -1.0;
        assert_eq!(s.ingest(bad, at_min(20)), StatusCode::Implausible);
        let st = s.stats();
        assert_eq!((st.admitted, st.deduped, st.rejected), (1, 1, 1));
        assert_eq!(st.received(), 3);
        assert_eq!(s.pending_len(), 1);
    }

    #[test]
    fn full_pending_buffer_sheds_busy_but_absorbs_duplicates() {
        let mut s = shard(2);
        assert_eq!(s.ingest(report(1, 20), at_min(20)), StatusCode::Ack);
        assert_eq!(s.ingest(report(2, 20), at_min(20)), StatusCode::Ack);
        // Buffer full: fresh report sheds, dedup set untouched.
        assert_eq!(s.ingest(report(3, 20), at_min(20)), StatusCode::Busy);
        assert_eq!(s.stats().shed_busy, 1);
        // A duplicate of an admitted report still absorbs.
        assert_eq!(
            s.ingest(report(1, 20), at_min(21)),
            StatusCode::AckDuplicate
        );
        // After a drain the shed report's retry succeeds — Busy must
        // not have poisoned dedup.
        let drained = s.drain_below(at_min(25));
        assert_eq!(drained.len(), 2);
        assert_eq!(s.ingest(report(3, 30), at_min(30)), StatusCode::Ack);
        assert_eq!(s.stats().received(), 5);
    }

    #[test]
    fn drain_is_sorted_and_seals_the_frontier() {
        let mut s = shard(64);
        // Same timestamp, shuffled addresses; plus a later report
        // that must stay pending.
        for ip in [5u32, 1, 9, 3] {
            assert_eq!(s.ingest(report(ip, 20), at_min(20)), StatusCode::Ack);
        }
        assert_eq!(s.ingest(report(7, 40), at_min(40)), StatusCode::Ack);
        let batch = s.drain_below(at_min(30));
        let addrs: Vec<u32> = batch.iter().map(|r| r.addr.as_u32()).collect();
        assert_eq!(addrs, vec![1, 3, 5, 9], "not (time, addr) sorted");
        assert_eq!(s.pending_len(), 1);
        // Behind the frontier now: a fresh straggler sheds as Late, a
        // retransmission of archived history absorbs as duplicate.
        assert_eq!(s.ingest(report(8, 20), at_min(41)), StatusCode::Late);
        assert_eq!(
            s.ingest(report(5, 20), at_min(41)),
            StatusCode::AckDuplicate
        );
        let st = s.stats();
        assert_eq!((st.late, st.deduped), (1, 1));
    }

    #[test]
    fn dedup_memory_is_bounded_by_retention() {
        let mut s = shard(1 << 12);
        // Ten hours of one report per minute.
        for m in 0..600u64 {
            assert_eq!(s.ingest(report(1, m), at_min(m)), StatusCode::Ack);
        }
        assert_eq!(s.seen_len(), 600);
        s.drain_below(at_min(600));
        // Only the retention horizon survives the seal.
        let retained = DEDUP_RETENTION.as_millis() / SimDuration::from_mins(1).as_millis();
        assert_eq!(s.seen_len() as u64, retained);
    }

    #[test]
    fn malformed_and_trailing_datagrams_cost_one_each() {
        let mut s = shard(16);
        assert_eq!(s.ingest_wire(&[1, 2, 3]), StatusCode::Malformed);
        let mut with_trailer = wire::encode(&report(1, 20)).to_vec();
        with_trailer.push(0xFF);
        assert_eq!(s.ingest_wire(&with_trailer), StatusCode::Malformed);
        let ok = wire::encode(&report(1, 20));
        assert_eq!(s.ingest_wire(&ok), StatusCode::Ack);
        let st = s.stats();
        assert_eq!((st.malformed, st.admitted), (2, 1));
        assert_eq!(st.received(), 3);
    }
}
