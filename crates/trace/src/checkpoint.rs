//! Checkpoint files: the crash-safe envelope around simulation state.
//!
//! A checkpoint is an opaque body (the simulator's serialized state)
//! wrapped in a self-validating envelope: magic, version, a
//! configuration **fingerprint** (resume refuses state from a
//! different scenario), the simulation tick it captures, and a CRC32
//! over the body. Files are written atomically
//! ([`crate::atomicio::atomic_write`]) and named by tick, so the
//! resume path can walk candidates newest-first and fall back past a
//! damaged one.

use crate::atomicio::atomic_write;
use crate::segment::{crc32_finish, crc32_update, CRC32_INIT};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Marks every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"MGCKPT\x001";

/// Current envelope version.
pub const CHECKPOINT_VERSION: u32 = 1;

const ENVELOPE_LEN: usize = 8 + 4 + 8 + 8 + 8 + 4;

/// A decoded checkpoint envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointFile {
    /// Fingerprint of the configuration that produced the state.
    pub fingerprint: u64,
    /// Simulation tick the state captures.
    pub tick: u64,
    /// The serialized simulator state.
    pub body: Vec<u8>,
}

/// Encodes an envelope around a serialized body. The CRC covers the
/// header fields *and* the body, so damage anywhere is detected.
pub fn encode_checkpoint(fingerprint: u64, tick: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_LEN + body.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_be_bytes());
    out.extend_from_slice(&fingerprint.to_be_bytes());
    out.extend_from_slice(&tick.to_be_bytes());
    out.extend_from_slice(&(body.len() as u64).to_be_bytes());
    let crc = crc32_finish(crc32_update(crc32_update(CRC32_INIT, &out), body));
    out.extend_from_slice(&crc.to_be_bytes());
    out.extend_from_slice(body);
    out
}

fn get_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let raw = bytes.get(at..at + 4)?;
    Some(u32::from_be_bytes([raw[0], raw[1], raw[2], raw[3]]))
}

fn get_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let raw = bytes.get(at..at + 8)?;
    Some(u64::from_be_bytes([
        raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7],
    ]))
}

/// Decodes and verifies a checkpoint file. `None` means the file is
/// truncated, damaged, or from an incompatible version — the caller
/// should fall back to an earlier checkpoint.
pub fn decode_checkpoint(bytes: &[u8]) -> Option<CheckpointFile> {
    if bytes.get(0..8)? != CHECKPOINT_MAGIC {
        return None;
    }
    if get_u32(bytes, 8)? != CHECKPOINT_VERSION {
        return None;
    }
    let fingerprint = get_u64(bytes, 12)?;
    let tick = get_u64(bytes, 20)?;
    let body_len = get_u64(bytes, 28)? as usize;
    let stored_crc = get_u32(bytes, 36)?;
    let body = bytes.get(ENVELOPE_LEN..ENVELOPE_LEN.checked_add(body_len)?)?;
    if bytes.len() != ENVELOPE_LEN + body_len {
        return None;
    }
    let crc = crc32_finish(crc32_update(crc32_update(CRC32_INIT, &bytes[0..36]), body));
    if crc != stored_crc {
        return None;
    }
    Some(CheckpointFile {
        fingerprint,
        tick,
        body: body.to_vec(),
    })
}

/// The canonical checkpoint path for a tick.
pub fn checkpoint_path(dir: &Path, tick: u64) -> PathBuf {
    dir.join(format!("ckpt-{tick:010}.ckpt"))
}

/// Atomically writes a checkpoint for `tick` into `dir`.
///
/// # Errors
///
/// Propagates the underlying write failure.
pub fn write_checkpoint(dir: &Path, fingerprint: u64, tick: u64, body: &[u8]) -> io::Result<()> {
    atomic_write(
        &checkpoint_path(dir, tick),
        &encode_checkpoint(fingerprint, tick, body),
    )
}

/// Checkpoint files present in `dir`, oldest first.
///
/// # Errors
///
/// Propagates directory-listing failures.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("ckpt-") && name.ends_with(".ckpt") {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// Walks checkpoints newest-first and returns the first that decodes
/// and carries the expected fingerprint — tolerating a torn or stale
/// latest file, exactly the crash case checkpoints exist for.
///
/// # Errors
///
/// Propagates directory/file I/O failures. A missing or universally
/// damaged set of checkpoints is `Ok(None)`.
pub fn latest_valid_checkpoint(dir: &Path, fingerprint: u64) -> io::Result<Option<CheckpointFile>> {
    for path in list_checkpoints(dir)?.into_iter().rev() {
        let bytes = fs::read(&path)?;
        if let Some(ckpt) = decode_checkpoint(&bytes) {
            if ckpt.fingerprint == fingerprint {
                return Ok(Some(ckpt));
            }
        }
    }
    Ok(None)
}

/// Deletes all but the newest `keep` checkpoints.
///
/// # Errors
///
/// Propagates directory/file I/O failures.
pub fn prune_checkpoints(dir: &Path, keep: usize) -> io::Result<()> {
    let paths = list_checkpoints(dir)?;
    let excess = paths.len().saturating_sub(keep);
    for path in paths.into_iter().take(excess) {
        fs::remove_file(path)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("magellan-ckpt-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn envelope_roundtrips_and_rejects_damage() {
        let body = b"simulator state bytes".to_vec();
        let enc = encode_checkpoint(0xFEED, 42, &body);
        let dec = decode_checkpoint(&enc).unwrap();
        assert_eq!((dec.fingerprint, dec.tick), (0xFEED, 42));
        assert_eq!(dec.body, body);
        // Truncation, bit flips anywhere, trailing garbage: all rejected.
        assert!(decode_checkpoint(&enc[..enc.len() - 1]).is_none());
        for i in [0usize, 9, 15, 25, 33, 39, 45] {
            let mut bad = enc.clone();
            bad[i] ^= 0x10;
            assert!(decode_checkpoint(&bad).is_none(), "flip at {i} accepted");
        }
        let mut long = enc.clone();
        long.push(0);
        assert!(decode_checkpoint(&long).is_none());
    }

    #[test]
    fn latest_valid_falls_back_past_damage() {
        let dir = temp_dir("fallback");
        write_checkpoint(&dir, 7, 100, b"older").unwrap();
        write_checkpoint(&dir, 7, 200, b"newer").unwrap();
        // Newest gets torn by the crash.
        let newest = checkpoint_path(&dir, 200);
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() - 3]).unwrap();

        let got = latest_valid_checkpoint(&dir, 7).unwrap().unwrap();
        assert_eq!(got.tick, 100);
        assert_eq!(got.body, b"older");
        // A different fingerprint matches nothing.
        assert!(latest_valid_checkpoint(&dir, 8).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = temp_dir("prune");
        for tick in [10, 20, 30, 40] {
            write_checkpoint(&dir, 1, tick, b"x").unwrap();
        }
        prune_checkpoints(&dir, 2).unwrap();
        let left = list_checkpoints(&dir).unwrap();
        assert_eq!(left.len(), 2);
        assert!(left[0].ends_with("ckpt-0000000030.ckpt"));
        assert!(left[1].ends_with("ckpt-0000000040.ckpt"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
