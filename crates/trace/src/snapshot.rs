//! Topology snapshot reconstruction.
//!
//! The paper treats the trace as "continuous-time snapshots of P2P
//! streaming topologies": at any instant, the peers whose latest
//! report is fresh form the *stable peer* set, and every address
//! appearing either as a reporter or in a partner list belongs to the
//! *known peer* universe (§3.2, §4.1.1). A [`Snapshot`] materializes
//! exactly that.

use crate::report::{PeerReport, REPORT_INTERVAL};
use crate::store::TraceStore;
use magellan_netsim::{uncovered_fraction, FaultWindow, PeerAddr, SimDuration, SimTime};
use magellan_workload::ChannelId;
use std::collections::BTreeMap;

/// A reconstructed view of the overlay at one instant.
#[derive(Debug, Clone)]
pub struct Snapshot<'a> {
    /// The reconstruction instant.
    pub time: SimTime,
    /// Fraction of this snapshot's staleness horizon during which the
    /// collection server was up (1.0 when no outage overlapped it).
    /// Snapshots with `coverage < 1.0` systematically under-count
    /// peers — consumers must flag them, not silently average over
    /// the hole.
    pub coverage: f64,
    /// The freshest report of each stable peer (report within the
    /// staleness horizon), keyed by reporter address. A `BTreeMap` so
    /// every iterator below yields address order — snapshot consumers
    /// feed figure pipelines where hash order would leak into bytes.
    reports: BTreeMap<PeerAddr, &'a PeerReport>,
}

impl<'a> Snapshot<'a> {
    /// Whether a server outage ate into this snapshot's horizon, so
    /// the stable-peer set is a known undercount.
    pub fn is_partial(&self) -> bool {
        self.coverage < 1.0
    }
    /// Number of stable peers.
    pub fn stable_count(&self) -> usize {
        self.reports.len()
    }

    /// The stable peers' reports, in ascending address order.
    pub fn reports(&self) -> impl Iterator<Item = &'a PeerReport> + '_ {
        self.reports.values().copied()
    }

    /// The freshest report of `addr`, when stable.
    pub fn report_of(&self, addr: PeerAddr) -> Option<&'a PeerReport> {
        self.reports.get(&addr).copied()
    }

    /// Whether `addr` is a stable peer here.
    pub fn is_stable(&self, addr: PeerAddr) -> bool {
        self.reports.contains_key(&addr)
    }

    /// Every known address: reporters plus everyone in a partner
    /// list. This is the paper's "total peers" population (Fig. 1A).
    pub fn known_peers(&self) -> Vec<PeerAddr> {
        let mut v: Vec<PeerAddr> = self
            .reports
            .values()
            .flat_map(|r| r.partners.iter().map(|p| p.addr))
            .chain(self.reports.keys().copied())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Stable peers watching `channel`.
    pub fn reports_on_channel(
        &self,
        channel: ChannelId,
    ) -> impl Iterator<Item = &'a PeerReport> + '_ {
        self.reports
            .values()
            .copied()
            .filter(move |r| r.channel == channel)
    }
}

/// Builds snapshots from a [`TraceStore`].
#[derive(Debug, Clone, Copy)]
pub struct SnapshotBuilder<'a> {
    store: &'a TraceStore,
    staleness: SimDuration,
    /// Known collection-server outages; overlap with a snapshot's
    /// horizon marks it partial (a slice borrow so the builder stays
    /// `Copy`).
    outages: &'a [FaultWindow],
}

impl<'a> SnapshotBuilder<'a> {
    /// Creates a builder with the default staleness horizon of 1.5
    /// report intervals (a peer that missed one report but not two is
    /// still considered present — UDP loses datagrams).
    pub fn new(store: &'a TraceStore) -> Self {
        SnapshotBuilder {
            store,
            staleness: SimDuration::from_millis(REPORT_INTERVAL.as_millis() * 3 / 2),
            outages: &[],
        }
    }

    /// Overrides the staleness horizon.
    pub fn staleness(mut self, staleness: SimDuration) -> Self {
        self.staleness = staleness;
        self
    }

    /// Declares the collection server's outage schedule so snapshots
    /// overlapping an outage carry `coverage < 1.0` instead of
    /// masquerading as complete.
    pub fn outages(mut self, outages: &'a [FaultWindow]) -> Self {
        self.outages = outages;
        self
    }

    /// Reconstructs the snapshot at `t`: for every peer with a report
    /// in `(t − staleness, t]`, its freshest such report, plus the
    /// fraction of that horizon the collection server was up.
    pub fn at(&self, t: SimTime) -> Snapshot<'a> {
        let start = t - self.staleness + SimDuration::from_millis(1);
        let end = t + SimDuration::from_millis(1); // inclusive of t
        let mut freshest: BTreeMap<PeerAddr, &'a PeerReport> = BTreeMap::new();
        for r in self.store.range(start, end) {
            match freshest.get(&r.addr) {
                Some(prev) if prev.time >= r.time => {}
                _ => {
                    freshest.insert(r.addr, r);
                }
            }
        }
        Snapshot {
            time: t,
            coverage: uncovered_fraction(self.outages, start, end),
            reports: freshest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMap;
    use crate::report::PartnerRecord;

    fn report(ip: u32, minute: u64, partners: &[u32]) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(minute),
            addr: PeerAddr::from_u32(ip),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 400.0,
            send_throughput_kbps: 50.0,
            partners: partners
                .iter()
                .map(|&p| PartnerRecord {
                    addr: PeerAddr::from_u32(p),
                    tcp_port: 1,
                    udp_port: 2,
                    segments_sent: 20,
                    segments_received: 0,
                })
                .collect(),
        }
    }

    fn at_min(m: u64) -> SimTime {
        SimTime::ORIGIN + SimDuration::from_mins(m)
    }

    #[test]
    fn snapshot_contains_fresh_reporters_only() {
        let store: TraceStore = vec![
            report(1, 20, &[]),
            report(2, 25, &[]),
            report(3, 5, &[]), // stale by minute 30
        ]
        .into_iter()
        .collect();
        let snap = SnapshotBuilder::new(&store).at(at_min(30));
        assert_eq!(snap.stable_count(), 2);
        assert!(snap.is_stable(PeerAddr::from_u32(1)));
        assert!(snap.is_stable(PeerAddr::from_u32(2)));
        assert!(!snap.is_stable(PeerAddr::from_u32(3)));
    }

    #[test]
    fn freshest_report_wins() {
        let store: TraceStore = vec![report(1, 20, &[9]), report(1, 28, &[7])]
            .into_iter()
            .collect();
        let snap = SnapshotBuilder::new(&store).at(at_min(30));
        let r = snap.report_of(PeerAddr::from_u32(1)).unwrap();
        assert_eq!(r.time, at_min(28));
        assert_eq!(r.partners[0].addr, PeerAddr::from_u32(7));
    }

    #[test]
    fn report_exactly_at_t_is_included() {
        let store: TraceStore = vec![report(1, 30, &[])].into_iter().collect();
        let snap = SnapshotBuilder::new(&store).at(at_min(30));
        assert_eq!(snap.stable_count(), 1);
    }

    #[test]
    fn known_peers_include_partner_list_ips() {
        let store: TraceStore = vec![report(1, 20, &[100, 101]), report(2, 22, &[100])]
            .into_iter()
            .collect();
        let snap = SnapshotBuilder::new(&store).at(at_min(25));
        let known = snap.known_peers();
        let ips: Vec<u32> = known.iter().map(|a| a.as_u32()).collect();
        assert_eq!(ips, vec![1, 2, 100, 101]);
    }

    #[test]
    fn channel_filter() {
        let mut r1 = report(1, 20, &[]);
        r1.channel = ChannelId::CCTV4;
        let store: TraceStore = vec![r1, report(2, 21, &[])].into_iter().collect();
        let snap = SnapshotBuilder::new(&store).at(at_min(25));
        assert_eq!(snap.reports_on_channel(ChannelId::CCTV4).count(), 1);
        assert_eq!(snap.reports_on_channel(ChannelId::CCTV1).count(), 1);
    }

    #[test]
    fn custom_staleness() {
        let store: TraceStore = vec![report(1, 10, &[])].into_iter().collect();
        let tight = SnapshotBuilder::new(&store)
            .staleness(SimDuration::from_mins(5))
            .at(at_min(20));
        assert_eq!(tight.stable_count(), 0);
        let loose = SnapshotBuilder::new(&store)
            .staleness(SimDuration::from_mins(60))
            .at(at_min(20));
        assert_eq!(loose.stable_count(), 1);
    }

    #[test]
    fn empty_store_snapshot() {
        let store = TraceStore::new();
        let snap = SnapshotBuilder::new(&store).at(at_min(100));
        assert_eq!(snap.stable_count(), 0);
        assert!(snap.known_peers().is_empty());
        assert!(!snap.is_partial());
        assert!((snap.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outage_overlap_marks_snapshots_partial() {
        let store: TraceStore = vec![report(1, 20, &[])].into_iter().collect();
        // Server down minutes 25–30; horizon of the minute-30
        // snapshot is (15, 30], so 5 of 15 minutes are dark.
        let outage = [FaultWindow::new(at_min(25), at_min(30))];
        let b = SnapshotBuilder::new(&store).outages(&outage);
        let partial = b.at(at_min(30));
        assert!(partial.is_partial());
        assert!(
            (partial.coverage - 2.0 / 3.0).abs() < 1e-3,
            "coverage = {}",
            partial.coverage
        );
        // A snapshot whose horizon misses the outage is complete.
        let full = b.at(at_min(50));
        assert!(!full.is_partial());
        assert!((full.coverage - 1.0).abs() < 1e-12);
        // The default builder never marks anything partial.
        assert!(!SnapshotBuilder::new(&store).at(at_min(30)).is_partial());
    }
}
