//! The durable segmented report archive (crash-safe §3.2 storage).
//!
//! Reports stream into CRC-framed segments on disk ([`crate::segment`]
//! has the codec). The **unsealed tail** segment grows in place and is
//! synced at every checkpoint; once it crosses the configured size it
//! is **sealed**: the footer is appended, the file is synced and then
//! atomically renamed to its final `seg-NNNNNN.mseg` name, and the
//! manifest is rewritten atomically. A crash can therefore tear at
//! most the unsealed tail, and the reader tolerates exactly that —
//! plus arbitrary later corruption, which it quarantines while
//! resynchronising to the next intact frame.

use crate::atomicio::{atomic_write, TMP_SUFFIX};
use crate::report::PeerReport;
use crate::segment::{
    self, append_frame, decode_footer, decode_header, scan_frames, SegmentFooter, SegmentHeader,
    SEGMENT_FOOTER_LEN, SEGMENT_HEADER_LEN,
};
use crate::wire;
use bytes::Buf;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Name of the unsealed tail segment file.
pub const TAIL_NAME: &str = "tail.mseg";

/// Name of the archive manifest file.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Tuning knobs of an [`ArchiveWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveConfig {
    /// A segment seals once its frame region reaches this many bytes.
    pub segment_bytes: u64,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            segment_bytes: 256 * 1024,
        }
    }
}

/// Manifest entry for one sealed segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealedSegment {
    /// Zero-based segment index.
    pub index: u64,
    /// Archive-wide index of the segment's first record.
    pub first_record: u64,
    /// Records sealed into the segment.
    pub records: u64,
    /// Bytes of the frame region.
    pub frame_bytes: u64,
    /// CRC32 of the frame region.
    pub frame_crc: u32,
}

/// File name of a sealed segment.
pub fn segment_file_name(index: u64) -> String {
    format!("seg-{index:06}.mseg")
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------- manifest

fn render_manifest(cfg: ArchiveConfig, sealed: &[SealedSegment]) -> String {
    let mut out = String::from("magellan-archive v1\n");
    out.push_str(&format!("segment_bytes {}\n", cfg.segment_bytes));
    for s in sealed {
        out.push_str(&format!(
            "seg {} {} {} {} {:08x}\n",
            s.index, s.first_record, s.records, s.frame_bytes, s.frame_crc
        ));
    }
    out
}

/// Parsed manifest contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The seal threshold the archive was written with.
    pub segment_bytes: u64,
    /// Sealed segments in index order.
    pub sealed: Vec<SealedSegment>,
}

/// Reads and parses the manifest, if present and well-formed.
///
/// # Errors
///
/// Propagates I/O failures other than the file being absent;
/// `Ok(None)` means "no usable manifest" (absent or unparseable — the
/// reader falls back to scanning the directory either way).
pub fn read_manifest(dir: &Path) -> io::Result<Option<Manifest>> {
    let text = match fs::read_to_string(dir.join(MANIFEST_NAME)) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(parse_manifest(&text))
}

fn parse_manifest(text: &str) -> Option<Manifest> {
    let mut lines = text.lines();
    if lines.next()? != "magellan-archive v1" {
        return None;
    }
    let mut segment_bytes = None;
    let mut sealed = Vec::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("segment_bytes") => {
                segment_bytes = Some(parts.next()?.parse().ok()?);
            }
            Some("seg") => {
                let index: u64 = parts.next()?.parse().ok()?;
                let first_record: u64 = parts.next()?.parse().ok()?;
                let records: u64 = parts.next()?.parse().ok()?;
                let frame_bytes: u64 = parts.next()?.parse().ok()?;
                let frame_crc = u32::from_str_radix(parts.next()?, 16).ok()?;
                if index != sealed.len() as u64 {
                    return None;
                }
                sealed.push(SealedSegment {
                    index,
                    first_record,
                    records,
                    frame_bytes,
                    frame_crc,
                });
            }
            Some(_) | None => return None,
        }
    }
    Some(Manifest {
        segment_bytes: segment_bytes?,
        sealed,
    })
}

// ------------------------------------------------------------------ writer

#[derive(Debug)]
struct Tail {
    file: File,
    records: u64,
    frame_bytes: u64,
    crc_state: u32,
    first_record: u64,
    index: u64,
}

/// Streaming, crash-safe archive writer.
#[derive(Debug)]
pub struct ArchiveWriter {
    dir: PathBuf,
    cfg: ArchiveConfig,
    sealed: Vec<SealedSegment>,
    tail: Option<Tail>,
    records_total: u64,
}

impl ArchiveWriter {
    /// Creates a fresh archive in `dir` (created if missing). Any
    /// existing archive files in the directory are removed first —
    /// the writer owns the directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and cleanup I/O failures.
    pub fn create(dir: &Path, cfg: ArchiveConfig) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        for name in archive_file_names(dir)? {
            fs::remove_file(dir.join(&name))?;
        }
        let writer = ArchiveWriter {
            dir: dir.to_path_buf(),
            cfg,
            sealed: Vec::new(),
            tail: None,
            records_total: 0,
        };
        atomic_write(
            &writer.dir.join(MANIFEST_NAME),
            render_manifest(cfg, &writer.sealed).as_bytes(),
        )?;
        Ok(writer)
    }

    /// Reopens an existing archive truncated to exactly `cursor`
    /// records — the checkpoint-resume path. Sealed segments wholly
    /// within the cursor are kept byte-for-byte; the remainder of the
    /// prefix is replayed into a fresh tail, and everything after the
    /// cursor (including a torn tail) is discarded. Because the writer
    /// is deterministic, continuing from here reproduces an
    /// uninterrupted run's archive bytes exactly.
    ///
    /// # Errors
    ///
    /// Fails when fewer than `cursor` records are recoverable from the
    /// on-disk prefix (the caller should fall back to an earlier
    /// checkpoint), or on underlying I/O errors.
    pub fn resume(dir: &Path, cfg: ArchiveConfig, cursor: u64) -> io::Result<Self> {
        let files = archive_segment_files(dir)?;

        // Keep the longest prefix of fully-clean sealed segments that
        // fits inside the cursor.
        let mut kept: Vec<SealedSegment> = Vec::new();
        let mut kept_records = 0u64;
        let mut replay_from = 0usize;
        for (i, name) in files.sealed.iter().enumerate() {
            match clean_sealed_segment(dir, name, kept.len() as u64, kept_records)? {
                Some(meta) if kept_records + meta.records <= cursor => {
                    kept_records += meta.records;
                    kept.push(meta);
                    replay_from = i + 1;
                }
                _ => break,
            }
        }

        // Recover the records in [kept_records, cursor) from the
        // remaining files, in order.
        let needed = cursor - kept_records;
        let mut replay: Vec<Vec<u8>> = Vec::new();
        'files: for name in files
            .sealed
            .iter()
            .skip(replay_from)
            .chain(files.tail.iter())
        {
            let bytes = fs::read(dir.join(name))?;
            let region = frame_region(&bytes);
            scan_frames(region, 0, |_, payload| {
                if (replay.len() as u64) < needed {
                    replay.push(payload.to_vec());
                }
                true
            });
            if replay.len() as u64 >= needed {
                break 'files;
            }
        }
        if (replay.len() as u64) < needed {
            return Err(invalid(format!(
                "archive holds only {} recoverable records before checkpoint cursor {cursor}",
                kept_records + replay.len() as u64
            )));
        }

        // Drop everything past the kept prefix, then rebuild.
        for name in files
            .sealed
            .iter()
            .skip(replay_from)
            .chain(files.tail.iter())
        {
            fs::remove_file(dir.join(name))?;
        }
        for name in files.stray_tmp {
            fs::remove_file(dir.join(name))?;
        }
        let mut writer = ArchiveWriter {
            dir: dir.to_path_buf(),
            cfg,
            sealed: kept,
            tail: None,
            records_total: kept_records,
        };
        atomic_write(
            &writer.dir.join(MANIFEST_NAME),
            render_manifest(cfg, &writer.sealed).as_bytes(),
        )?;
        for payload in replay {
            writer.append_payload(&payload)?;
        }
        writer.sync()?;
        Ok(writer)
    }

    /// Appends one report as a frame, sealing the tail segment when it
    /// crosses the configured size.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the archive is left in a state the
    /// reader and [`ArchiveWriter::resume`] both tolerate.
    pub fn append(&mut self, report: &PeerReport) -> io::Result<()> {
        let payload = wire::encode(report);
        self.append_payload(&payload)
    }

    fn append_payload(&mut self, payload: &[u8]) -> io::Result<()> {
        if self.tail.is_none() {
            self.open_tail()?;
        }
        let mut frame = Vec::with_capacity(payload.len() + segment::FRAME_HEADER_LEN);
        append_frame(&mut frame, payload);
        // Borrow is re-established after open_tail above.
        let tail = self
            .tail
            .as_mut()
            .ok_or_else(|| invalid("no tail".into()))?;
        tail.file.write_all(&frame)?;
        tail.crc_state = segment::crc32_update(tail.crc_state, &frame);
        tail.frame_bytes += frame.len() as u64;
        tail.records += 1;
        self.records_total += 1;
        if tail.frame_bytes >= self.cfg.segment_bytes {
            self.seal_tail()?;
        }
        Ok(())
    }

    fn open_tail(&mut self) -> io::Result<()> {
        let header = encode_tail_header(self.sealed.len() as u64, self.records_total);
        let path = self.dir.join(TAIL_NAME);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&header)?;
        self.tail = Some(Tail {
            file,
            records: 0,
            frame_bytes: 0,
            crc_state: segment::CRC32_INIT,
            first_record: self.records_total,
            index: self.sealed.len() as u64,
        });
        Ok(())
    }

    fn seal_tail(&mut self) -> io::Result<()> {
        let Some(mut tail) = self.tail.take() else {
            return Ok(());
        };
        let frame_crc = segment::crc32_finish(tail.crc_state);
        let footer = segment::encode_footer(SegmentFooter {
            records: tail.records,
            frame_bytes: tail.frame_bytes,
            frame_crc,
        });
        tail.file.write_all(&footer)?;
        tail.file.sync_all()?;
        drop(tail.file);
        fs::rename(
            self.dir.join(TAIL_NAME),
            self.dir.join(segment_file_name(tail.index)),
        )?;
        self.sealed.push(SealedSegment {
            index: tail.index,
            first_record: tail.first_record,
            records: tail.records,
            frame_bytes: tail.frame_bytes,
            frame_crc,
        });
        atomic_write(
            &self.dir.join(MANIFEST_NAME),
            render_manifest(self.cfg, &self.sealed).as_bytes(),
        )
    }

    /// Flushes the unsealed tail to stable storage — called before a
    /// checkpoint is written so that every record the checkpoint's
    /// cursor covers is durable.
    ///
    /// # Errors
    ///
    /// Propagates the flush/sync failure.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(tail) = self.tail.as_mut() {
            tail.file.flush()?;
            tail.file.sync_all()?;
        }
        Ok(())
    }

    /// Seals the tail (if it holds any records) and finalises the
    /// manifest, consuming the writer.
    ///
    /// # Errors
    ///
    /// Propagates seal/manifest I/O failures.
    pub fn finish(mut self) -> io::Result<ArchiveSummary> {
        match self.tail.take() {
            Some(tail) if tail.records > 0 => {
                self.tail = Some(tail);
                self.seal_tail()?;
            }
            Some(_) => {
                // Header-only tail: nothing worth sealing.
                fs::remove_file(self.dir.join(TAIL_NAME))?;
            }
            None => {}
        }
        Ok(ArchiveSummary {
            records: self.records_total,
            sealed_segments: self.sealed.len() as u64,
        })
    }

    /// Records appended so far (the checkpoint cursor).
    pub fn records_written(&self) -> u64 {
        self.records_total
    }

    /// Sealed segments so far.
    pub fn sealed_segments(&self) -> u64 {
        self.sealed.len() as u64
    }
}

fn encode_tail_header(index: u64, first_record: u64) -> [u8; SEGMENT_HEADER_LEN] {
    segment::encode_header(SegmentHeader {
        index,
        first_record,
    })
}

/// What [`ArchiveWriter::finish`] sealed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveSummary {
    /// Total records archived.
    pub records: u64,
    /// Sealed segment count.
    pub sealed_segments: u64,
}

/// Re-derives a sealed segment's manifest entry, returning `None`
/// unless header, footer, frame CRC and frame count all check out.
fn clean_sealed_segment(
    dir: &Path,
    name: &str,
    expect_index: u64,
    expect_first: u64,
) -> io::Result<Option<SealedSegment>> {
    let bytes = fs::read(dir.join(name))?;
    let Some(header) = decode_header(&bytes) else {
        return Ok(None);
    };
    let Some(footer) = decode_footer(&bytes) else {
        return Ok(None);
    };
    if header.index != expect_index || header.first_record != expect_first {
        return Ok(None);
    }
    let Some(region) = bytes.get(SEGMENT_HEADER_LEN..bytes.len() - SEGMENT_FOOTER_LEN) else {
        return Ok(None);
    };
    if region.len() as u64 != footer.frame_bytes || segment::crc32(region) != footer.frame_crc {
        return Ok(None);
    }
    let scan = scan_frames(region, 0, |_, payload| decodes_fully(payload));
    if scan.frames != footer.records || scan.corrupt_regions != 0 || scan.truncated_tail {
        return Ok(None);
    }
    Ok(Some(SealedSegment {
        index: header.index,
        first_record: header.first_record,
        records: footer.records,
        frame_bytes: footer.frame_bytes,
        frame_crc: footer.frame_crc,
    }))
}

// ------------------------------------------------------------------ reader

/// What a corruption-tolerant read recovered and what it had to skip.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Records successfully decoded.
    pub records_recovered: u64,
    /// Damaged regions skipped (each destroyed at least one frame).
    pub corrupt_regions: u64,
    /// Total quarantined bytes.
    pub bytes_quarantined: u64,
    /// Quarantined byte ranges, per file.
    pub quarantines: Vec<Quarantine>,
    /// The unsealed tail ended mid-frame (expected after a crash).
    pub truncated_tail: bool,
    /// Segment files visited.
    pub segments_read: u64,
    /// How many of those were sealed (footer intact).
    pub sealed_segments: u64,
}

impl RecoveryReport {
    /// Whether the archive read back with no damage at all.
    pub fn is_clean(&self) -> bool {
        self.corrupt_regions == 0 && !self.truncated_tail && self.bytes_quarantined == 0
    }
}

/// One quarantined byte range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// Segment file name.
    pub file: String,
    /// First quarantined byte offset within the file.
    pub start: u64,
    /// One past the last quarantined byte.
    pub end: u64,
}

#[derive(Debug, Default)]
struct ArchiveFiles {
    sealed: Vec<String>,
    tail: Option<String>,
    stray_tmp: Vec<String>,
}

fn archive_segment_files(dir: &Path) -> io::Result<ArchiveFiles> {
    let mut files = ArchiveFiles::default();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(TMP_SUFFIX) {
            files.stray_tmp.push(name);
        } else if name == TAIL_NAME {
            files.tail = Some(name);
        } else if name.starts_with("seg-") && name.ends_with(".mseg") {
            files.sealed.push(name);
        }
    }
    files.sealed.sort();
    Ok(files)
}

fn archive_file_names(dir: &Path) -> io::Result<Vec<String>> {
    let files = archive_segment_files(dir)?;
    let mut names = files.sealed;
    names.extend(files.tail);
    names.extend(files.stray_tmp);
    if dir.join(MANIFEST_NAME).is_file() {
        names.push(MANIFEST_NAME.to_string());
    }
    Ok(names)
}

fn decodes_fully(payload: &[u8]) -> bool {
    let mut buf = payload;
    match wire::decode(&mut buf) {
        Ok(_) => !buf.has_remaining(),
        Err(_) => false,
    }
}

/// The frame region of a segment file: past the (possibly damaged)
/// header, and excluding a valid footer when one is present.
fn frame_region(bytes: &[u8]) -> &[u8] {
    let end = if decode_footer(bytes).is_some() {
        bytes.len() - SEGMENT_FOOTER_LEN
    } else {
        bytes.len()
    };
    bytes.get(SEGMENT_HEADER_LEN.min(end)..end).unwrap_or(&[])
}

/// Streams every recoverable report out of the archive in write
/// order, resynchronising past damage. Reads one segment at a time —
/// memory stays bounded by the segment size regardless of archive
/// size.
///
/// # Errors
///
/// Propagates directory/file I/O errors. Corruption is **not** an
/// error — it is accounted in the returned [`RecoveryReport`].
pub fn read_archive(dir: &Path, sink: impl FnMut(PeerReport)) -> io::Result<RecoveryReport> {
    read_archive_limit(dir, u64::MAX, sink)
}

/// As [`read_archive`], stopping after `limit` records — the
/// checkpoint-resume path replays exactly the archive prefix its
/// cursor covers.
///
/// # Errors
///
/// As [`read_archive`].
pub fn read_archive_limit(
    dir: &Path,
    limit: u64,
    mut sink: impl FnMut(PeerReport),
) -> io::Result<RecoveryReport> {
    let files = archive_segment_files(dir)?;
    let mut report = RecoveryReport::default();
    for name in files.sealed.iter().chain(files.tail.iter()) {
        if report.records_recovered >= limit {
            break;
        }
        let bytes = fs::read(dir.join(name))?;
        report.segments_read += 1;
        let sealed = decode_footer(&bytes).is_some();
        if sealed {
            report.sealed_segments += 1;
        }
        if decode_header(&bytes).is_none() {
            let end = bytes.len().min(SEGMENT_HEADER_LEN) as u64;
            report.corrupt_regions += 1;
            report.bytes_quarantined += end;
            report.quarantines.push(Quarantine {
                file: name.clone(),
                start: 0,
                end,
            });
        }
        let region = frame_region(&bytes);
        let remaining = limit - report.records_recovered;
        let mut taken = 0u64;
        let scan = scan_frames(region, SEGMENT_HEADER_LEN as u64, |_, payload| {
            let mut buf = payload;
            match wire::decode(&mut buf) {
                Ok(r) if !buf.has_remaining() => {
                    if taken < remaining {
                        sink(r);
                        taken += 1;
                    }
                    true
                }
                _ => false,
            }
        });
        report.records_recovered += taken;
        report.corrupt_regions += scan.corrupt_regions;
        report.bytes_quarantined += scan.bytes_quarantined();
        for (start, end) in scan.quarantined {
            report.quarantines.push(Quarantine {
                file: name.clone(),
                start,
                end,
            });
        }
        if scan.truncated_tail {
            report.truncated_tail = true;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMap;
    use magellan_netsim::{PeerAddr, SimDuration, SimTime};
    use magellan_workload::ChannelId;

    fn report(ip: u32, minute: u64) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(minute),
            addr: PeerAddr::from_u32(ip),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 400.0,
            send_throughput_kbps: 100.0,
            partners: vec![],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("magellan-archive-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg() -> ArchiveConfig {
        ArchiveConfig { segment_bytes: 512 }
    }

    fn write_n(dir: &Path, n: u32) -> ArchiveSummary {
        let mut w = ArchiveWriter::create(dir, small_cfg()).unwrap();
        for i in 0..n {
            w.append(&report(i + 1, 20 + u64::from(i))).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip_across_segments() {
        let dir = temp_dir("roundtrip");
        let summary = write_n(&dir, 40);
        assert!(summary.sealed_segments >= 2, "want a multi-segment archive");
        let mut got = Vec::new();
        let rec = read_archive(&dir, |r| got.push(r.addr.as_u32())).unwrap();
        assert!(rec.is_clean(), "{rec:?}");
        assert_eq!(rec.records_recovered, 40);
        assert_eq!(got, (1..=40).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_matches_directory() {
        let dir = temp_dir("manifest");
        let summary = write_n(&dir, 40);
        let m = read_manifest(&dir).unwrap().unwrap();
        assert_eq!(m.sealed.len() as u64, summary.sealed_segments);
        assert_eq!(m.segment_bytes, small_cfg().segment_bytes);
        assert_eq!(
            m.sealed.iter().map(|s| s.records).sum::<u64>(),
            summary.records
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_loses_only_damaged_frame() {
        let dir = temp_dir("bitflip");
        write_n(&dir, 40);
        // Damage one payload byte in the middle of the first sealed
        // segment's frame region.
        let path = dir.join(segment_file_name(0));
        let mut bytes = fs::read(&path).unwrap();
        let mid = SEGMENT_HEADER_LEN + (bytes.len() - SEGMENT_HEADER_LEN) / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let mut got = Vec::new();
        let rec = read_archive(&dir, |r| got.push(r.addr.as_u32())).unwrap();
        assert_eq!(rec.corrupt_regions, 1);
        assert_eq!(rec.records_recovered, 39);
        assert!(rec.bytes_quarantined > 0);
        assert!(!rec.truncated_tail);
        // Everything except exactly one record survives, order kept.
        let missing: Vec<u32> = (1..=40).filter(|i| !got.contains(i)).collect();
        assert_eq!(missing.len(), 1, "exactly one frame lost: {missing:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let dir = temp_dir("trunc");
        let mut w = ArchiveWriter::create(&dir, small_cfg()).unwrap();
        for i in 0..6u32 {
            w.append(&report(i + 1, 20 + u64::from(i))).unwrap();
        }
        w.sync().unwrap();
        drop(w); // crash: tail never sealed
        let tail = dir.join(TAIL_NAME);
        let mut bytes = fs::read(&tail).unwrap();
        bytes.truncate(bytes.len() - 7);
        fs::write(&tail, &bytes).unwrap();

        let mut got = 0u64;
        let rec = read_archive(&dir, |_| got += 1).unwrap();
        assert!(rec.truncated_tail);
        assert_eq!(rec.corrupt_regions, 0);
        assert_eq!(rec.records_recovered, got);
        assert_eq!(got, 5, "all but the torn final frame recovered");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_truncates_to_cursor_byte_identically() {
        let dir_full = temp_dir("resume-full");
        write_n(&dir_full, 40);

        // Interrupted run: 25 records written, checkpoint cursor 20,
        // crash leaves a torn tail.
        let dir_cut = temp_dir("resume-cut");
        let mut w = ArchiveWriter::create(&dir_cut, small_cfg()).unwrap();
        for i in 0..25u32 {
            w.append(&report(i + 1, 20 + u64::from(i))).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let tail = dir_cut.join(TAIL_NAME);
        let mut bytes = fs::read(&tail).unwrap();
        bytes.truncate(bytes.len().saturating_sub(5));
        fs::write(&tail, &bytes).unwrap();

        let mut w = ArchiveWriter::resume(&dir_cut, small_cfg(), 20).unwrap();
        assert_eq!(w.records_written(), 20);
        for i in 20..40u32 {
            w.append(&report(i + 1, 20 + u64::from(i))).unwrap();
        }
        w.finish().unwrap();

        // Byte-identical to the uninterrupted archive, file by file.
        let full = archive_segment_files(&dir_full).unwrap();
        let cut = archive_segment_files(&dir_cut).unwrap();
        assert_eq!(full.sealed, cut.sealed);
        assert_eq!(full.tail, cut.tail);
        for name in &full.sealed {
            assert_eq!(
                fs::read(dir_full.join(name)).unwrap(),
                fs::read(dir_cut.join(name)).unwrap(),
                "{name} differs"
            );
        }
        assert_eq!(
            fs::read(dir_full.join(MANIFEST_NAME)).unwrap(),
            fs::read(dir_cut.join(MANIFEST_NAME)).unwrap()
        );
        fs::remove_dir_all(&dir_full).unwrap();
        fs::remove_dir_all(&dir_cut).unwrap();
    }

    #[test]
    fn resume_fails_when_cursor_unrecoverable() {
        let dir = temp_dir("resume-bad");
        write_n(&dir, 10);
        let err = ArchiveWriter::resume(&dir, small_cfg(), 99).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }
}
