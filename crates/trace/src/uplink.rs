//! Peer-side report uplink with buffering across server downtime.
//!
//! The measurement client fires one UDP datagram per report. When the
//! collection server is down ([`SubmitError::Unavailable`]) the
//! report is not lost outright: the client buffers it in a bounded
//! FIFO and retransmits once the server answers again, oldest first,
//! dropping the oldest on overflow. The server deduplicates
//! retransmissions by `(peer, timestamp)`, so a retry that raced a
//! successful delivery is absorbed idempotently.

use crate::gateway::ReportGateway;
use crate::report::PeerReport;
use crate::server::{SubmitError, TraceServer};
use magellan_netsim::SimTime;
use std::collections::VecDeque;

/// Delivery accounting of one uplink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UplinkStats {
    /// Reports handed to the uplink.
    pub offered: u64,
    /// Reports the server accepted (first try or retransmission).
    pub delivered: u64,
    /// Buffered reports delivered by a later retransmission.
    pub retransmitted: u64,
    /// Buffered reports evicted because the FIFO overflowed.
    pub dropped_overflow: u64,
    /// Reports the server rejected on validation — retrying cannot
    /// help, so they are not buffered.
    pub rejected: u64,
}

/// A bounded store-and-forward queue in front of a [`TraceServer`].
#[derive(Debug)]
pub struct ReportUplink {
    capacity: usize,
    queue: VecDeque<PeerReport>,
    stats: UplinkStats,
}

impl ReportUplink {
    /// Creates an uplink that buffers at most `capacity` reports
    /// across an outage (at least 1).
    pub fn new(capacity: usize) -> Self {
        ReportUplink {
            capacity: capacity.max(1),
            queue: VecDeque::new(),
            stats: UplinkStats::default(),
        }
    }

    /// Offers one report at time `now`. Pending buffered reports are
    /// flushed first so the server sees FIFO order; if the server is
    /// down the report joins the buffer (evicting the oldest entry on
    /// overflow).
    pub fn send(&mut self, report: PeerReport, now: SimTime, server: &TraceServer) {
        self.send_via(report, now, &mut &*server);
    }

    /// As [`ReportUplink::send`], for any [`ReportGateway`] backend —
    /// the durable study pipeline delivers into an archive gateway
    /// through this.
    pub fn send_via<G: ReportGateway>(
        &mut self,
        report: PeerReport,
        now: SimTime,
        gateway: &mut G,
    ) {
        self.stats.offered += 1;
        if !self.queue.is_empty() {
            self.flush_via(now, gateway);
        }
        if !self.queue.is_empty() {
            // Server still down mid-flush: preserve order, buffer.
            self.buffer(report);
            return;
        }
        match gateway.submit_report(report.clone(), now) {
            Ok(()) => self.stats.delivered += 1,
            Err(SubmitError::Unavailable { .. }) => self.buffer(report),
            Err(_) => self.stats.rejected += 1,
        }
    }

    /// Retransmits buffered reports, oldest first, until the queue
    /// drains or the server bounces again. Returns how many were
    /// delivered by this call.
    pub fn flush(&mut self, now: SimTime, server: &TraceServer) -> usize {
        self.flush_via(now, &mut &*server)
    }

    /// As [`ReportUplink::flush`], for any [`ReportGateway`] backend.
    pub fn flush_via<G: ReportGateway>(&mut self, now: SimTime, gateway: &mut G) -> usize {
        let mut sent = 0;
        while let Some(front) = self.queue.front() {
            match gateway.submit_report(front.clone(), now) {
                Ok(()) => {
                    self.queue.pop_front();
                    self.stats.delivered += 1;
                    self.stats.retransmitted += 1;
                    sent += 1;
                }
                Err(SubmitError::Unavailable { .. }) => break,
                Err(_) => {
                    self.queue.pop_front();
                    self.stats.rejected += 1;
                }
            }
        }
        sent
    }

    fn buffer(&mut self, report: PeerReport) {
        if self.queue.len() == self.capacity {
            self.queue.pop_front();
            self.stats.dropped_overflow += 1;
        }
        self.queue.push_back(report);
    }

    /// Reports currently awaiting retransmission.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Delivery accounting so far.
    pub fn stats(&self) -> UplinkStats {
        self.stats
    }

    /// The buffered reports, oldest first — checkpoint capture.
    pub fn queued(&self) -> impl Iterator<Item = &PeerReport> {
        self.queue.iter()
    }

    /// Rebuilds an uplink mid-flight from checkpointed state: the
    /// buffered backlog (oldest first) and the accounting so far.
    pub fn restore(capacity: usize, queue: Vec<PeerReport>, stats: UplinkStats) -> Self {
        ReportUplink {
            capacity: capacity.max(1),
            queue: queue.into(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMap;
    use magellan_netsim::{FaultWindow, PeerAddr, SimDuration};
    use magellan_workload::ChannelId;

    fn report(ip: u32, minute: u64) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(minute),
            addr: PeerAddr::from_u32(ip),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 400.0,
            send_throughput_kbps: 50.0,
            partners: vec![],
        }
    }

    fn at_min(m: u64) -> SimTime {
        SimTime::ORIGIN + SimDuration::from_mins(m)
    }

    fn downtime_server() -> TraceServer {
        TraceServer::with_downtime(
            SimTime::at(14, 0, 0),
            vec![FaultWindow::new(at_min(30), at_min(60))],
        )
    }

    #[test]
    fn delivers_directly_when_server_is_up() {
        let server = downtime_server();
        let mut up = ReportUplink::new(8);
        up.send(report(1, 20), at_min(20), &server);
        assert_eq!(up.pending(), 0);
        assert_eq!(up.stats().delivered, 1);
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn buffers_across_downtime_and_retransmits_in_order() {
        let server = downtime_server();
        let mut up = ReportUplink::new(8);
        up.send(report(1, 35), at_min(35), &server);
        up.send(report(2, 45), at_min(45), &server);
        assert_eq!(up.pending(), 2);
        assert_eq!(server.len(), 0);
        // Server back at minute 60: next send flushes backlog first.
        up.send(report(3, 65), at_min(65), &server);
        assert_eq!(up.pending(), 0);
        let st = up.stats();
        assert_eq!(st.delivered, 3);
        assert_eq!(st.retransmitted, 2);
        let addrs: Vec<u32> = server
            .into_store()
            .reports()
            .iter()
            .map(|r| r.addr.as_u32())
            .collect();
        assert_eq!(addrs, vec![1, 2, 3], "FIFO order violated");
    }

    #[test]
    fn overflow_drops_oldest() {
        let server = downtime_server();
        let mut up = ReportUplink::new(2);
        for (ip, minute) in [(1, 31), (2, 40), (3, 50)] {
            up.send(report(ip, minute), at_min(minute), &server);
        }
        assert_eq!(up.pending(), 2);
        assert_eq!(up.stats().dropped_overflow, 1);
        assert_eq!(up.flush(at_min(61), &server), 2);
        let addrs: Vec<u32> = server
            .into_store()
            .reports()
            .iter()
            .map(|r| r.addr.as_u32())
            .collect();
        assert_eq!(addrs, vec![2, 3], "oldest report should have been evicted");
    }

    #[test]
    fn retransmitted_duplicates_are_absorbed() {
        let server = downtime_server();
        let mut up = ReportUplink::new(8);
        // Delivered once directly…
        up.send(report(1, 20), at_min(20), &server);
        // …and offered again (e.g. an ack was lost): the server
        // absorbs the duplicate, the uplink still counts delivery.
        up.send(report(1, 20), at_min(21), &server);
        assert_eq!(server.len(), 1);
        assert_eq!(server.stats().duplicates, 1);
        assert_eq!(up.stats().delivered, 2);
    }

    #[test]
    fn validation_failures_are_not_buffered() {
        let server = downtime_server();
        let mut up = ReportUplink::new(8);
        let mut bad = report(1, 20);
        bad.recv_throughput_kbps = f64::NAN;
        up.send(bad, at_min(20), &server);
        assert_eq!(up.pending(), 0);
        assert_eq!(up.stats().rejected, 1);
    }
}
