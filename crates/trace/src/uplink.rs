//! Peer-side report uplink with buffering across server downtime.
//!
//! The measurement client fires one UDP datagram per report. When the
//! collection server is down ([`SubmitError::Unavailable`]) the
//! report is not lost outright: the client buffers it in a bounded
//! FIFO and retransmits once the server answers again, oldest first,
//! dropping the oldest on overflow. The server deduplicates
//! retransmissions by `(peer, timestamp)`, so a retry that raced a
//! successful delivery is absorbed idempotently.

use crate::codec::{self, ClientMsg};
use crate::gateway::ReportGateway;
use crate::report::PeerReport;
use crate::server::{SubmitError, TraceServer};
use crate::wire::{self, StatusCode};
use bytes::Bytes;
use magellan_netsim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs, UdpSocket};
use std::time::Duration;

/// Delivery accounting of one uplink.
///
/// The balance identity is `offered == delivered + rejected +
/// dropped_overflow + dropped_permanent + pending()`: every report
/// handed to the uplink is eventually delivered, rejected by the
/// server, evicted, abandoned after exhausting its retry budget, or
/// still buffered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UplinkStats {
    /// Reports handed to the uplink.
    pub offered: u64,
    /// Reports the server accepted (first try or retransmission).
    pub delivered: u64,
    /// Buffered reports delivered by a later retransmission.
    pub retransmitted: u64,
    /// Buffered reports evicted because the FIFO overflowed.
    pub dropped_overflow: u64,
    /// Reports the server rejected on validation — retrying cannot
    /// help, so they are not buffered.
    pub rejected: u64,
    /// Submission attempts that reached the gateway, including every
    /// retransmission of the same report — `attempts - offered` is
    /// the retry volume a run generated.
    pub attempts: u64,
    /// Backoff delays that hit the configured cap ([`NetBackoff`]);
    /// the in-process [`ReportUplink`] never waits, so this only
    /// moves on networked uplinks.
    pub backoff_capped: u64,
    /// Reports abandoned after exhausting their retry budget — the
    /// networked uplink's terminal failure. The in-process
    /// [`ReportUplink`] retries forever (its buffer is the budget),
    /// so there this stays 0 and overflow eviction is the only loss.
    pub dropped_permanent: u64,
}

/// A bounded store-and-forward queue in front of a [`TraceServer`].
///
/// # Eviction policy
///
/// The buffer holds at most `capacity` reports. When a report must be
/// buffered and the queue is full, the **oldest** buffered report is
/// evicted (counted in [`UplinkStats::dropped_overflow`]) and the new
/// one joins the tail: during a long outage the uplink keeps the
/// freshest window of reports, matching what the paper's clients did
/// — stale topology snapshots age out of usefulness, recent ones are
/// what the collector wants once it returns. Rejected reports are
/// never buffered (retrying cannot fix validation), and buffered
/// reports are only removed by delivery, rejection-on-retry, or this
/// oldest-first eviction.
#[derive(Debug)]
pub struct ReportUplink {
    capacity: usize,
    queue: VecDeque<PeerReport>,
    stats: UplinkStats,
}

impl ReportUplink {
    /// Creates an uplink that buffers at most `capacity` reports
    /// across an outage (at least 1).
    pub fn new(capacity: usize) -> Self {
        ReportUplink {
            capacity: capacity.max(1),
            queue: VecDeque::new(),
            stats: UplinkStats::default(),
        }
    }

    /// Offers one report at time `now`. Pending buffered reports are
    /// flushed first so the server sees FIFO order; if the server is
    /// down the report joins the buffer (evicting the oldest entry on
    /// overflow).
    pub fn send(&mut self, report: PeerReport, now: SimTime, server: &mut TraceServer) {
        self.send_via(report, now, server);
    }

    /// As [`ReportUplink::send`], for any [`ReportGateway`] backend —
    /// the durable study pipeline delivers into an archive gateway
    /// through this.
    pub fn send_via<G: ReportGateway>(
        &mut self,
        report: PeerReport,
        now: SimTime,
        gateway: &mut G,
    ) {
        self.stats.offered += 1;
        if !self.queue.is_empty() {
            self.flush_via(now, gateway);
        }
        if !self.queue.is_empty() {
            // Server still down mid-flush: preserve order, buffer.
            self.buffer(report);
            return;
        }
        self.stats.attempts += 1;
        match gateway.submit_report(report.clone(), now) {
            Ok(()) => self.stats.delivered += 1,
            Err(
                SubmitError::Unavailable { .. }
                | SubmitError::Busy { .. }
                | SubmitError::RateLimited { .. },
            ) => self.buffer(report),
            Err(_) => self.stats.rejected += 1,
        }
    }

    /// Retransmits buffered reports, oldest first, until the queue
    /// drains or the server bounces again. Returns how many were
    /// delivered by this call.
    pub fn flush(&mut self, now: SimTime, server: &mut TraceServer) -> usize {
        self.flush_via(now, server)
    }

    /// As [`ReportUplink::flush`], for any [`ReportGateway`] backend.
    pub fn flush_via<G: ReportGateway>(&mut self, now: SimTime, gateway: &mut G) -> usize {
        let mut sent = 0;
        while let Some(front) = self.queue.front() {
            self.stats.attempts += 1;
            match gateway.submit_report(front.clone(), now) {
                Ok(()) => {
                    self.queue.pop_front();
                    self.stats.delivered += 1;
                    self.stats.retransmitted += 1;
                    sent += 1;
                }
                Err(
                    SubmitError::Unavailable { .. }
                    | SubmitError::Busy { .. }
                    | SubmitError::RateLimited { .. },
                ) => break,
                Err(_) => {
                    self.queue.pop_front();
                    self.stats.rejected += 1;
                }
            }
        }
        sent
    }

    fn buffer(&mut self, report: PeerReport) {
        if self.queue.len() == self.capacity {
            self.queue.pop_front();
            self.stats.dropped_overflow += 1;
        }
        self.queue.push_back(report);
    }

    /// Reports currently awaiting retransmission.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Delivery accounting so far.
    pub fn stats(&self) -> UplinkStats {
        self.stats
    }

    /// The buffered reports, oldest first — checkpoint capture.
    pub fn queued(&self) -> impl Iterator<Item = &PeerReport> {
        self.queue.iter()
    }

    /// Rebuilds an uplink mid-flight from checkpointed state: the
    /// buffered backlog (oldest first) and the accounting so far.
    pub fn restore(capacity: usize, queue: Vec<PeerReport>, stats: UplinkStats) -> Self {
        ReportUplink {
            capacity: capacity.max(1),
            queue: queue.into(),
            stats,
        }
    }
}

/// Capped-exponential retry schedule with deterministic equal-jitter.
///
/// Delay for retry `n` is drawn uniformly from `[raw/2, raw]` where
/// `raw = min(cap, base << n)` — the "equal jitter" scheme: enough
/// spread to desynchronise a fleet of clients hammering a saturated
/// shard, while never collapsing to a zero delay. The jitter stream
/// is seeded explicitly (fork one per client from the experiment
/// seed), so a drill's retry timing is reproducible.
#[derive(Debug)]
pub struct NetBackoff {
    base_ms: u64,
    cap_ms: u64,
    max_attempts: u32,
    rng: StdRng,
}

impl NetBackoff {
    /// A schedule starting at `base_ms`, capped at `cap_ms`, allowing
    /// at most `max_attempts` transmissions of one report (all
    /// parameters clamped to at least 1).
    pub fn new(base_ms: u64, cap_ms: u64, max_attempts: u32, seed: u64) -> Self {
        let base_ms = base_ms.max(1);
        NetBackoff {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            max_attempts: max_attempts.max(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Total transmissions allowed per report before it is abandoned
    /// as [`UplinkStats::dropped_permanent`].
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The jittered delay before retry number `retry` (1-based), and
    /// whether the un-jittered delay hit the cap.
    pub fn delay_ms(&mut self, retry: u32) -> (u64, bool) {
        let shift = retry.min(20);
        let raw = self
            .base_ms
            .saturating_mul(1u64 << shift)
            .min(self.cap_ms)
            .max(1);
        let capped = raw == self.cap_ms;
        let half = raw / 2;
        let span = raw - half + 1;
        (half + self.rng.next_u64() % span, capped)
    }
}

/// How many times UDP control messages (`Hello`, `WindowMark`,
/// `Finish`) are repeated. They carry no sequence number and get no
/// reply; all three are idempotent on the server, so blind repetition
/// is the loss armour. Reports are never sent blind — they use
/// stop-and-wait with [`NetBackoff`].
pub const UDP_CONTROL_REDUNDANCY: usize = 3;

/// Receive timeout for one UDP stop-and-wait round before the report
/// is retransmitted.
pub const UDP_REPLY_TIMEOUT: Duration = Duration::from_millis(250);

/// Read timeout on the TCP reply stream — hitting it means the
/// service died mid-drill, which surfaces as an I/O error rather than
/// a hang.
pub const TCP_REPLY_TIMEOUT: Duration = Duration::from_secs(30);

enum NetIo {
    Tcp(TcpStream),
    Udp(UdpSocket),
}

/// How many TCP reconnections an uplink attempts across its lifetime
/// before an I/O error becomes terminal. Each reconnection replays
/// the `Hello` and retransmits every unacknowledged report, so a
/// service restart or a chaos-injected connection reset costs retries
/// — not the drill.
pub const DEFAULT_RECONNECT_BUDGET: u32 = 8;

/// The networked client shell: speaks the [`codec`] vocabulary to a
/// `magellan-traced` service over a real socket, with capped
/// exponential retry on `Busy`/`Unavailable` and (UDP) on reply
/// timeout.
///
/// Two transports, one accounting surface ([`UplinkStats`]):
///
/// * **TCP** — length-framed messages, pipelined: up to `window`
///   reports are in flight before the client blocks reading replies
///   (fixed-size [`codec::REPLY_LEN`]-byte records). `mark`/`finish`
///   drain all outstanding replies first, which is what makes a
///   `WindowMark` a true barrier: FIFO byte stream plus drained
///   window means every covered report was already processed.
/// * **UDP** — one message per datagram, stop-and-wait per report
///   (matched by sequence number; stale replies are ignored), control
///   messages repeated [`UDP_CONTROL_REDUNDANCY`] times.
pub struct NetUplink {
    io: NetIo,
    client_id: u32,
    clients: u32,
    server: Option<std::net::SocketAddr>,
    reconnect_budget: u32,
    reconnects: u64,
    next_seq: u64,
    window: usize,
    outstanding: BTreeMap<u64, (Bytes, u32)>,
    backoff: NetBackoff,
    stats: UplinkStats,
}

impl NetUplink {
    /// Connects over TCP, says hello, and pipelines up to `window`
    /// reports (at least 1).
    ///
    /// # Errors
    ///
    /// Socket connect/configure/write failure.
    pub fn connect_tcp<A: ToSocketAddrs>(
        server: A,
        client_id: u32,
        clients: u32,
        window: usize,
        backoff: NetBackoff,
    ) -> io::Result<Self> {
        let addr = server.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "server address resolved empty")
        })?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(TCP_REPLY_TIMEOUT))?;
        let mut up = NetUplink {
            io: NetIo::Tcp(stream),
            client_id,
            clients,
            server: Some(addr),
            reconnect_budget: DEFAULT_RECONNECT_BUDGET,
            reconnects: 0,
            next_seq: 0,
            window: window.max(1),
            outstanding: BTreeMap::new(),
            backoff,
            stats: UplinkStats::default(),
        };
        up.send_control(&ClientMsg::Hello { client_id, clients })?;
        Ok(up)
    }

    /// Overrides the lifetime TCP reconnection budget (0 disables
    /// reconnection entirely: the first I/O error is terminal).
    pub fn set_reconnect_budget(&mut self, budget: u32) {
        self.reconnect_budget = budget;
    }

    /// TCP reconnections performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Connects over UDP (stop-and-wait) and says hello.
    ///
    /// # Errors
    ///
    /// Socket bind/connect/configure/send failure.
    pub fn connect_udp<A: ToSocketAddrs>(
        server: A,
        client_id: u32,
        clients: u32,
        backoff: NetBackoff,
    ) -> io::Result<Self> {
        let sock = UdpSocket::bind(("0.0.0.0", 0))?;
        sock.connect(server)?;
        sock.set_read_timeout(Some(UDP_REPLY_TIMEOUT))?;
        let mut up = NetUplink {
            io: NetIo::Udp(sock),
            client_id,
            clients,
            server: None,
            reconnect_budget: 0,
            reconnects: 0,
            next_seq: 0,
            window: 1,
            outstanding: BTreeMap::new(),
            backoff,
            stats: UplinkStats::default(),
        };
        up.send_control(&ClientMsg::Hello { client_id, clients })?;
        Ok(up)
    }

    fn send_control(&mut self, msg: &ClientMsg) -> io::Result<()> {
        let body = codec::encode_client_msg(msg);
        match &mut self.io {
            NetIo::Tcp(stream) => stream.write_all(&codec::frame(&body)),
            NetIo::Udp(sock) => {
                for _ in 0..UDP_CONTROL_REDUNDANCY {
                    sock.send(&body)?;
                }
                Ok(())
            }
        }
    }

    /// As [`NetUplink::send_control`], but a TCP write failure burns a
    /// reconnection and resends instead of surfacing.
    fn send_control_resilient(&mut self, msg: &ClientMsg) -> io::Result<()> {
        match self.send_control(msg) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.recover_tcp(e)?;
                self.send_control(msg)
            }
        }
    }

    /// After a TCP I/O failure: burn one unit of the reconnection
    /// budget per attempt until a fresh connection accepts the
    /// replayed `Hello` and the retransmission of every
    /// unacknowledged report. Surfaces the original error once the
    /// budget is spent (or immediately on UDP, which has no
    /// connection to re-establish).
    fn recover_tcp(&mut self, err: io::Error) -> io::Result<()> {
        if matches!(self.io, NetIo::Udp(_)) || self.server.is_none() {
            return Err(err);
        }
        let mut attempt = 0u32;
        loop {
            if self.reconnect_budget == 0 {
                return Err(err);
            }
            self.reconnect_budget -= 1;
            attempt += 1;
            let (delay, capped) = self.backoff.delay_ms(attempt);
            if capped {
                self.stats.backoff_capped += 1;
            }
            std::thread::sleep(Duration::from_millis(delay));
            if self.try_reconnect().is_ok() {
                self.reconnects += 1;
                return Ok(());
            }
        }
    }

    fn try_reconnect(&mut self) -> io::Result<()> {
        let addr = self
            .server
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "no server address"))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(TCP_REPLY_TIMEOUT))?;
        self.io = NetIo::Tcp(stream);
        let (client_id, clients) = (self.client_id, self.clients);
        self.send_control(&ClientMsg::Hello { client_id, clients })?;
        // Every unacknowledged report may have died with the old
        // connection; retransmit them all. A report the server did
        // classify before the cut comes back `AckDuplicate` — still
        // delivered.
        let pending: Vec<(u64, Bytes, u32)> = self
            .outstanding
            .iter()
            .map(|(seq, (payload, count))| (*seq, payload.clone(), *count))
            .collect();
        for (seq, payload, count) in pending {
            self.stats.attempts += 1;
            let body = codec::encode_client_msg(&ClientMsg::Report {
                seq,
                payload: payload.clone(),
            });
            let NetIo::Tcp(stream) = &mut self.io else {
                debug_assert!(false, "try_reconnect on a UDP uplink");
                return Ok(());
            };
            stream.write_all(&codec::frame(&body))?;
            self.outstanding
                .insert(seq, (payload, count.saturating_add(1)));
        }
        Ok(())
    }

    /// Offers one report for delivery. Retryable verdicts are retried
    /// on the backoff schedule; permanent verdicts are counted and
    /// dropped. An `Err` means the transport itself failed.
    ///
    /// # Errors
    ///
    /// Socket I/O failure or an undecodable reply stream.
    pub fn send_report(&mut self, report: &PeerReport) -> io::Result<()> {
        let payload = wire::encode(report);
        self.stats.offered += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        match self.io {
            NetIo::Tcp(_) => {
                if let Err(e) = self.transmit_tcp(seq, &payload, 1) {
                    self.recover_tcp(e)?;
                    self.transmit_tcp(seq, &payload, 2)?;
                }
                while self.outstanding.len() >= self.window {
                    if let Err(e) = self.read_reply_tcp() {
                        self.recover_tcp(e)?;
                    }
                }
                Ok(())
            }
            NetIo::Udp(_) => self.stop_and_wait_udp(seq, &payload),
        }
    }

    fn transmit_tcp(&mut self, seq: u64, payload: &Bytes, count: u32) -> io::Result<()> {
        self.stats.attempts += 1;
        let body = codec::encode_client_msg(&ClientMsg::Report {
            seq,
            payload: payload.clone(),
        });
        let NetIo::Tcp(stream) = &mut self.io else {
            debug_assert!(false, "transmit_tcp on a UDP uplink");
            return Ok(());
        };
        stream.write_all(&codec::frame(&body))?;
        self.outstanding.insert(seq, (payload.clone(), count));
        Ok(())
    }

    fn read_reply_tcp(&mut self) -> io::Result<()> {
        let reply = {
            let NetIo::Tcp(stream) = &mut self.io else {
                debug_assert!(false, "read_reply_tcp on a UDP uplink");
                return Ok(());
            };
            let mut buf = [0u8; codec::REPLY_LEN];
            stream.read_exact(&mut buf)?;
            codec::decode_reply(&mut &buf[..])
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        };
        // A reply to a sequence we no longer track (e.g. a duplicate)
        // is ignorable noise.
        let Some((payload, count)) = self.outstanding.remove(&reply.seq) else {
            return Ok(());
        };
        if reply.status.is_delivered() {
            self.stats.delivered += 1;
            if count > 1 {
                self.stats.retransmitted += 1;
            }
        } else if reply.status.is_retryable() {
            if count >= self.backoff.max_attempts() {
                self.stats.dropped_permanent += 1;
            } else {
                let (delay, capped) = self.backoff.delay_ms(count);
                if capped {
                    self.stats.backoff_capped += 1;
                }
                std::thread::sleep(Duration::from_millis(delay));
                self.transmit_tcp(reply.seq, &payload, count + 1)?;
            }
        } else {
            self.stats.rejected += 1;
        }
        Ok(())
    }

    fn stop_and_wait_udp(&mut self, seq: u64, payload: &Bytes) -> io::Result<()> {
        let datagram = codec::encode_client_msg(&ClientMsg::Report {
            seq,
            payload: payload.clone(),
        });
        let mut count = 0u32;
        loop {
            count += 1;
            self.stats.attempts += 1;
            let verdict = {
                let NetIo::Udp(sock) = &mut self.io else {
                    debug_assert!(false, "stop_and_wait_udp on a TCP uplink");
                    return Ok(());
                };
                sock.send(&datagram)?;
                recv_matching_reply(sock, seq)?
            };
            match verdict {
                Some(status) if status.is_delivered() => {
                    self.stats.delivered += 1;
                    if count > 1 {
                        self.stats.retransmitted += 1;
                    }
                    return Ok(());
                }
                Some(status) if status.is_retryable() => {}
                Some(_) => {
                    self.stats.rejected += 1;
                    return Ok(());
                }
                // Reply timeout: the datagram or its reply was lost.
                None => {}
            }
            if count >= self.backoff.max_attempts() {
                self.stats.dropped_permanent += 1;
                return Ok(());
            }
            let (delay, capped) = self.backoff.delay_ms(count);
            if capped {
                self.stats.backoff_capped += 1;
            }
            std::thread::sleep(Duration::from_millis(delay));
        }
    }

    /// Drains every outstanding TCP reply (no-op on UDP, where
    /// stop-and-wait leaves nothing in flight).
    ///
    /// # Errors
    ///
    /// Socket I/O failure or an undecodable reply stream.
    pub fn flush_outstanding(&mut self) -> io::Result<()> {
        while !self.outstanding.is_empty() {
            if let Err(e) = self.read_reply_tcp() {
                self.recover_tcp(e)?;
            }
        }
        Ok(())
    }

    /// Declares that every report with `time < up_to` has been
    /// offered. Outstanding replies are drained first, so by the time
    /// the mark reaches the service every covered report has been
    /// classified — the barrier the window merge relies on.
    ///
    /// # Errors
    ///
    /// Socket I/O failure or an undecodable reply stream.
    pub fn mark(&mut self, up_to: SimTime) -> io::Result<()> {
        self.flush_outstanding()?;
        let client_id = self.client_id;
        self.send_control_resilient(&ClientMsg::WindowMark { client_id, up_to })
    }

    /// Drains outstanding replies, reports the total datagram count
    /// (`sent == attempts`, the server's reconciliation input), and
    /// returns the final accounting.
    ///
    /// # Errors
    ///
    /// Socket I/O failure or an undecodable reply stream.
    pub fn finish(mut self) -> io::Result<UplinkStats> {
        self.flush_outstanding()?;
        let client_id = self.client_id;
        let sent = self.stats.attempts;
        self.send_control_resilient(&ClientMsg::Finish { client_id, sent })?;
        Ok(self.stats)
    }

    /// Delivery accounting so far.
    pub fn stats(&self) -> UplinkStats {
        self.stats
    }

    /// Reports currently awaiting a TCP reply.
    pub fn pending(&self) -> usize {
        self.outstanding.len()
    }
}

fn recv_matching_reply(sock: &UdpSocket, seq: u64) -> io::Result<Option<StatusCode>> {
    // Bound the stale-reply drain so a flood of late duplicates
    // cannot pin us in this loop past the retry schedule.
    for _ in 0..64 {
        let mut buf = [0u8; 64];
        match sock.recv(&mut buf) {
            Ok(n) => {
                if let Ok(reply) = codec::decode_reply(&mut buf.get(..n).unwrap_or(&[])) {
                    if reply.seq == seq {
                        return Ok(Some(reply.status));
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMap;
    use magellan_netsim::{FaultWindow, PeerAddr, SimDuration};
    use magellan_workload::ChannelId;

    fn report(ip: u32, minute: u64) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(minute),
            addr: PeerAddr::from_u32(ip),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 400.0,
            send_throughput_kbps: 50.0,
            partners: vec![],
        }
    }

    fn at_min(m: u64) -> SimTime {
        SimTime::ORIGIN + SimDuration::from_mins(m)
    }

    fn downtime_server() -> TraceServer {
        TraceServer::with_downtime(
            SimTime::at(14, 0, 0),
            vec![FaultWindow::new(at_min(30), at_min(60))],
        )
    }

    #[test]
    fn delivers_directly_when_server_is_up() {
        let mut server = downtime_server();
        let mut up = ReportUplink::new(8);
        up.send(report(1, 20), at_min(20), &mut server);
        assert_eq!(up.pending(), 0);
        assert_eq!(up.stats().delivered, 1);
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn buffers_across_downtime_and_retransmits_in_order() {
        let mut server = downtime_server();
        let mut up = ReportUplink::new(8);
        up.send(report(1, 35), at_min(35), &mut server);
        up.send(report(2, 45), at_min(45), &mut server);
        assert_eq!(up.pending(), 2);
        assert_eq!(server.len(), 0);
        // Server back at minute 60: next send flushes backlog first.
        up.send(report(3, 65), at_min(65), &mut server);
        assert_eq!(up.pending(), 0);
        let st = up.stats();
        assert_eq!(st.delivered, 3);
        assert_eq!(st.retransmitted, 2);
        let addrs: Vec<u32> = server
            .into_store()
            .reports()
            .iter()
            .map(|r| r.addr.as_u32())
            .collect();
        assert_eq!(addrs, vec![1, 2, 3], "FIFO order violated");
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut server = downtime_server();
        let mut up = ReportUplink::new(2);
        for (ip, minute) in [(1, 31), (2, 40), (3, 50)] {
            up.send(report(ip, minute), at_min(minute), &mut server);
        }
        assert_eq!(up.pending(), 2);
        assert_eq!(up.stats().dropped_overflow, 1);
        assert_eq!(up.flush(at_min(61), &mut server), 2);
        let addrs: Vec<u32> = server
            .into_store()
            .reports()
            .iter()
            .map(|r| r.addr.as_u32())
            .collect();
        assert_eq!(addrs, vec![2, 3], "oldest report should have been evicted");
    }

    #[test]
    fn retransmitted_duplicates_are_absorbed() {
        let mut server = downtime_server();
        let mut up = ReportUplink::new(8);
        // Delivered once directly…
        up.send(report(1, 20), at_min(20), &mut server);
        // …and offered again (e.g. an ack was lost): the server
        // absorbs the duplicate, the uplink still counts delivery.
        up.send(report(1, 20), at_min(21), &mut server);
        assert_eq!(server.len(), 1);
        assert_eq!(server.stats().duplicates, 1);
        assert_eq!(up.stats().delivered, 2);
    }

    #[test]
    fn validation_failures_are_not_buffered() {
        let mut server = downtime_server();
        let mut up = ReportUplink::new(8);
        let mut bad = report(1, 20);
        bad.recv_throughput_kbps = f64::NAN;
        up.send(bad, at_min(20), &mut server);
        assert_eq!(up.pending(), 0);
        assert_eq!(up.stats().rejected, 1);
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let mut a = NetBackoff::new(4, 100, 8, 42);
        let mut b = NetBackoff::new(4, 100, 8, 42);
        let delays: Vec<(u64, bool)> = (1..=8).map(|n| a.delay_ms(n)).collect();
        let again: Vec<(u64, bool)> = (1..=8).map(|n| b.delay_ms(n)).collect();
        assert_eq!(delays, again, "same seed must give same schedule");
        for (i, (d, capped)) in delays.iter().enumerate() {
            let raw = (4u64 << (i + 1)).min(100);
            assert!(
                *d >= raw / 2 && *d <= raw,
                "delay {d} outside [{}, {raw}]",
                raw / 2
            );
            assert_eq!(*capped, raw == 100);
        }
        let mut c = NetBackoff::new(4, 100, 8, 7);
        let other: Vec<(u64, bool)> = (1..=8).map(|n| c.delay_ms(n)).collect();
        assert_ne!(delays, other, "different seeds should jitter apart");
    }

    // A minimal in-test service: one accepted connection or UDP
    // socket driven through a ServiceCore, with an optional
    // first-transmission drop to force the client onto its retry
    // path.
    mod loopback {
        use super::*;
        use crate::codec::{decode_client_msg, encode_reply, FrameReader};
        use crate::service::{IngestStats, ServiceCore};
        use std::net::{TcpListener, UdpSocket};

        pub fn tcp_service(
            clients: u32,
            pending_cap: usize,
        ) -> (std::net::SocketAddr, std::thread::JoinHandle<IngestStats>) {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let handle = std::thread::spawn(move || {
                // One shard so pending_cap applies to every address.
                let mut core = ServiceCore::new(SimTime::at(14, 0, 0), 1, pending_cap, clients);
                let mut conns: Vec<(std::net::TcpStream, FrameReader)> = (0..clients)
                    .map(|_| {
                        let (s, _) = listener.accept().unwrap();
                        s.set_nodelay(true).unwrap();
                        (s, FrameReader::new())
                    })
                    .collect();
                let mut chunk = [0u8; 4096];
                while !core.all_finished() {
                    for (stream, frames) in &mut conns {
                        let n = match stream.read(&mut chunk) {
                            Ok(0) => continue,
                            Ok(n) => n,
                            Err(_) => continue,
                        };
                        frames.extend(&chunk[..n]);
                        while let Some(mut body) = frames.next_frame().unwrap() {
                            let msg = decode_client_msg(&mut body).unwrap();
                            let (reply, _batch) = core.handle(&msg);
                            if let Some(r) = reply {
                                stream.write_all(&encode_reply(&r)).unwrap();
                            }
                        }
                    }
                }
                core.finalize().1
            });
            (addr, handle)
        }

        pub fn udp_service(
            clients: u32,
            drop_first: bool,
        ) -> (std::net::SocketAddr, std::thread::JoinHandle<IngestStats>) {
            let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = sock.local_addr().unwrap();
            let handle = std::thread::spawn(move || {
                let mut core = ServiceCore::new(SimTime::at(14, 0, 0), 2, 1024, clients);
                let mut seen_seqs = std::collections::BTreeSet::new();
                let mut buf = [0u8; 2048];
                while !core.all_finished() {
                    let (n, src) = sock.recv_from(&mut buf).unwrap();
                    let Ok(msg) = decode_client_msg(&mut &buf[..n]) else {
                        continue;
                    };
                    if let ClientMsg::Report { seq, .. } = &msg {
                        if drop_first && seen_seqs.insert(*seq) {
                            // Swallow the first transmission of every
                            // report, reply to retries only.
                            continue;
                        }
                    }
                    let (reply, _batch) = core.handle(&msg);
                    if let Some(r) = reply {
                        sock.send_to(&encode_reply(&r), src).unwrap();
                    }
                }
                core.finalize().1
            });
            (addr, handle)
        }
    }

    #[test]
    fn net_uplink_tcp_pipelines_and_balances() {
        let (addr, service) = loopback::tcp_service(1, 1024);
        let mut up = NetUplink::connect_tcp(addr, 0, 1, 4, NetBackoff::new(1, 4, 5, 11)).unwrap();
        for ip in 1..=20u32 {
            up.send_report(&report(ip, 20)).unwrap();
        }
        // A duplicate and a reject exercise the non-Ack verdicts.
        up.send_report(&report(1, 20)).unwrap();
        let mut bad = report(30, 20);
        bad.upload_capacity_kbps = -5.0;
        up.send_report(&bad).unwrap();
        up.mark(at_min(30)).unwrap();
        let stats = up.finish().unwrap();
        assert_eq!(stats.offered, 22);
        assert_eq!(stats.delivered, 21);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.dropped_permanent, 0);
        let ingest = service.join().unwrap();
        assert!(ingest.balanced(), "{ingest:?}");
        assert_eq!(ingest.admitted, 20);
        assert_eq!(ingest.deduped, 1);
        assert_eq!(
            ingest.merges, 1,
            "the mark sealed everything; finalize adds nothing"
        );
        assert_eq!(ingest.lost, 0);
    }

    #[test]
    fn net_uplink_tcp_retries_busy_until_drained() {
        // pending_cap 1 with no marks: the second distinct report
        // sheds Busy until... it never drains, so the retry budget
        // runs out and the report is dropped permanently — while the
        // books still balance on both ends.
        let (addr, service) = loopback::tcp_service(1, 1);
        let mut up = NetUplink::connect_tcp(addr, 0, 1, 1, NetBackoff::new(1, 2, 3, 13)).unwrap();
        up.send_report(&report(1, 20)).unwrap();
        up.send_report(&report(2, 20)).unwrap();
        up.flush_outstanding().unwrap();
        let stats = up.stats();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped_permanent, 1);
        assert_eq!(stats.attempts, 1 + 3, "one ack + full retry budget");
        let _ = up.finish().unwrap();
        let ingest = service.join().unwrap();
        assert!(ingest.balanced(), "{ingest:?}");
        assert_eq!(ingest.shed_busy, 3);
    }

    /// A service that accepts a connection, drops it cold after the
    /// first frame, then serves the replacement connection normally:
    /// the uplink must reconnect, replay its `Hello`, retransmit the
    /// unacknowledged window, and finish with balanced books.
    #[test]
    fn net_uplink_tcp_reconnects_after_connection_reset() {
        use crate::codec::{decode_client_msg, encode_reply, FrameReader};
        use crate::service::ServiceCore;
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let service = std::thread::spawn(move || {
            // First connection: swallow the Hello, then hang up.
            let (first, _) = listener.accept().unwrap();
            let mut chunk = [0u8; 64];
            let mut first = first;
            let _ = first.read(&mut chunk);
            first.shutdown(std::net::Shutdown::Both).ok();
            drop(first);
            // Second connection: a real single-shard service.
            let (mut stream, _) = listener.accept().unwrap();
            stream.set_nodelay(true).unwrap();
            let mut core = ServiceCore::new(SimTime::at(14, 0, 0), 1, 1024, 1);
            let mut frames = FrameReader::new();
            let mut buf = [0u8; 4096];
            while !core.all_finished() {
                let n = match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                frames.extend(&buf[..n]);
                while let Some(mut body) = frames.next_frame().unwrap() {
                    let msg = decode_client_msg(&mut body).unwrap();
                    let (reply, _batch) = core.handle(&msg);
                    if let Some(r) = reply {
                        stream.write_all(&encode_reply(&r)).unwrap();
                    }
                }
            }
            core.finalize().1
        });

        let mut up = NetUplink::connect_tcp(addr, 0, 1, 4, NetBackoff::new(1, 4, 5, 23)).unwrap();
        for ip in 1..=8u32 {
            up.send_report(&report(ip, 20)).unwrap();
        }
        up.mark(at_min(30)).unwrap();
        assert!(up.reconnects() >= 1, "the cut connection went unnoticed");
        let stats = up.finish().unwrap();
        assert_eq!(stats.delivered, 8, "{stats:?}");
        assert_eq!(stats.dropped_permanent, 0);
        let ingest = service.join().unwrap();
        assert!(ingest.balanced(), "{ingest:?}");
        assert_eq!(ingest.admitted, 8);
    }

    #[test]
    fn net_uplink_udp_stop_and_wait_survives_first_transmission_loss() {
        let (addr, service) = loopback::udp_service(1, true);
        let mut up = NetUplink::connect_udp(addr, 0, 1, NetBackoff::new(1, 4, 5, 17)).unwrap();
        for ip in 1..=5u32 {
            up.send_report(&report(ip, 20)).unwrap();
        }
        up.mark(at_min(30)).unwrap();
        let stats = up.finish().unwrap();
        assert_eq!(stats.delivered, 5);
        assert_eq!(stats.retransmitted, 5, "every report needed a retry");
        assert_eq!(stats.attempts, 10);
        let ingest = service.join().unwrap();
        assert!(ingest.balanced(), "{ingest:?}");
        assert_eq!(ingest.admitted, 5);
        // The swallowed first transmissions are exactly the lost ones.
        assert_eq!(ingest.lost, 5);
    }
}
