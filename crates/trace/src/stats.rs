//! Trace volume statistics.
//!
//! The paper's headline collection numbers — "over 120 GB of traces
//! with more than 10 million unique IP addresses" in two months — are
//! properties of the measurement substrate, not the topology. This
//! module computes the equivalent accounting for any [`TraceStore`]:
//! report counts, wire-volume estimate, distinct addresses, and
//! per-bucket rates, so scaled-down runs can be sanity-checked against
//! the real deployment's arithmetic.

use crate::store::{bucket_of, TraceStore};
use crate::wire;
use std::collections::HashSet;

/// Aggregate volume statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of reports.
    pub reports: u64,
    /// Total bytes of all reports in wire encoding.
    pub wire_bytes: u64,
    /// Mean report size on the wire.
    pub mean_report_bytes: f64,
    /// Distinct reporter addresses.
    pub distinct_reporters: u64,
    /// Distinct addresses including partner-list entries.
    pub distinct_addresses: u64,
    /// Mean partner-list length.
    pub mean_partners: f64,
    /// Number of non-empty report-interval buckets.
    pub active_buckets: u64,
    /// Mean reports per non-empty bucket.
    pub reports_per_bucket: f64,
}

impl TraceStats {
    /// Computes the statistics of `store`.
    ///
    /// Wire volume is computed by encoding each report, so this costs
    /// one pass over the trace.
    pub fn compute(store: &TraceStore) -> TraceStats {
        let mut wire_bytes = 0u64;
        let mut reporters: HashSet<u32> = HashSet::new();
        let mut addresses: HashSet<u32> = HashSet::new();
        let mut partner_sum = 0u64;
        let mut buckets: HashSet<u64> = HashSet::new();
        for r in store.reports() {
            wire_bytes += wire::encode(r).len() as u64;
            reporters.insert(r.addr.as_u32());
            addresses.insert(r.addr.as_u32());
            partner_sum += r.partners.len() as u64;
            buckets.insert(bucket_of(r.time));
            for p in &r.partners {
                addresses.insert(p.addr.as_u32());
            }
        }
        let n = store.len() as u64;
        TraceStats {
            reports: n,
            wire_bytes,
            mean_report_bytes: if n > 0 {
                wire_bytes as f64 / n as f64
            } else {
                0.0
            },
            distinct_reporters: reporters.len() as u64,
            distinct_addresses: addresses.len() as u64,
            mean_partners: if n > 0 {
                partner_sum as f64 / n as f64
            } else {
                0.0
            },
            active_buckets: buckets.len() as u64,
            reports_per_bucket: if buckets.is_empty() {
                0.0
            } else {
                n as f64 / buckets.len() as f64
            },
        }
    }

    /// Extrapolates the wire volume to `scale_factor` times the
    /// population over `months` of collection, given this trace's
    /// window length in days — the arithmetic behind "120 GB in two
    /// months".
    pub fn projected_bytes(&self, window_days: f64, scale_factor: f64, months: f64) -> f64 {
        if window_days <= 0.0 {
            return 0.0;
        }
        let per_day = self.wire_bytes as f64 / window_days;
        per_day * scale_factor * months * 30.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMap;
    use crate::report::{PartnerRecord, PeerReport};
    use magellan_netsim::{PeerAddr, SimDuration, SimTime};
    use magellan_workload::ChannelId;

    fn report(ip: u32, minute: u64, partners: usize) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(minute),
            addr: PeerAddr::from_u32(ip),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 16),
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 380.0,
            send_throughput_kbps: 80.0,
            partners: (0..partners)
                .map(|k| PartnerRecord {
                    addr: PeerAddr::from_u32(1000 + k as u32),
                    tcp_port: 1,
                    udp_port: 2,
                    segments_sent: 5,
                    segments_received: 20,
                })
                .collect(),
        }
    }

    #[test]
    fn empty_store_stats_are_zero() {
        let s = TraceStats::compute(&TraceStore::new());
        assert_eq!(s.reports, 0);
        assert_eq!(s.wire_bytes, 0);
        assert_eq!(s.mean_report_bytes, 0.0);
        assert_eq!(s.distinct_addresses, 0);
        assert_eq!(s.reports_per_bucket, 0.0);
    }

    #[test]
    fn counts_match_contents() {
        let store: TraceStore = vec![report(1, 20, 3), report(2, 25, 5), report(1, 30, 3)]
            .into_iter()
            .collect();
        let s = TraceStats::compute(&store);
        assert_eq!(s.reports, 3);
        assert_eq!(s.distinct_reporters, 2);
        // Reporters 1, 2 plus partner ips 1000..1005 (5 distinct).
        assert_eq!(s.distinct_addresses, 2 + 5);
        assert!((s.mean_partners - 11.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.active_buckets, 2); // minutes 20, 25 in bucket 2; 30 in bucket 3
        assert!(s.wire_bytes > 0);
        assert!(s.mean_report_bytes > 40.0);
    }

    #[test]
    fn wire_bytes_match_encoding_sum() {
        let store: TraceStore = vec![report(1, 20, 10)].into_iter().collect();
        let s = TraceStats::compute(&store);
        assert_eq!(s.wire_bytes, wire::encode(&store.reports()[0]).len() as u64);
    }

    #[test]
    fn projection_arithmetic() {
        let store: TraceStore = vec![report(1, 20, 50)].into_iter().collect();
        let s = TraceStats::compute(&store);
        // 1 day of this volume, scaled 100x, over 2 months.
        let projected = s.projected_bytes(1.0, 100.0, 2.0);
        assert!((projected - s.wire_bytes as f64 * 100.0 * 60.0).abs() < 1e-6);
        assert_eq!(s.projected_bytes(0.0, 100.0, 2.0), 0.0);
    }
}
