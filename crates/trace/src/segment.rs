//! The on-disk frame and segment codec of the durable trace archive.
//!
//! Reports persist as **frames** — `magic | payload length | CRC32 |
//! payload` — appended to fixed-size **segments**. Each segment opens
//! with a checksummed header naming its index and first record, and a
//! sealed segment closes with a checksummed footer recording its frame
//! count and the CRC of the whole frame region. The codec is designed
//! for recovery: every frame is independently verifiable, so a reader
//! can skip a damaged region and resynchronise at the next valid
//! frame boundary (see [`scan_frames`]).

/// Marks the start of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"MGFR";

/// Bytes of frame overhead before the payload: magic, payload length
/// (`u32`), payload CRC32 (`u32`).
pub const FRAME_HEADER_LEN: usize = 12;

/// Upper bound on a frame payload. Wire-encoded reports top out
/// around 12 KiB (512 partners); anything claiming more is corruption.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Marks the start of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"MGSEG1\0\0";

/// Marks the footer of a sealed segment.
pub const FOOTER_MAGIC: [u8; 8] = *b"MGSEAL\0\0";

/// Bytes of a segment header: magic, version (`u32`), segment index
/// (`u64`), first record index (`u64`), header CRC32 (`u32`).
pub const SEGMENT_HEADER_LEN: usize = 32;

/// Bytes of a sealed-segment footer: magic, frame count (`u64`),
/// frame-region bytes (`u64`), frame-region CRC32 (`u32`), footer
/// CRC32 (`u32`).
pub const SEGMENT_FOOTER_LEN: usize = 32;

/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Extends a running IEEE CRC32 state with more bytes. Start from
/// [`CRC32_INIT`] and finish with [`crc32_finish`].
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    crc
}

/// Initial state for an incremental CRC32.
pub const CRC32_INIT: u32 = 0xFFFF_FFFF;

/// Finalises an incremental CRC32 state into the checksum value.
pub fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

/// The IEEE CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC32_INIT, bytes))
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let raw = bytes.get(at..at + 4)?;
    Some(u32::from_be_bytes([raw[0], raw[1], raw[2], raw[3]]))
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let raw = bytes.get(at..at + 8)?;
    Some(u64::from_be_bytes([
        raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7],
    ]))
}

/// Appends one frame (`magic | len | crc | payload`) to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_PAYLOAD`] — the writer
/// never produces such payloads (wire reports are bounded far below).
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(payload.len() <= MAX_FRAME_PAYLOAD, "oversized frame");
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
}

/// A decoded segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Zero-based index of this segment within the archive.
    pub index: u64,
    /// Archive-wide index of the first record in this segment.
    pub first_record: u64,
}

/// Encodes a segment header.
pub fn encode_header(header: SegmentHeader) -> [u8; SEGMENT_HEADER_LEN] {
    let mut out = [0u8; SEGMENT_HEADER_LEN];
    out[0..8].copy_from_slice(&SEGMENT_MAGIC);
    out[8..12].copy_from_slice(&SEGMENT_VERSION.to_be_bytes());
    out[12..20].copy_from_slice(&header.index.to_be_bytes());
    out[20..28].copy_from_slice(&header.first_record.to_be_bytes());
    let crc = crc32(&out[0..28]);
    out[28..32].copy_from_slice(&crc.to_be_bytes());
    out
}

/// Decodes and verifies a segment header from the start of `bytes`.
/// Returns `None` on truncation, bad magic, version, or checksum.
pub fn decode_header(bytes: &[u8]) -> Option<SegmentHeader> {
    let raw = bytes.get(0..SEGMENT_HEADER_LEN)?;
    if raw.get(0..8)? != SEGMENT_MAGIC {
        return None;
    }
    if read_u32(raw, 8)? != SEGMENT_VERSION {
        return None;
    }
    if read_u32(raw, 28)? != crc32(&raw[0..28]) {
        return None;
    }
    Some(SegmentHeader {
        index: read_u64(raw, 12)?,
        first_record: read_u64(raw, 20)?,
    })
}

/// A decoded sealed-segment footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentFooter {
    /// Number of frames sealed into the segment.
    pub records: u64,
    /// Bytes of the frame region (between header and footer).
    pub frame_bytes: u64,
    /// CRC32 of the whole frame region.
    pub frame_crc: u32,
}

/// Encodes a sealed-segment footer.
pub fn encode_footer(footer: SegmentFooter) -> [u8; SEGMENT_FOOTER_LEN] {
    let mut out = [0u8; SEGMENT_FOOTER_LEN];
    out[0..8].copy_from_slice(&FOOTER_MAGIC);
    out[8..16].copy_from_slice(&footer.records.to_be_bytes());
    out[16..24].copy_from_slice(&footer.frame_bytes.to_be_bytes());
    out[24..28].copy_from_slice(&footer.frame_crc.to_be_bytes());
    let crc = crc32(&out[0..28]);
    out[28..32].copy_from_slice(&crc.to_be_bytes());
    out
}

/// Decodes and verifies a footer from the **last**
/// [`SEGMENT_FOOTER_LEN`] bytes of `bytes`. Returns `None` when the
/// file is too short, unsealed, or the footer is damaged.
pub fn decode_footer(bytes: &[u8]) -> Option<SegmentFooter> {
    let start = bytes.len().checked_sub(SEGMENT_FOOTER_LEN)?;
    let raw = bytes.get(start..)?;
    if raw.get(0..8)? != FOOTER_MAGIC {
        return None;
    }
    if read_u32(raw, 28)? != crc32(&raw[0..28]) {
        return None;
    }
    Some(SegmentFooter {
        records: read_u64(raw, 8)?,
        frame_bytes: read_u64(raw, 16)?,
        frame_crc: read_u32(raw, 24)?,
    })
}

/// Outcome of scanning one frame region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameScan {
    /// Frames recovered (structurally valid and accepted by the
    /// caller's decoder).
    pub frames: u64,
    /// Damaged regions skipped; each held at least one ruined frame.
    pub corrupt_regions: u64,
    /// Quarantined `(start, end)` byte ranges, relative to the scanned
    /// region plus the caller-supplied base offset.
    pub quarantined: Vec<(u64, u64)>,
    /// The region ends mid-frame — the signature of a torn tail write,
    /// counted separately from corruption.
    pub truncated_tail: bool,
}

impl FrameScan {
    /// Total quarantined bytes.
    pub fn bytes_quarantined(&self) -> u64 {
        self.quarantined.iter().map(|(s, e)| e - s).sum()
    }
}

/// Walks a frame region, recovering every intact frame and
/// resynchronising past damage.
///
/// `on_frame(offset, payload)` receives each structurally valid frame
/// (magic, length and CRC all check out) and returns whether the
/// payload actually decodes; a `false` verdict is treated like
/// corruption and the scan resynchronises just past the frame's magic.
/// A final frame whose declared length runs past the end of the
/// region is reported as a *truncated tail* rather than corruption —
/// the expected aftermath of a crash mid-append.
pub fn scan_frames(
    bytes: &[u8],
    base: u64,
    mut on_frame: impl FnMut(u64, &[u8]) -> bool,
) -> FrameScan {
    let mut scan = FrameScan::default();
    let mut pos = 0usize;
    // Open quarantine run: (start, started as a plausible torn frame).
    let mut bad_run: Option<(usize, bool)> = None;

    while pos < bytes.len() {
        let frame_ok = (|| {
            let magic = bytes.get(pos..pos + 4)?;
            if magic != FRAME_MAGIC {
                return None;
            }
            let len = read_u32(bytes, pos + 4)? as usize;
            if len > MAX_FRAME_PAYLOAD {
                return None;
            }
            let crc = read_u32(bytes, pos + 8)?;
            let payload = bytes.get(pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len)?;
            if crc32(payload) != crc {
                return None;
            }
            Some((len, payload))
        })();

        if let Some((len, payload)) = frame_ok {
            if on_frame(base + pos as u64, payload) {
                if let Some((start, _)) = bad_run.take() {
                    // Damage followed by a recovered frame: corruption,
                    // whatever the run looked like when it opened.
                    scan.corrupt_regions += 1;
                    scan.quarantined
                        .push((base + start as u64, base + pos as u64));
                }
                scan.frames += 1;
                pos += FRAME_HEADER_LEN + len;
                continue;
            }
        }

        // Corrupt (or undecodable) at `pos`: open a quarantine run and
        // hunt for the next candidate magic.
        if bad_run.is_none() {
            bad_run = Some((pos, starts_truncated_frame(bytes, pos)));
        }
        pos += 1;
        while pos < bytes.len() && !bytes[pos..].starts_with(&FRAME_MAGIC) {
            pos += 1;
        }
    }

    if let Some((start, tail_candidate)) = bad_run {
        scan.quarantined
            .push((base + start as u64, base + bytes.len() as u64));
        if tail_candidate {
            // The run opened at a well-formed magic whose frame runs
            // past EOF and no later frame was recovered: a torn tail
            // (the expected crash signature), not corruption.
            scan.truncated_tail = true;
        } else {
            scan.corrupt_regions += 1;
        }
    }
    scan
}

/// Whether `pos` starts a frame header that is cut off by the end of
/// the region: either an incomplete header that is a prefix of the
/// magic, or a full header whose declared payload does not fit.
fn starts_truncated_frame(bytes: &[u8], pos: usize) -> bool {
    let rest = &bytes[pos..];
    if rest.len() < FRAME_HEADER_LEN {
        let n = rest.len().min(4);
        return rest[..n] == FRAME_MAGIC[..n];
    }
    if rest[..4] != FRAME_MAGIC {
        return false;
    }
    match read_u32(rest, 4) {
        Some(len) => {
            (len as usize) <= MAX_FRAME_PAYLOAD && FRAME_HEADER_LEN + len as usize > rest.len()
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            append_frame(&mut out, p);
        }
        out
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_crc_equals_one_shot() {
        let data = b"hello, durable world";
        let mut st = CRC32_INIT;
        for chunk in data.chunks(3) {
            st = crc32_update(st, chunk);
        }
        assert_eq!(crc32_finish(st), crc32(data));
    }

    #[test]
    fn header_and_footer_roundtrip() {
        let h = SegmentHeader {
            index: 7,
            first_record: 12_345,
        };
        assert_eq!(decode_header(&encode_header(h)), Some(h));
        let f = SegmentFooter {
            records: 99,
            frame_bytes: 65_536,
            frame_crc: 0xDEAD_BEEF,
        };
        assert_eq!(decode_footer(&encode_footer(f)), Some(f));
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let mut h = encode_header(SegmentHeader {
            index: 1,
            first_record: 2,
        });
        h[13] ^= 0x40;
        assert_eq!(decode_header(&h), None);
        assert_eq!(decode_header(&h[..10]), None);
    }

    #[test]
    fn scan_recovers_clean_frames() {
        let region = frames(&[b"alpha", b"beta", b"gamma"]);
        let mut got = Vec::new();
        let scan = scan_frames(&region, 0, |_, p| {
            got.push(p.to_vec());
            true
        });
        assert_eq!(scan.frames, 3);
        assert_eq!(scan.corrupt_regions, 0);
        assert!(!scan.truncated_tail);
        assert_eq!(
            got,
            vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]
        );
    }

    #[test]
    fn scan_resynchronises_past_bit_flip() {
        let mut region = frames(&[b"alpha", b"beta", b"gamma"]);
        // Damage a payload byte of the middle frame.
        let second = FRAME_HEADER_LEN + 5 + FRAME_HEADER_LEN;
        region[second + 2] ^= 0xFF;
        let mut got = Vec::new();
        let scan = scan_frames(&region, 0, |_, p| {
            got.push(p.to_vec());
            true
        });
        assert_eq!(scan.frames, 2, "frames before and after survive");
        assert_eq!(scan.corrupt_regions, 1);
        assert!(scan.bytes_quarantined() >= 5);
        assert_eq!(got, vec![b"alpha".to_vec(), b"gamma".to_vec()]);
    }

    #[test]
    fn scan_flags_torn_tail() {
        let mut region = frames(&[b"alpha", b"beta"]);
        region.truncate(region.len() - 3);
        let scan = scan_frames(&region, 0, |_, _| true);
        assert_eq!(scan.frames, 1);
        assert!(scan.truncated_tail);
        assert_eq!(scan.corrupt_regions, 0);
    }

    #[test]
    fn scan_treats_decoder_veto_as_corruption() {
        let region = frames(&[b"alpha", b"beta"]);
        let scan = scan_frames(&region, 0, |_, p| p != b"alpha");
        assert_eq!(scan.frames, 1);
        assert_eq!(scan.corrupt_regions, 1);
    }

    #[test]
    fn scan_of_pure_garbage_never_panics() {
        let garbage: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        let scan = scan_frames(&garbage, 0, |_, _| true);
        assert_eq!(scan.frames, 0);
        assert!(scan.corrupt_regions >= 1 || scan.truncated_tail);
    }
}
