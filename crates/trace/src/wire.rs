//! Binary wire encoding of peer reports.
//!
//! The real system shipped reports to the trace server as UDP
//! datagrams; this module provides the equivalent compact encoding on
//! top of the `bytes` crate, with a strict, length-checked decoder.

use crate::buffer::BufferMap;
use crate::report::{PartnerRecord, PeerReport};
use crate::server::SubmitError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use magellan_netsim::{PeerAddr, SimTime};
use magellan_workload::ChannelId;
use std::error::Error;
use std::fmt;

/// Errors produced while decoding a report datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    UnexpectedEof {
        /// What was being decoded.
        context: &'static str,
    },
    /// A decoded field failed validation.
    Invalid {
        /// What was wrong.
        context: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { context } => {
                write!(f, "unexpected end of datagram while reading {context}")
            }
            WireError::Invalid { context } => write!(f, "invalid field: {context}"),
        }
    }
}

impl Error for WireError {}

/// Upper bound on the partner list length a datagram may carry;
/// bootstrap hands out at most 50 partners and gossip adds few more,
/// so anything beyond this is corruption.
pub const MAX_WIRE_PARTNERS: usize = 512;

/// Wire-level admission status, one byte on the reply path of the
/// networked service. Every [`SubmitError`] variant maps to exactly
/// one code (plus the two success codes), so the in-process and
/// networked paths cannot drift: [`StatusCode::from_admission`] and
/// [`StatusCode::into_admission`] are inverse total mappings, pinned
/// by an exhaustive round-trip test.
///
/// The numeric values are part of the protocol — never renumber, only
/// append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum StatusCode {
    /// Fresh report admitted and stored.
    Ack = 0,
    /// Duplicate `(peer, timestamp)` absorbed idempotently — the
    /// client should treat this as delivered.
    AckDuplicate = 1,
    /// Ingest saturated; back off and retransmit
    /// ([`SubmitError::Busy`]).
    Busy = 2,
    /// Endpoint down; buffer and retransmit
    /// ([`SubmitError::Unavailable`]).
    Unavailable = 3,
    /// Timestamp outside the collection window
    /// ([`SubmitError::OutOfWindow`]).
    OutOfWindow = 4,
    /// A field failed sanity checks ([`SubmitError::Implausible`]).
    Implausible = 5,
    /// The datagram could not be decoded
    /// ([`SubmitError::Malformed`]).
    Malformed = 6,
    /// Report arrived behind the sealed merge frontier
    /// ([`SubmitError::Late`]).
    Late = 7,
    /// Sender over its token-bucket allowance; back off and
    /// retransmit ([`SubmitError::RateLimited`]).
    RateLimited = 8,
}

impl StatusCode {
    /// Every status code, in wire order — exhaustiveness harness.
    pub const ALL: [StatusCode; 9] = [
        StatusCode::Ack,
        StatusCode::AckDuplicate,
        StatusCode::Busy,
        StatusCode::Unavailable,
        StatusCode::OutOfWindow,
        StatusCode::Implausible,
        StatusCode::Malformed,
        StatusCode::Late,
        StatusCode::RateLimited,
    ];

    /// The one-byte wire value.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Parses a wire byte; `None` for codes this build does not know
    /// (a newer server talking to an older client).
    pub fn from_u8(v: u8) -> Option<StatusCode> {
        StatusCode::ALL.get(v as usize).copied()
    }

    /// Maps an admission outcome ([`crate::gateway::GatewayCore`]'s
    /// `Ok(fresh)` / [`SubmitError`]) to its wire code.
    pub fn from_admission(outcome: &Result<bool, SubmitError>) -> StatusCode {
        match outcome {
            Ok(true) => StatusCode::Ack,
            Ok(false) => StatusCode::AckDuplicate,
            Err(SubmitError::Busy { .. }) => StatusCode::Busy,
            Err(SubmitError::Unavailable { .. }) => StatusCode::Unavailable,
            Err(SubmitError::OutOfWindow { .. }) => StatusCode::OutOfWindow,
            Err(SubmitError::Implausible { .. }) => StatusCode::Implausible,
            Err(SubmitError::Malformed(_)) => StatusCode::Malformed,
            Err(SubmitError::Late { .. }) => StatusCode::Late,
            // Exhaustive on purpose: adding a `SubmitError` variant
            // must force a decision about its wire code here.
            Err(SubmitError::RateLimited { .. }) => StatusCode::RateLimited,
        }
    }

    /// Reconstructs the client-side admission outcome from a wire
    /// code. `at` stamps the time-carrying variants (the client's
    /// send time — the server's own clock never crosses the wire).
    /// Error payloads that cannot cross the wire (`&'static str`
    /// contexts) come back as fixed remote-failure markers.
    pub fn into_admission(self, at: SimTime) -> Result<bool, SubmitError> {
        match self {
            StatusCode::Ack => Ok(true),
            StatusCode::AckDuplicate => Ok(false),
            StatusCode::Busy => Err(SubmitError::Busy { time: at }),
            StatusCode::Unavailable => Err(SubmitError::Unavailable { time: at }),
            StatusCode::OutOfWindow => Err(SubmitError::OutOfWindow { time: at }),
            StatusCode::Implausible => Err(SubmitError::Implausible {
                what: "rejected by remote validation",
            }),
            StatusCode::Malformed => Err(SubmitError::Malformed(WireError::Invalid {
                context: "rejected by remote decoder",
            })),
            StatusCode::Late => Err(SubmitError::Late { time: at }),
            StatusCode::RateLimited => Err(SubmitError::RateLimited { time: at }),
        }
    }

    /// Whether a retransmission of the same report can succeed later.
    /// Retryable bounces are transient server states; everything else
    /// is a permanent verdict on this report.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            StatusCode::Busy | StatusCode::Unavailable | StatusCode::RateLimited
        )
    }

    /// Whether the report is settled server-side (stored or absorbed)
    /// — the client counts it delivered and must not retransmit.
    pub fn is_delivered(self) -> bool {
        matches!(self, StatusCode::Ack | StatusCode::AckDuplicate)
    }
}

/// Encodes a report into a datagram.
pub fn encode(report: &PeerReport) -> Bytes {
    let mut b = BytesMut::with_capacity(64 + report.partners.len() * 24);
    b.put_u64(report.time.as_millis());
    b.put_u32(report.addr.as_u32());
    b.put_u16(report.channel.0);
    b.put_u64(report.buffer_map.start());
    b.put_u16(report.buffer_map.len());
    b.put_slice(report.buffer_map.raw_bits());
    b.put_f64(report.download_capacity_kbps);
    b.put_f64(report.upload_capacity_kbps);
    b.put_f64(report.recv_throughput_kbps);
    b.put_f64(report.send_throughput_kbps);
    b.put_u16(report.partners.len() as u16);
    for p in &report.partners {
        b.put_u32(p.addr.as_u32());
        b.put_u16(p.tcp_port);
        b.put_u16(p.udp_port);
        b.put_u64(p.segments_sent);
        b.put_u64(p.segments_received);
    }
    b.freeze()
}

fn need(buf: &impl Buf, n: usize, context: &'static str) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::UnexpectedEof { context })
    } else {
        Ok(())
    }
}

/// Decodes a datagram produced by [`encode`].
///
/// # Errors
///
/// Returns [`WireError`] when the datagram is truncated or carries an
/// impossible field (oversized bitmap or partner list, non-finite
/// capacity).
pub fn decode(buf: &mut impl Buf) -> Result<PeerReport, WireError> {
    need(buf, 8 + 4 + 2 + 8 + 2, "header")?;
    let time = SimTime::from_millis(buf.get_u64());
    let addr = PeerAddr::from_u32(buf.get_u32());
    let channel = ChannelId(buf.get_u16());
    let bm_start = buf.get_u64();
    let bm_len = buf.get_u16();
    let bm_bytes = (bm_len as usize).div_ceil(8);
    need(buf, bm_bytes, "buffer map")?;
    let mut bits = vec![0u8; bm_bytes];
    buf.copy_to_slice(&mut bits);
    let buffer_map = BufferMap::from_raw(bm_start, bm_len, bits);
    need(buf, 8 * 4 + 2, "capacities")?;
    let download_capacity_kbps = buf.get_f64();
    let upload_capacity_kbps = buf.get_f64();
    let recv_throughput_kbps = buf.get_f64();
    let send_throughput_kbps = buf.get_f64();
    for (v, context) in [
        (download_capacity_kbps, "download capacity"),
        (upload_capacity_kbps, "upload capacity"),
        (recv_throughput_kbps, "recv throughput"),
        (send_throughput_kbps, "send throughput"),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(WireError::Invalid { context });
        }
    }
    let n = buf.get_u16() as usize;
    if n > MAX_WIRE_PARTNERS {
        return Err(WireError::Invalid {
            context: "partner count",
        });
    }
    let mut partners = Vec::with_capacity(n);
    for _ in 0..n {
        need(buf, 4 + 2 + 2 + 8 + 8, "partner record")?;
        partners.push(PartnerRecord {
            addr: PeerAddr::from_u32(buf.get_u32()),
            tcp_port: buf.get_u16(),
            udp_port: buf.get_u16(),
            segments_sent: buf.get_u64(),
            segments_received: buf.get_u64(),
        });
    }
    Ok(PeerReport {
        time,
        addr,
        channel,
        buffer_map,
        download_capacity_kbps,
        upload_capacity_kbps,
        recv_throughput_kbps,
        send_throughput_kbps,
        partners,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PeerReport {
        let mut bm = BufferMap::new(1000, 32);
        bm.set(1001);
        bm.set(1030);
        PeerReport {
            time: SimTime::at(3, 21, 10),
            addr: PeerAddr::from_u32(0x0B01_0203),
            channel: ChannelId(7),
            buffer_map: bm,
            download_capacity_kbps: 2048.5,
            upload_capacity_kbps: 512.25,
            recv_throughput_kbps: 398.0,
            send_throughput_kbps: 610.0,
            partners: vec![
                PartnerRecord {
                    addr: PeerAddr::from_u32(0x0C000001),
                    tcp_port: 9000,
                    udp_port: 9001,
                    segments_sent: 120,
                    segments_received: 14,
                },
                PartnerRecord {
                    addr: PeerAddr::from_u32(0x0D000002),
                    tcp_port: 9100,
                    udp_port: 9101,
                    segments_sent: 0,
                    segments_received: 999,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let r = sample();
        let bytes = encode(&r);
        let back = decode(&mut bytes.clone()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn roundtrip_empty_partner_list() {
        let mut r = sample();
        r.partners.clear();
        let bytes = encode(&r);
        assert_eq!(decode(&mut bytes.clone()).unwrap(), r);
    }

    #[test]
    fn truncation_at_every_length_is_an_eof_not_a_panic() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            let mut short = bytes.slice(0..cut);
            match decode(&mut short) {
                Err(WireError::UnexpectedEof { .. }) => {}
                Ok(_) => panic!("decode succeeded on {cut}-byte truncation"),
                Err(e) => panic!("wrong error on truncation at {cut}: {e}"),
            }
        }
    }

    #[test]
    fn oversized_partner_count_is_rejected() {
        let mut r = sample();
        r.partners.clear();
        let mut raw = BytesMut::from(&encode(&r)[..]);
        // Overwrite the trailing partner-count u16 with a huge value.
        let len = raw.len();
        raw[len - 2..].copy_from_slice(&(u16::MAX).to_be_bytes());
        let mut buf = raw.freeze();
        assert_eq!(
            decode(&mut buf),
            Err(WireError::Invalid {
                context: "partner count"
            })
        );
    }

    #[test]
    fn non_finite_capacity_is_rejected() {
        let mut r = sample();
        r.upload_capacity_kbps = f64::NAN;
        let bytes = encode(&r);
        assert!(matches!(
            decode(&mut bytes.clone()),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = WireError::UnexpectedEof { context: "header" };
        assert!(e.to_string().contains("header"));
    }

    /// Every admission outcome a gateway can produce — both success
    /// arms and *every* [`SubmitError`] variant — maps to a status
    /// code and back to a semantically equivalent outcome. Adding a
    /// `SubmitError` variant without extending [`StatusCode`] breaks
    /// this test (via the `debug_assert` in `from_admission`), which
    /// is the point: the in-process and networked paths cannot drift.
    #[test]
    fn every_submit_error_round_trips_through_a_status_code() {
        let at = SimTime::at(0, 3, 0);
        let outcomes: Vec<Result<bool, SubmitError>> = vec![
            Ok(true),
            Ok(false),
            Err(SubmitError::Busy { time: at }),
            Err(SubmitError::Unavailable { time: at }),
            Err(SubmitError::OutOfWindow { time: at }),
            Err(SubmitError::Implausible {
                what: "rejected by remote validation",
            }),
            Err(SubmitError::Malformed(WireError::Invalid {
                context: "rejected by remote decoder",
            })),
            Err(SubmitError::Late { time: at }),
            Err(SubmitError::RateLimited { time: at }),
        ];
        // One outcome per code: the mapping is a bijection over ALL.
        assert_eq!(outcomes.len(), StatusCode::ALL.len());
        let mut seen = std::collections::BTreeSet::new();
        for outcome in &outcomes {
            let code = StatusCode::from_admission(outcome);
            assert!(seen.insert(code), "two outcomes map to {code:?}");
            // The representative outcomes above are exactly the fixed
            // points of the wire mapping, so the round trip is exact.
            assert_eq!(&code.into_admission(at), outcome, "code {code:?}");
        }
        assert_eq!(seen.len(), StatusCode::ALL.len(), "unreached status code");
    }

    /// The numeric wire values are frozen protocol; `from_u8` is the
    /// exact inverse on known codes and `None` past the end.
    #[test]
    fn status_code_bytes_are_stable_and_invertible() {
        let pinned: [(StatusCode, u8); 9] = [
            (StatusCode::Ack, 0),
            (StatusCode::AckDuplicate, 1),
            (StatusCode::Busy, 2),
            (StatusCode::Unavailable, 3),
            (StatusCode::OutOfWindow, 4),
            (StatusCode::Implausible, 5),
            (StatusCode::Malformed, 6),
            (StatusCode::Late, 7),
            (StatusCode::RateLimited, 8),
        ];
        for (code, byte) in pinned {
            assert_eq!(code.as_u8(), byte, "{code:?} renumbered");
            assert_eq!(StatusCode::from_u8(byte), Some(code));
        }
        for unknown in StatusCode::ALL.len() as u8..=u8::MAX {
            assert_eq!(StatusCode::from_u8(unknown), None);
        }
    }

    /// Retry classification partitions the codes: delivered and
    /// retryable are disjoint, and the permanent rejections are
    /// everything else.
    #[test]
    fn retry_classification_partitions_the_codes() {
        for code in StatusCode::ALL {
            assert!(
                !(code.is_delivered() && code.is_retryable()),
                "{code:?} both delivered and retryable"
            );
            let expect_retry = matches!(
                code,
                StatusCode::Busy | StatusCode::Unavailable | StatusCode::RateLimited
            );
            assert_eq!(code.is_retryable(), expect_retry);
            // A retryable bounce must come back as an error the
            // uplink buffers rather than counts rejected.
            if code.is_retryable() {
                assert!(matches!(
                    code.into_admission(SimTime::ORIGIN),
                    Err(SubmitError::Busy { .. }
                        | SubmitError::Unavailable { .. }
                        | SubmitError::RateLimited { .. })
                ));
            }
        }
    }
}
