//! Crash-safe file emission: write-temp-then-atomic-rename.
//!
//! Every artifact the workspace persists (sealed archive segments,
//! manifests, checkpoints, study reports, bench metrics, figures) goes
//! through [`atomic_write`], so an interrupted process can leave
//! behind a stale `*.tmp` file but never a half-written artifact under
//! its final name. Readers that find a `*.tmp` simply ignore it.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Suffix appended to the destination name while the bytes are in
/// flight. Cleanup helpers and archive readers skip files ending in
/// this suffix.
pub const TMP_SUFFIX: &str = ".tmp";

/// The in-flight temporary path for a destination path.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(TMP_SUFFIX);
    PathBuf::from(name)
}

/// Writes `bytes` to `path` atomically: the data lands in
/// `<path>.tmp` first, is flushed and synced to stable storage, and
/// only then renamed over the destination. On any failure the
/// destination is untouched (a stale `.tmp` may remain and is safe to
/// delete or overwrite).
///
/// # Errors
///
/// Propagates the underlying I/O error from create/write/sync/rename.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join("magellan-atomicio-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.txt");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(
            !tmp_path(&path).exists(),
            "temp file must not survive a successful write"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
