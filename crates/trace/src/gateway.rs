//! The report-delivery abstraction behind the peer uplink.
//!
//! [`crate::uplink::ReportUplink`] originally spoke only to the
//! in-memory [`TraceServer`]; the durable study pipeline needs the
//! same downtime/validation/dedup semantics in front of an on-disk
//! archive. [`ReportGateway`] is the common trait, and
//! [`GatewayCore`] packages the server-equivalent admission logic
//! (downtime windows, validation, `(peer, timestamp)` dedup, stats)
//! for any storage backend to compose with.

use crate::report::PeerReport;
use crate::server::{validate_report, ServerStats, SubmitError, TraceServer};
use magellan_netsim::{FaultWindow, SimTime};
use std::collections::BTreeSet;

/// Anything that can accept a report delivery at a given arrival
/// time, with server-style error semantics ([`SubmitError`]).
pub trait ReportGateway {
    /// Validates and stores one report arriving at `now`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Unavailable`] when the endpoint is down at
    /// `now` (the sender should buffer and retransmit); any other
    /// [`SubmitError`] is a validation rejection that retrying cannot
    /// fix.
    fn submit_report(&mut self, report: PeerReport, now: SimTime) -> Result<(), SubmitError>;
}

impl ReportGateway for TraceServer {
    fn submit_report(&mut self, report: PeerReport, now: SimTime) -> Result<(), SubmitError> {
        self.submit_at(report, now)
    }
}

/// The admission half of a trace collection endpoint, storage
/// agnostic: downtime windows, the validation rules of
/// [`TraceServer`], `(peer, timestamp)` retransmission dedup, and
/// [`ServerStats`] accounting. Callers decide what to do with an
/// admitted report (archive it, feed an accumulator, both).
#[derive(Debug, Clone)]
pub struct GatewayCore {
    window_end: SimTime,
    downtime: Vec<FaultWindow>,
    seen: BTreeSet<(u32, u64)>,
    stats: ServerStats,
}

impl GatewayCore {
    /// An endpoint accepting reports with `time < window_end`, down
    /// inside any of the `downtime` windows.
    pub fn new(window_end: SimTime, downtime: Vec<FaultWindow>) -> Self {
        GatewayCore {
            window_end,
            downtime,
            seen: BTreeSet::new(),
            stats: ServerStats::default(),
        }
    }

    /// Admission decision for one report arriving at `now`:
    /// `Ok(true)` = fresh, store it; `Ok(false)` = duplicate,
    /// absorbed idempotently.
    ///
    /// # Errors
    ///
    /// As [`ReportGateway::submit_report`]. Rejections are counted.
    pub fn admit(&mut self, report: &PeerReport, now: SimTime) -> Result<bool, SubmitError> {
        if self.downtime.iter().any(|w| w.contains(now)) {
            self.stats.unavailable += 1;
            return Err(SubmitError::Unavailable { time: now });
        }
        if let Err(e) = validate_report(report, self.window_end) {
            self.stats.rejected += 1;
            return Err(e);
        }
        let key = (report.addr.as_u32(), report.time.as_millis());
        if !self.seen.insert(key) {
            self.stats.duplicates += 1;
            return Ok(false);
        }
        self.stats.accepted += 1;
        Ok(true)
    }

    /// Re-registers an identity as already stored without touching
    /// the stats — checkpoint resume rebuilds the dedup set by
    /// replaying the archive prefix through this.
    pub fn mark_seen(&mut self, report: &PeerReport) {
        self.seen
            .insert((report.addr.as_u32(), report.time.as_millis()));
    }

    /// Whether this `(peer, timestamp)` identity was already admitted
    /// — the sharded service distinguishes a straggler duplicate
    /// (absorb idempotently) from a straggler fresh report (shed as
    /// [`SubmitError::Late`]) with this.
    pub fn contains(&self, report: &PeerReport) -> bool {
        self.seen
            .contains(&(report.addr.as_u32(), report.time.as_millis()))
    }

    /// Counts one rejection that happened before admission could run
    /// (e.g. a datagram that failed wire decoding).
    pub fn note_rejected(&mut self) {
        self.stats.rejected += 1;
    }

    /// The end of the collection window this endpoint accepts.
    pub fn window_end(&self) -> SimTime {
        self.window_end
    }

    /// Drops dedup entries with `timestamp < below`, bounding the
    /// memory of a long-running endpoint. Retransmissions of pruned
    /// identities are no longer recognized as duplicates, so callers
    /// must only prune behind a frontier old enough that in-flight
    /// retries have drained (the service keeps a retention horizon of
    /// whole merge windows behind the sealed frontier).
    pub fn prune_seen_below(&mut self, below: SimTime) {
        let cut = below.as_millis();
        self.seen.retain(|&(_, t)| t >= cut);
    }

    /// Number of live dedup entries — memory-bound observability.
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// Current accounting.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Overwrites the accounting — checkpoint restore.
    pub fn restore_stats(&mut self, stats: ServerStats) {
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMap;
    use magellan_netsim::{PeerAddr, SimDuration};
    use magellan_workload::ChannelId;

    fn report(minute: u64) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(minute),
            addr: PeerAddr::from_u32(42),
            channel: ChannelId::CCTV4,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 380.0,
            send_throughput_kbps: 90.0,
            partners: vec![],
        }
    }

    #[test]
    fn admission_matches_server_semantics() {
        let down = FaultWindow::new(SimTime::at(0, 1, 0), SimTime::at(0, 2, 0));
        let mut g = GatewayCore::new(SimTime::at(14, 0, 0), vec![down]);
        // Inside the outage: unavailable.
        assert!(matches!(
            g.admit(&report(90), SimTime::ORIGIN + SimDuration::from_mins(90)),
            Err(SubmitError::Unavailable { .. })
        ));
        // Retransmitted after recovery: fresh.
        let now = SimTime::at(0, 2, 30);
        assert_eq!(g.admit(&report(90), now), Ok(true));
        // Same identity again: duplicate, absorbed.
        assert_eq!(g.admit(&report(90), now), Ok(false));
        // Validation failure: rejected.
        let mut bad = report(95);
        bad.upload_capacity_kbps = -1.0;
        assert!(matches!(
            g.admit(&bad, now),
            Err(SubmitError::Implausible { .. })
        ));
        let st = g.stats();
        assert_eq!(
            (st.accepted, st.duplicates, st.unavailable, st.rejected),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn mark_seen_primes_dedup_without_stats() {
        let mut g = GatewayCore::new(SimTime::at(14, 0, 0), vec![]);
        g.mark_seen(&report(20));
        assert_eq!(g.stats(), ServerStats::default());
        assert_eq!(g.admit(&report(20), report(20).time), Ok(false));
        assert_eq!(g.stats().duplicates, 1);
    }
}
