//! Message codec of the networked ingest service.
//!
//! `magellan-traced` speaks one message vocabulary over two
//! transports: each UDP datagram carries exactly one encoded
//! [`ClientMsg`], and TCP streams carry the same bodies inside
//! length-prefixed frames (u32 big-endian length, then the body —
//! [`frame`] / [`FrameReader`]). Replies travel the opposite way as
//! fixed-size [`ReplyMsg`]s carrying the report sequence number and
//! its [`StatusCode`].
//!
//! Report payloads stay opaque [`Bytes`] at this layer: the service
//! routes a report to its shard by peeking the address field
//! ([`peek_report_addr`]) and only the owning shard runs the full
//! [`crate::wire::decode`], so a corrupt payload is charged to
//! exactly one shard's `malformed` counter and costs at most that one
//! report.

use crate::wire::{StatusCode, WireError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use magellan_netsim::{PeerAddr, SimTime};

/// Upper bound on a frame body. A report datagram is a few hundred
/// bytes (≤ [`crate::wire::MAX_WIRE_PARTNERS`] partner records at 24
/// bytes each plus a small header), so anything near this bound is
/// corruption — the reader drops the connection rather than buffering
/// an attacker-controlled length.
pub const MAX_FRAME: usize = 64 * 1024;

/// Bytes of the fixed-size length prefix in front of every TCP frame.
pub const FRAME_HEADER: usize = 4;

const TAG_HELLO: u8 = 1;
const TAG_REPORT: u8 = 2;
const TAG_WINDOW_MARK: u8 = 3;
const TAG_FINISH: u8 = 4;

/// One client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// Session open: which client of how many is speaking. The
    /// coordinator waits for all `clients` hellos before sequencing
    /// any merge.
    Hello {
        /// This client's index in `0..clients`.
        client_id: u32,
        /// Total clients participating in the drill.
        clients: u32,
    },
    /// One wire-encoded peer report ([`crate::wire::encode`]) with a
    /// per-connection sequence number the reply echoes back.
    Report {
        /// Client-chosen sequence number, echoed in the [`ReplyMsg`].
        seq: u64,
        /// The opaque `wire::encode`d report body.
        payload: Bytes,
    },
    /// Barrier mark: this client has sent every report with
    /// `time < up_to`. The coordinator merges a window once all
    /// clients' marks have passed it.
    WindowMark {
        /// This client's index.
        client_id: u32,
        /// Exclusive frontier of the client's sent reports.
        up_to: SimTime,
    },
    /// Session close: the client is done and transmitted `sent` report
    /// datagrams in total (including retransmissions) — the number the
    /// server reconciles its loss accounting against.
    Finish {
        /// This client's index.
        client_id: u32,
        /// Report datagrams the client put on the wire.
        sent: u64,
    },
}

/// Server-to-client reply for one report submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyMsg {
    /// The sequence number of the report being answered.
    pub seq: u64,
    /// Admission verdict.
    pub status: StatusCode,
}

/// Encodes a message body (no TCP frame header — UDP sends this
/// verbatim, TCP wraps it with [`frame`]).
pub fn encode_client_msg(msg: &ClientMsg) -> Bytes {
    let mut b = BytesMut::with_capacity(32);
    match msg {
        ClientMsg::Hello { client_id, clients } => {
            b.put_u8(TAG_HELLO);
            b.put_u32(*client_id);
            b.put_u32(*clients);
        }
        ClientMsg::Report { seq, payload } => {
            b.reserve(9 + payload.len());
            b.put_u8(TAG_REPORT);
            b.put_u64(*seq);
            b.put_slice(payload);
        }
        ClientMsg::WindowMark { client_id, up_to } => {
            b.put_u8(TAG_WINDOW_MARK);
            b.put_u32(*client_id);
            b.put_u64(up_to.as_millis());
        }
        ClientMsg::Finish { client_id, sent } => {
            b.put_u8(TAG_FINISH);
            b.put_u32(*client_id);
            b.put_u64(*sent);
        }
    }
    b.freeze()
}

fn need(buf: &impl Buf, n: usize, context: &'static str) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::UnexpectedEof { context })
    } else {
        Ok(())
    }
}

fn reject_trailing(buf: &impl Buf) -> Result<(), WireError> {
    if buf.has_remaining() {
        Err(WireError::Invalid {
            context: "trailing bytes after message",
        })
    } else {
        Ok(())
    }
}

/// Decodes one message body produced by [`encode_client_msg`].
///
/// # Errors
///
/// [`WireError`] on a truncated body, an unknown tag, or trailing
/// bytes after a fixed-size message. A `Report`'s payload is *not*
/// validated here — see the module docs.
pub fn decode_client_msg(buf: &mut impl Buf) -> Result<ClientMsg, WireError> {
    need(buf, 1, "message tag")?;
    match buf.get_u8() {
        TAG_HELLO => {
            need(buf, 8, "hello body")?;
            let msg = ClientMsg::Hello {
                client_id: buf.get_u32(),
                clients: buf.get_u32(),
            };
            reject_trailing(buf)?;
            Ok(msg)
        }
        TAG_REPORT => {
            need(buf, 8, "report seq")?;
            let seq = buf.get_u64();
            Ok(ClientMsg::Report {
                seq,
                payload: buf.copy_to_bytes(buf.remaining()),
            })
        }
        TAG_WINDOW_MARK => {
            need(buf, 12, "window mark body")?;
            let msg = ClientMsg::WindowMark {
                client_id: buf.get_u32(),
                up_to: SimTime::from_millis(buf.get_u64()),
            };
            reject_trailing(buf)?;
            Ok(msg)
        }
        TAG_FINISH => {
            need(buf, 12, "finish body")?;
            let msg = ClientMsg::Finish {
                client_id: buf.get_u32(),
                sent: buf.get_u64(),
            };
            reject_trailing(buf)?;
            Ok(msg)
        }
        _ => Err(WireError::Invalid {
            context: "message tag",
        }),
    }
}

/// Exact size of an encoded [`ReplyMsg`]. Replies are fixed-size, so
/// they travel as raw [`REPLY_LEN`]-byte records on TCP (no length
/// framing needed) and as one datagram on UDP.
pub const REPLY_LEN: usize = 9;

/// Encodes a reply ([`REPLY_LEN`] bytes on both transports).
pub fn encode_reply(reply: &ReplyMsg) -> Bytes {
    let mut b = BytesMut::with_capacity(REPLY_LEN);
    b.put_u64(reply.seq);
    b.put_u8(reply.status.as_u8());
    b.freeze()
}

/// Decodes a reply produced by [`encode_reply`].
///
/// # Errors
///
/// [`WireError`] on truncation, an unknown status byte, or trailing
/// bytes.
pub fn decode_reply(buf: &mut impl Buf) -> Result<ReplyMsg, WireError> {
    need(buf, REPLY_LEN, "reply")?;
    let seq = buf.get_u64();
    let status = StatusCode::from_u8(buf.get_u8()).ok_or(WireError::Invalid {
        context: "status code",
    })?;
    reject_trailing(buf)?;
    Ok(ReplyMsg { seq, status })
}

/// Reads the peer address out of a wire-encoded report payload
/// without a full decode — the 4 bytes after the 8-byte timestamp.
/// `None` when the payload is too short to carry one (the caller
/// routes it anywhere and lets the shard count it malformed).
pub fn peek_report_addr(payload: &[u8]) -> Option<PeerAddr> {
    let raw = payload.get(8..12)?;
    Some(PeerAddr::from_u32(u32::from_be_bytes(raw.try_into().ok()?)))
}

/// Wraps a message body in a TCP frame: u32 big-endian body length,
/// then the body.
///
/// # Panics
///
/// Panics if `body` exceeds [`MAX_FRAME`] — encoded service messages
/// are bounded far below it, so an oversized body is a programming
/// error, not input.
pub fn frame(body: &[u8]) -> Bytes {
    assert!(body.len() <= MAX_FRAME, "frame body over MAX_FRAME");
    let mut b = BytesMut::with_capacity(FRAME_HEADER + body.len());
    b.put_u32(body.len() as u32);
    b.put_slice(body);
    b.freeze()
}

/// Incremental TCP frame extractor: feed it whatever the socket
/// produced, pull complete frame bodies out. Tolerates arbitrary
/// chunking (a frame split across many reads, many frames in one
/// read) without copying more than once.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: BytesMut,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends freshly read socket bytes.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Extracts the next complete frame body, `Ok(None)` when more
    /// bytes are needed.
    ///
    /// # Errors
    ///
    /// [`WireError::Invalid`] when a frame header announces a body
    /// over [`MAX_FRAME`] — the stream is corrupt or hostile and the
    /// connection must be dropped (the reader cannot resynchronize a
    /// length-prefixed stream).
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, WireError> {
        if self.buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(WireError::Invalid {
                context: "frame length",
            });
        }
        if self.buf.len() < FRAME_HEADER + len {
            return Ok(None);
        }
        self.buf.advance(FRAME_HEADER);
        Ok(Some(self.buf.split_to(len).freeze()))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msgs() -> Vec<ClientMsg> {
        vec![
            ClientMsg::Hello {
                client_id: 3,
                clients: 8,
            },
            ClientMsg::Report {
                seq: 0xDEAD_BEEF_0BAD_F00D,
                payload: Bytes::from_static(b"opaque report bytes"),
            },
            ClientMsg::WindowMark {
                client_id: 3,
                up_to: SimTime::at(0, 2, 30),
            },
            ClientMsg::Finish {
                client_id: 3,
                sent: 12_345,
            },
        ]
    }

    #[test]
    fn client_messages_round_trip() {
        for msg in sample_msgs() {
            let body = encode_client_msg(&msg);
            let back = decode_client_msg(&mut body.clone()).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn replies_round_trip_for_every_status() {
        for (i, status) in StatusCode::ALL.into_iter().enumerate() {
            let reply = ReplyMsg {
                seq: i as u64 * 71,
                status,
            };
            let body = encode_reply(&reply);
            assert_eq!(body.len(), 9);
            assert_eq!(decode_reply(&mut body.clone()).unwrap(), reply);
        }
    }

    #[test]
    fn truncated_messages_never_panic() {
        for msg in sample_msgs() {
            let body = encode_client_msg(&msg);
            for cut in 0..body.len() {
                // Report bodies are length-delimited by the frame, so
                // a truncated Report "decodes" into a shorter payload
                // — that is the shard decoder's problem. Fixed-size
                // messages must error.
                let _ = decode_client_msg(&mut body.slice(0..cut));
            }
        }
        let reply = encode_reply(&ReplyMsg {
            seq: 9,
            status: StatusCode::Busy,
        });
        for cut in 0..reply.len() {
            assert!(decode_reply(&mut reply.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn unknown_tag_and_status_are_invalid() {
        let mut bad_tag = BytesMut::new();
        bad_tag.put_u8(99);
        assert!(matches!(
            decode_client_msg(&mut bad_tag.freeze()),
            Err(WireError::Invalid { .. })
        ));
        let mut bad_status = BytesMut::new();
        bad_status.put_u64(1);
        bad_status.put_u8(200);
        assert!(matches!(
            decode_reply(&mut bad_status.freeze()),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn trailing_bytes_on_fixed_messages_are_invalid() {
        for msg in sample_msgs() {
            if matches!(msg, ClientMsg::Report { .. }) {
                continue;
            }
            let mut body = BytesMut::from(&encode_client_msg(&msg)[..]);
            body.put_u8(0);
            assert!(matches!(
                decode_client_msg(&mut body.freeze()),
                Err(WireError::Invalid { .. })
            ));
        }
    }

    #[test]
    fn frame_reader_handles_arbitrary_chunking() {
        let msgs = sample_msgs();
        let mut stream = BytesMut::new();
        for msg in &msgs {
            stream.extend_from_slice(&frame(&encode_client_msg(msg)));
        }
        // Feed the whole stream one byte at a time.
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for b in stream.iter() {
            reader.extend(std::slice::from_ref(b));
            while let Some(body) = reader.next_frame().unwrap() {
                out.push(decode_client_msg(&mut body.clone()).unwrap());
            }
        }
        assert_eq!(out, msgs);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn oversized_frame_header_is_rejected() {
        let mut reader = FrameReader::new();
        reader.extend(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(matches!(
            reader.next_frame(),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn peek_addr_matches_full_decode() {
        let r = crate::report::PeerReport {
            time: SimTime::at(0, 1, 0),
            addr: PeerAddr::from_u32(0x0A0B_0C0D),
            channel: magellan_workload::ChannelId::CCTV1,
            buffer_map: crate::buffer::BufferMap::new(0, 8),
            download_capacity_kbps: 1000.0,
            upload_capacity_kbps: 500.0,
            recv_throughput_kbps: 400.0,
            send_throughput_kbps: 50.0,
            partners: vec![],
        };
        let payload = crate::wire::encode(&r);
        assert_eq!(peek_report_addr(&payload), Some(r.addr));
        assert_eq!(peek_report_addr(&payload[..11]), None);
    }
}
