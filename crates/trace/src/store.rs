//! The trace store: every collected report, bucketed by report
//! interval for fast time-range queries, with JSON-lines persistence.

use crate::jsonl::{from_json_line, to_json_line};
use crate::report::{PeerReport, REPORT_INTERVAL};
use magellan_netsim::{PeerAddr, SimTime};
use std::collections::{BTreeSet, HashMap};
use std::io::{self, BufRead, Write};

/// In-memory store of peer reports.
///
/// Reports are kept in arrival order; a bucket index over
/// [`REPORT_INTERVAL`]-wide windows serves the snapshot builder's
/// range scans, and a `(peer, timestamp)` identity set lets the
/// server deduplicate retransmitted reports.
#[derive(Debug, Default, Clone)]
pub struct TraceStore {
    reports: Vec<PeerReport>,
    buckets: HashMap<u64, Vec<usize>>,
    seen: BTreeSet<(u32, u64)>,
}

/// The bucket index of an instant.
pub fn bucket_of(t: SimTime) -> u64 {
    t.as_millis() / REPORT_INTERVAL.as_millis()
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one report. The store itself is append-only;
    /// deduplication policy belongs to the server (see
    /// [`TraceStore::contains`]).
    pub fn push(&mut self, report: PeerReport) {
        let idx = self.reports.len();
        self.buckets
            .entry(bucket_of(report.time))
            .or_default()
            .push(idx);
        self.seen
            .insert((report.addr.as_u32(), report.time.as_millis()));
        self.reports.push(report);
    }

    /// Whether a report with this `(peer, timestamp)` identity is
    /// already stored — the retransmission-dedup key: a peer emits at
    /// most one report per schedule instant, so an identical key
    /// means a buffered resend, not new data.
    pub fn contains(&self, addr: PeerAddr, time: SimTime) -> bool {
        self.seen.contains(&(addr.as_u32(), time.as_millis()))
    }

    /// Number of stored reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the store holds no reports.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// All reports, in arrival order.
    pub fn reports(&self) -> &[PeerReport] {
        &self.reports
    }

    /// Iterates over reports with `start <= time < end`.
    pub fn range(&self, start: SimTime, end: SimTime) -> impl Iterator<Item = &PeerReport> {
        let b_lo = bucket_of(start);
        let b_hi = bucket_of(end);
        (b_lo..=b_hi)
            .filter_map(move |b| self.buckets.get(&b))
            .flatten()
            .map(move |&i| &self.reports[i])
            .filter(move |r| r.time >= start && r.time < end)
    }

    /// The distinct reporter addresses in `start <= time < end`.
    pub fn reporters_in(&self, start: SimTime, end: SimTime) -> Vec<PeerAddr> {
        let mut v: Vec<PeerAddr> = self.range(start, end).map(|r| r.addr).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Earliest and latest report times, when any.
    pub fn time_span(&self) -> Option<(SimTime, SimTime)> {
        let min = self.reports.iter().map(|r| r.time).min()?;
        let max = self.reports.iter().map(|r| r.time).max()?;
        Some((min, max))
    }

    /// Writes every report as JSON lines.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from `w`.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        for r in &self.reports {
            w.write_all(to_json_line(r).as_bytes())?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Reads a store back from JSON lines (blank lines skipped).
    ///
    /// A malformed **final** line is treated as a truncated trailing
    /// write (the signature of a killed process) and silently
    /// dropped; use [`TraceStore::read_jsonl_lenient`] to learn that
    /// it happened.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, or — for a malformed line
    /// *followed by more data* (real corruption, not truncation) — a
    /// [`crate::jsonl::JsonError`] wrapped in `io::Error` with the
    /// 1-based line number prepended.
    pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Self> {
        Self::read_jsonl_lenient(r).map(|(store, _)| store)
    }

    /// As [`TraceStore::read_jsonl`], also reporting whether a
    /// truncated trailing line was dropped (a human-readable note
    /// naming the line).
    ///
    /// # Errors
    ///
    /// As [`TraceStore::read_jsonl`].
    pub fn read_jsonl_lenient<R: BufRead>(r: R) -> io::Result<(Self, Option<String>)> {
        let mut store = TraceStore::new();
        let lines: Vec<String> = r.lines().collect::<io::Result<_>>()?;
        let last_data = lines.iter().rposition(|l| !l.trim().is_empty());
        for (lineno, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match from_json_line(line) {
                Ok(report) => store.push(report),
                Err(e) if Some(lineno) == last_data => {
                    // Nothing follows: a torn final write, not
                    // corruption. Keep what was recovered.
                    let note = format!(
                        "truncated trailing line {} dropped ({e}); {} reports recovered",
                        lineno + 1,
                        store.len()
                    );
                    return Ok((store, Some(note)));
                }
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("line {}: {e}", lineno + 1),
                    ));
                }
            }
        }
        Ok((store, None))
    }
}

impl Extend<PeerReport> for TraceStore {
    fn extend<I: IntoIterator<Item = PeerReport>>(&mut self, iter: I) {
        for r in iter {
            self.push(r);
        }
    }
}

impl FromIterator<PeerReport> for TraceStore {
    fn from_iter<I: IntoIterator<Item = PeerReport>>(iter: I) -> Self {
        let mut s = TraceStore::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMap;
    use magellan_netsim::SimDuration;
    use magellan_workload::ChannelId;

    fn report(ip: u32, minute: u64) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(minute),
            addr: PeerAddr::from_u32(ip),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 400.0,
            send_throughput_kbps: 100.0,
            partners: vec![],
        }
    }

    #[test]
    fn push_and_len() {
        let mut s = TraceStore::new();
        assert!(s.is_empty());
        s.push(report(1, 20));
        s.push(report(2, 30));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn range_query_is_half_open() {
        let s: TraceStore = vec![report(1, 20), report(2, 30), report(3, 40)]
            .into_iter()
            .collect();
        let start = SimTime::ORIGIN + SimDuration::from_mins(20);
        let end = SimTime::ORIGIN + SimDuration::from_mins(40);
        let got: Vec<u32> = s.range(start, end).map(|r| r.addr.as_u32()).collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn reporters_are_deduped_and_sorted() {
        let s: TraceStore = vec![report(5, 20), report(3, 22), report(5, 25)]
            .into_iter()
            .collect();
        let start = SimTime::ORIGIN;
        let end = SimTime::ORIGIN + SimDuration::from_hours(1);
        assert_eq!(
            s.reporters_in(start, end),
            vec![PeerAddr::from_u32(3), PeerAddr::from_u32(5)]
        );
    }

    #[test]
    fn time_span() {
        let s: TraceStore = vec![report(1, 50), report(2, 20)].into_iter().collect();
        let (lo, hi) = s.time_span().unwrap();
        assert_eq!(lo, SimTime::ORIGIN + SimDuration::from_mins(20));
        assert_eq!(hi, SimTime::ORIGIN + SimDuration::from_mins(50));
        assert!(TraceStore::new().time_span().is_none());
    }

    #[test]
    fn jsonl_roundtrip() {
        let s: TraceStore = vec![report(1, 20), report(2, 30)].into_iter().collect();
        let mut buf = Vec::new();
        s.write_jsonl(&mut buf).unwrap();
        let back = TraceStore::read_jsonl(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.reports(), s.reports());
    }

    #[test]
    fn jsonl_reports_line_numbers_on_error() {
        let good = to_json_line(&report(1, 20));
        // The bad line is followed by more data, so this is
        // corruption — not a torn tail — and must fail loudly.
        let text = format!("{good}\nthis is not json\n{good}\n");
        let err = TraceStore::read_jsonl(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn jsonl_tolerates_truncated_trailing_line() {
        let good = to_json_line(&report(1, 20));
        let torn = &good[..good.len() / 2];
        let text = format!("{good}\n{good}\n{torn}");
        let store = TraceStore::read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(store.len(), 2, "intact prefix recovered");
        let (store, note) = TraceStore::read_jsonl_lenient(text.as_bytes()).unwrap();
        assert_eq!(store.len(), 2);
        let note = note.unwrap();
        assert!(note.contains("line 3"), "{note}");
        assert!(note.contains("2 reports recovered"), "{note}");
        // A clean file reports no truncation.
        let (_, note) = TraceStore::read_jsonl_lenient(good.as_bytes()).unwrap();
        assert!(note.is_none());
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let good = to_json_line(&report(1, 20));
        let text = format!("\n{good}\n\n");
        let back = TraceStore::read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn contains_tracks_peer_timestamp_identity() {
        let mut s = TraceStore::new();
        s.push(report(7, 20));
        let t = SimTime::ORIGIN + SimDuration::from_mins(20);
        assert!(s.contains(PeerAddr::from_u32(7), t));
        assert!(!s.contains(PeerAddr::from_u32(8), t));
        assert!(!s.contains(
            PeerAddr::from_u32(7),
            SimTime::ORIGIN + SimDuration::from_mins(30)
        ));
        // Identity survives a JSONL roundtrip.
        let mut buf = Vec::new();
        s.write_jsonl(&mut buf).unwrap();
        let back = TraceStore::read_jsonl(&buf[..]).unwrap();
        assert!(back.contains(PeerAddr::from_u32(7), t));
    }

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(SimTime::ORIGIN), 0);
        assert_eq!(bucket_of(SimTime::ORIGIN + SimDuration::from_mins(9)), 0);
        assert_eq!(bucket_of(SimTime::ORIGIN + SimDuration::from_mins(10)), 1);
        assert_eq!(bucket_of(SimTime::at(1, 0, 0)), 144);
    }
}
