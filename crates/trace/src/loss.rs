//! Collection-path failure injection.
//!
//! Reports travelled to the real trace server as UDP datagrams —
//! some were lost, some corrupted. [`LossyCollector`] models that
//! path: it sits between the simulator and a [`TraceServer`], drops
//! datagrams with a configured probability, flips bytes in others,
//! and counts what happened. Robustness tests drive the full analysis
//! through it to show the study's findings survive realistic
//! measurement loss (the paper's snapshot design tolerates missed
//! reports by construction — the staleness horizon spans more than
//! one report interval).

use crate::report::PeerReport;
use crate::server::TraceServer;
use crate::wire;
use bytes::BytesMut;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Statistics of one lossy collection session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LossStats {
    /// Datagrams handed to the channel.
    pub sent: u64,
    /// Datagrams dropped in flight.
    pub dropped: u64,
    /// Datagrams delivered with corruption.
    pub corrupted: u64,
    /// Datagrams delivered intact and accepted.
    pub delivered: u64,
    /// Corrupted datagrams the server rejected (decode/validation).
    pub rejected_by_server: u64,
}

/// A lossy UDP path in front of a trace server.
#[derive(Debug)]
pub struct LossyCollector<'a> {
    server: &'a mut TraceServer,
    drop_prob: f64,
    corrupt_prob: f64,
    rng: StdRng,
    stats: LossStats,
}

impl<'a> LossyCollector<'a> {
    /// Creates a collector dropping datagrams with probability
    /// `drop_prob` and corrupting surviving ones with probability
    /// `corrupt_prob`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(server: &'a mut TraceServer, drop_prob: f64, corrupt_prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob), "drop_prob out of range");
        assert!(
            (0.0..=1.0).contains(&corrupt_prob),
            "corrupt_prob out of range"
        );
        LossyCollector {
            server,
            drop_prob,
            corrupt_prob,
            rng: StdRng::seed_from_u64(seed),
            stats: LossStats::default(),
        }
    }

    /// Transmits one report across the lossy path.
    pub fn transmit(&mut self, report: &PeerReport) {
        self.stats.sent += 1;
        if self.rng.random_range(0.0..1.0) < self.drop_prob {
            self.stats.dropped += 1;
            return;
        }
        let datagram = wire::encode(report);
        if self.rng.random_range(0.0..1.0) < self.corrupt_prob {
            self.stats.corrupted += 1;
            let mut bytes = BytesMut::from(&datagram[..]);
            // Flip a few bytes anywhere in the datagram.
            for _ in 0..3 {
                let i = self.rng.random_range(0..bytes.len());
                bytes[i] ^= 1 << self.rng.random_range(0..8u32);
            }
            if self.server.submit_wire(bytes.freeze()).is_err() {
                self.stats.rejected_by_server += 1;
            } else {
                // Corruption landed in a field that still validated —
                // delivered, just wrong, exactly like real UDP.
                self.stats.delivered += 1;
            }
            return;
        }
        match self.server.submit_wire(datagram) {
            Ok(()) => self.stats.delivered += 1,
            Err(_) => self.stats.rejected_by_server += 1,
        }
    }

    /// Session statistics so far.
    pub fn stats(&self) -> LossStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMap;
    use magellan_netsim::{PeerAddr, SimDuration, SimTime};
    use magellan_workload::ChannelId;

    fn report(i: u32) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(20 + (i as u64 % 60)),
            addr: PeerAddr::from_u32(i),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 16),
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 390.0,
            send_throughput_kbps: 77.0,
            partners: vec![],
        }
    }

    #[test]
    fn lossless_path_delivers_everything() {
        let mut server = TraceServer::new(SimTime::at(1, 0, 0));
        let mut chan = LossyCollector::new(&mut server, 0.0, 0.0, 1);
        for i in 0..200 {
            chan.transmit(&report(i));
        }
        let s = chan.stats();
        assert_eq!(s.sent, 200);
        assert_eq!(s.delivered, 200);
        assert_eq!(s.dropped + s.corrupted, 0);
        assert_eq!(server.len(), 200);
    }

    #[test]
    fn drop_rate_is_respected() {
        let mut server = TraceServer::new(SimTime::at(1, 0, 0));
        let mut chan = LossyCollector::new(&mut server, 0.3, 0.0, 2);
        for i in 0..5_000 {
            chan.transmit(&report(i));
        }
        let s = chan.stats();
        let rate = s.dropped as f64 / s.sent as f64;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
        assert_eq!(server.len() as u64, s.delivered);
    }

    #[test]
    fn corruption_is_mostly_caught() {
        let mut server = TraceServer::new(SimTime::at(1, 0, 0));
        let mut chan = LossyCollector::new(&mut server, 0.0, 1.0, 3);
        for i in 0..500 {
            chan.transmit(&report(i));
        }
        let s = chan.stats();
        assert_eq!(s.corrupted, 500);
        // Bit flips can land in payload fields that still validate;
        // the decoder must reject at least length/field damage without
        // ever panicking, and the books must balance.
        assert_eq!(s.delivered + s.rejected_by_server, 500);
        assert!(s.rejected_by_server > 0, "no corruption detected at all");
        assert_eq!(server.len() as u64 + s.rejected_by_server, 500);
    }

    #[test]
    fn full_loss_delivers_nothing() {
        let mut server = TraceServer::new(SimTime::at(1, 0, 0));
        let mut chan = LossyCollector::new(&mut server, 1.0, 0.0, 4);
        for i in 0..100 {
            chan.transmit(&report(i));
        }
        assert_eq!(chan.stats().dropped, 100);
        assert!(server.is_empty());
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn rejects_invalid_probability() {
        let mut server = TraceServer::new(SimTime::at(1, 0, 0));
        let _ = LossyCollector::new(&mut server, 1.5, 0.0, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut server = TraceServer::new(SimTime::at(1, 0, 0));
            let mut chan = LossyCollector::new(&mut server, 0.25, 0.1, seed);
            for i in 0..1_000 {
                chan.transmit(&report(i));
            }
            chan.stats()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
