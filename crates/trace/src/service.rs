//! The sans-I/O brain of the networked ingest service.
//!
//! `magellan-traced` is a thin socket shell; everything with protocol
//! meaning lives here so it can be driven deterministically in tests:
//!
//! * [`ClientRegistry`] — who is participating, how far each client's
//!   window marks have advanced, who has finished and how many report
//!   datagrams they put on the wire;
//! * [`ServiceCore`] — routes reports to [`Shard`]s, sequences the
//!   window-boundary merges (a window seals only after *every*
//!   client's mark passes it, so per-connection FIFO plus shard-queue
//!   FIFO guarantee no report of that window is still in flight), and
//!   reconciles the final [`IngestStats`];
//! * [`IngestStats`] — the balanced service accounting, persisted
//!   next to the archive as the `INGEST` sidecar so `magellan replay`
//!   and `tracetool stats` can fold it into the [`StudyReport`]
//!   without re-running the drill.
//!
//! The merge discipline is what keeps the networked run equal to the
//! in-process study: each sealed window is sorted by `(time, addr)`
//! and windows seal in increasing order, so the archive is globally
//! `(time, addr)`-sorted — the canonical order the analysis
//! accumulator is provably insensitive to (DESIGN.md §13).
//!
//! [`StudyReport`]: ../../magellan_analysis/figures/struct.StudyReport.html

use crate::atomicio::atomic_write;
use crate::codec::{peek_report_addr, ClientMsg, ReplyMsg};
use crate::report::PeerReport;
use crate::shard::{shard_of, Shard, ShardStats};
use crate::wire::StatusCode;
use magellan_netsim::SimTime;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// File name of the ingest-accounting sidecar, written next to the
/// archive directory's segments.
pub const INGEST_SIDECAR: &str = "INGEST";

/// File name of the crash-resume sidecar `serve` checkpoints after
/// every sealed merge; `serve --resume` rebuilds its books from it.
pub const INGEST_RESUME: &str = "INGEST.resume";

/// Service-wide ingest accounting: the sum of every shard's
/// [`ShardStats`] plus the client-reported send counts that close the
/// books. The balance identity is
/// `sent + surplus == admitted + deduped + shed() + lost`: on a clean
/// drill `surplus == 0` and this reduces to the classic
/// `sent == admitted + … + lost`; under a hostile transport the
/// service can classify *more* datagrams than the clients ever
/// reported sending — chaos-injected duplicates, clients that died
/// before their `Finish`, or a crash-resume that re-received reports
/// already counted by the previous incarnation — and that excess is
/// `surplus = received() - sent`, attributed instead of dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Clients that participated in the drill.
    pub clients: u32,
    /// Report datagrams clients put on the wire (sum of `Finish`
    /// counts, retransmissions included).
    pub sent: u64,
    /// Fresh reports admitted and archived.
    pub admitted: u64,
    /// Duplicate retransmissions absorbed idempotently.
    pub deduped: u64,
    /// Reports shed with `Busy` under overload.
    pub shed_busy: u64,
    /// Reports rejected by validation.
    pub rejected: u64,
    /// Datagrams that failed wire decoding.
    pub malformed: u64,
    /// Fresh reports shed behind the sealed merge frontier.
    pub late: u64,
    /// Reports bounced by scheduled downtime (zero in service mode).
    pub unavailable: u64,
    /// Reports throttled by the per-client token bucket
    /// ([`TokenBucket`]) — transient, the client retries.
    pub rate_limited: u64,
    /// Datagrams that left a client but never produced a server-side
    /// classification — dropped in flight (UDP) or lost with a dying
    /// connection. Derived: `sent - received()`.
    pub lost: u64,
    /// Datagrams classified beyond what clients reported sending —
    /// chaos duplicates, evicted clients' traffic, or re-received
    /// reports after a crash-resume. Derived: `received() - sent`.
    pub surplus: u64,
    /// Expected clients evicted at the barrier deadline (stalled or
    /// vanished) — windows sealed partial without their marks.
    pub evicted: u64,
    /// Window merges the coordinator sealed.
    pub merges: u64,
    /// Control messages that violated the protocol (unknown client
    /// id, inconsistent client count) — drill debugging.
    pub protocol_errors: u64,
}

impl IngestStats {
    /// Everything the service classified (the receive-side total).
    pub fn received(&self) -> u64 {
        self.admitted
            + self.deduped
            + self.shed_busy
            + self.rejected
            + self.malformed
            + self.late
            + self.unavailable
            + self.rate_limited
    }

    /// Total shed/rejected datagrams — the `shed` term of the balance
    /// identity.
    pub fn shed(&self) -> u64 {
        self.shed_busy
            + self.rejected
            + self.malformed
            + self.late
            + self.unavailable
            + self.rate_limited
    }

    /// Whether the books balance: every datagram a client sent is
    /// admitted, deduped, shed, or lost — and every datagram the
    /// service classified beyond the clients' send counts is carried
    /// as `surplus`, never silently absorbed.
    pub fn balanced(&self) -> bool {
        self.sent + self.surplus == self.admitted + self.deduped + self.shed() + self.lost
    }

    /// Renders the stable key-value sidecar format (v2; the v1 reader
    /// keys remain untouched, the hostile-transport columns are
    /// appended).
    pub fn render(&self) -> String {
        format!(
            "ingest v2\nclients {}\nsent {}\nadmitted {}\ndeduped {}\nshed_busy {}\n\
             rejected {}\nmalformed {}\nlate {}\nunavailable {}\nlost {}\nmerges {}\n\
             protocol_errors {}\nrate_limited {}\nsurplus {}\nevicted {}\n",
            self.clients,
            self.sent,
            self.admitted,
            self.deduped,
            self.shed_busy,
            self.rejected,
            self.malformed,
            self.late,
            self.unavailable,
            self.lost,
            self.merges,
            self.protocol_errors,
            self.rate_limited,
            self.surplus,
            self.evicted,
        )
    }

    /// Parses [`IngestStats::render`] output — v2, or a v1 sidecar
    /// written before the hostile-transport columns existed (the new
    /// columns read as 0). `None` on any structural mismatch.
    pub fn parse(text: &str) -> Option<IngestStats> {
        let mut lines = text.lines();
        if !matches!(lines.next()?, "ingest v1" | "ingest v2") {
            return None;
        }
        let mut fields: BTreeMap<&str, u64> = BTreeMap::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once(' ')?;
            fields.insert(key, value.parse().ok()?);
        }
        let mut get = |k: &str| fields.remove(k);
        Some(IngestStats {
            clients: u32::try_from(get("clients")?).ok()?,
            sent: get("sent")?,
            admitted: get("admitted")?,
            deduped: get("deduped")?,
            shed_busy: get("shed_busy")?,
            rejected: get("rejected")?,
            malformed: get("malformed")?,
            late: get("late")?,
            unavailable: get("unavailable")?,
            lost: get("lost")?,
            merges: get("merges")?,
            protocol_errors: get("protocol_errors")?,
            rate_limited: get("rate_limited").unwrap_or(0),
            surplus: get("surplus").unwrap_or(0),
            evicted: get("evicted").unwrap_or(0),
        })
    }
}

/// A deterministic integer token bucket: `rate` tokens per second
/// refill, at most `burst` banked, one token per admitted datagram.
/// Pure arithmetic over a caller-supplied millisecond clock — the
/// shell feeds wall time, tests feed a counter.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    rate_per_sec: u64,
    burst_milli: u64,
    tokens_milli: u64,
    last_ms: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` (0 disables limiting)
    /// with at most `burst` tokens banked (clamped to at least 1),
    /// starting full.
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        let burst_milli = burst.max(1).saturating_mul(1000);
        TokenBucket {
            rate_per_sec,
            burst_milli,
            tokens_milli: burst_milli,
            last_ms: 0,
        }
    }

    /// Spends one token at `now_ms` if the bucket allows it; `false`
    /// means the caller should answer [`StatusCode::RateLimited`].
    /// `now_ms` must be monotone per bucket (a rewound clock just
    /// refills nothing).
    pub fn try_admit(&mut self, now_ms: u64) -> bool {
        if self.rate_per_sec == 0 {
            return true;
        }
        let elapsed = now_ms.saturating_sub(self.last_ms);
        self.last_ms = self.last_ms.max(now_ms);
        self.tokens_milli = self
            .tokens_milli
            .saturating_add(elapsed.saturating_mul(self.rate_per_sec))
            .min(self.burst_milli);
        if self.tokens_milli >= 1000 {
            self.tokens_milli -= 1000;
            true
        } else {
            false
        }
    }
}

/// Writes the ingest sidecar atomically into `archive_dir`.
///
/// # Errors
///
/// Filesystem I/O failure.
pub fn write_ingest_stats(archive_dir: &Path, stats: &IngestStats) -> io::Result<()> {
    atomic_write(&archive_dir.join(INGEST_SIDECAR), stats.render().as_bytes())
}

/// Reads the ingest sidecar from `archive_dir`; `Ok(None)` when the
/// archive was not produced by the networked service (no sidecar) or
/// the sidecar is unreadable as stats.
///
/// # Errors
///
/// Filesystem I/O failure other than the file not existing.
pub fn read_ingest_stats(archive_dir: &Path) -> io::Result<Option<IngestStats>> {
    match std::fs::read_to_string(archive_dir.join(INGEST_SIDECAR)) {
        Ok(text) => Ok(IngestStats::parse(&text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Participation bookkeeping: hellos, window marks, finish counts —
/// and liveness. Every control message `touch`es its client; a client
/// quiet past the barrier deadline is *evicted* so the merge barrier
/// degrades to the survivors instead of wedging [`ready_below`]
/// forever on a peer that died mid-drill. Eviction is reversible: a
/// touched client rejoins the barrier (its mark never regressed).
///
/// [`ready_below`]: ClientRegistry::ready_below
#[derive(Debug)]
pub struct ClientRegistry {
    expected: u32,
    marks: BTreeMap<u32, SimTime>,
    finished: BTreeMap<u32, u64>,
    evicted: std::collections::BTreeSet<u32>,
    last_seen_ms: BTreeMap<u32, u64>,
    protocol_errors: u64,
}

impl ClientRegistry {
    /// A registry expecting `expected` clients (at least 1).
    pub fn new(expected: u32) -> Self {
        ClientRegistry {
            expected: expected.max(1),
            marks: BTreeMap::new(),
            finished: BTreeMap::new(),
            evicted: std::collections::BTreeSet::new(),
            last_seen_ms: BTreeMap::new(),
            protocol_errors: 0,
        }
    }

    fn valid_id(&mut self, client_id: u32) -> bool {
        if client_id < self.expected {
            true
        } else {
            self.protocol_errors += 1;
            false
        }
    }

    /// Registers a hello; the client starts with a mark at the
    /// origin. A `clients` count disagreeing with the server's
    /// configuration is a protocol error (the drill would deadlock on
    /// a barrier the extra client never marks).
    pub fn hello(&mut self, client_id: u32, clients: u32) {
        if clients != self.expected || !self.valid_id(client_id) {
            self.protocol_errors += 1;
            return;
        }
        self.marks.entry(client_id).or_insert(SimTime::ORIGIN);
        self.evicted.remove(&client_id);
    }

    /// Advances a client's sent-everything-below frontier (marks
    /// never regress). A marked client is alive: eviction is undone.
    pub fn mark(&mut self, client_id: u32, up_to: SimTime) {
        if !self.valid_id(client_id) {
            return;
        }
        let m = self.marks.entry(client_id).or_insert(SimTime::ORIGIN);
        if up_to > *m {
            *m = up_to;
        }
        self.evicted.remove(&client_id);
    }

    /// Records a client's final datagram count. A finished client is
    /// no longer evicted — it completed, however slowly.
    pub fn finish(&mut self, client_id: u32, sent: u64) {
        if !self.valid_id(client_id) {
            return;
        }
        self.finished.insert(client_id, sent);
        self.evicted.remove(&client_id);
    }

    /// Stamps a client's liveness clock (milliseconds on whatever
    /// monotone clock the shell uses). Touching revives an evicted
    /// client.
    pub fn touch(&mut self, client_id: u32, now_ms: u64) {
        if client_id < self.expected {
            self.last_seen_ms.insert(client_id, now_ms);
        }
    }

    /// Evicts every unfinished client whose last touch (or the
    /// drill's start, for clients that never arrived) is at least
    /// `deadline_ms` behind `now_ms`. Returns how many were newly
    /// evicted — the barrier then degrades to the survivors.
    pub fn evict_idle(&mut self, now_ms: u64, deadline_ms: u64) -> u32 {
        let mut newly = 0;
        for id in 0..self.expected {
            if self.finished.contains_key(&id) || self.evicted.contains(&id) {
                continue;
            }
            let last = self.last_seen_ms.get(&id).copied().unwrap_or(0);
            if now_ms.saturating_sub(last) >= deadline_ms {
                self.evicted.insert(id);
                newly += 1;
            }
        }
        newly
    }

    /// The barrier: the frontier below which every *live* expected
    /// client has sent everything. `None` until all live clients said
    /// hello (and `None` when eviction has emptied the barrier — the
    /// caller's `all_finished` check takes over).
    pub fn ready_below(&self) -> Option<SimTime> {
        let mut min: Option<SimTime> = None;
        for id in 0..self.expected {
            if self.evicted.contains(&id) {
                continue;
            }
            let m = self.marks.get(&id)?;
            min = Some(min.map_or(*m, |cur| cur.min(*m)));
        }
        min
    }

    /// Whether every expected client finished or was evicted.
    pub fn all_finished(&self) -> bool {
        (0..self.expected).all(|id| self.finished.contains_key(&id) || self.evicted.contains(&id))
    }

    /// Sum of the clients' reported datagram counts.
    pub fn total_sent(&self) -> u64 {
        self.finished.values().sum()
    }

    /// Clients currently evicted (stalled/vanished and not revived).
    pub fn evicted_count(&self) -> u64 {
        self.evicted.len() as u64
    }

    /// Protocol violations seen so far.
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors
    }
}

/// The crash-resume sidecar `serve` checkpoints after each sealed
/// merge: how many records the archive durably holds, the sealed
/// merge frontier, and the receive-side accounting accumulated by
/// this and every previous incarnation. On `--resume` the archive is
/// truncated to exactly `archived` records
/// ([`crate::archive::ArchiveWriter::resume`]), shards restart with
/// their frontier at `merged_below`, and the books continue from
/// `stats` — re-received datagrams land in `surplus`, never in the
/// archive twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceResume {
    /// Records durably in the archive at checkpoint time.
    pub archived: u64,
    /// The sealed merge frontier (milliseconds of sim time).
    pub merged_below_ms: u64,
    /// Receive-side accounting at checkpoint time (`sent`, `lost` and
    /// `surplus` stay 0 until final reconciliation).
    pub stats: IngestStats,
}

impl ServiceResume {
    /// Renders the stable sidecar format.
    pub fn render(&self) -> String {
        format!(
            "traced-resume v1\narchived {}\nmerged_below_ms {}\n{}",
            self.archived,
            self.merged_below_ms,
            self.stats.render()
        )
    }

    /// Parses [`ServiceResume::render`] output. `None` on mismatch.
    pub fn parse(text: &str) -> Option<ServiceResume> {
        let mut lines = text.lines();
        if lines.next()? != "traced-resume v1" {
            return None;
        }
        let archived = lines.next()?.strip_prefix("archived ")?.parse().ok()?;
        let merged_below_ms = lines
            .next()?
            .strip_prefix("merged_below_ms ")?
            .parse()
            .ok()?;
        let rest: String = lines.map(|l| format!("{l}\n")).collect();
        Some(ServiceResume {
            archived,
            merged_below_ms,
            stats: IngestStats::parse(&rest)?,
        })
    }
}

/// Writes the resume sidecar atomically into `archive_dir`.
///
/// # Errors
///
/// Filesystem I/O failure.
pub fn write_service_resume(archive_dir: &Path, resume: &ServiceResume) -> io::Result<()> {
    atomic_write(&archive_dir.join(INGEST_RESUME), resume.render().as_bytes())
}

/// Reads the resume sidecar; `Ok(None)` when no checkpoint exists (a
/// crash before the first merge resumes from an empty archive).
///
/// # Errors
///
/// Filesystem I/O failure other than the file not existing.
pub fn read_service_resume(archive_dir: &Path) -> io::Result<Option<ServiceResume>> {
    match std::fs::read_to_string(archive_dir.join(INGEST_RESUME)) {
        Ok(text) => Ok(ServiceResume::parse(&text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Merges per-shard `(time, addr)`-sorted batches into one sorted
/// window batch.
pub fn merge_sorted(batches: Vec<Vec<PeerReport>>) -> Vec<PeerReport> {
    let mut merged: Vec<PeerReport> = batches.into_iter().flatten().collect();
    // Identities are unique post-dedup, so the sort is a total order
    // and unstable sorting is deterministic.
    merged.sort_unstable_by_key(|r| (r.time, r.addr.as_u32()));
    merged
}

/// The single-threaded reference composition of the service: shards,
/// registry, and merge sequencing behind one `handle` entry point.
///
/// The `magellan-traced` shell distributes the same pieces across
/// threads (one shard per worker, FIFO queues, a coordinator); this
/// in-process core is the deterministic reference the integration
/// tests compare that shell against, and the unit-test surface for
/// the protocol itself.
#[derive(Debug)]
pub struct ServiceCore {
    shards: Vec<Shard>,
    registry: ClientRegistry,
    window_end: SimTime,
    merged_below: SimTime,
    merges: u64,
}

impl ServiceCore {
    /// A service over `shards` shards admitting reports with
    /// `time < window_end`, each shard buffering at most
    /// `pending_cap` admitted reports, expecting `clients` clients.
    pub fn new(window_end: SimTime, shards: usize, pending_cap: usize, clients: u32) -> Self {
        let shards = shards.max(1);
        let shards = (0..shards)
            .map(|_| Shard::new(window_end, pending_cap))
            .collect(); // lint:allow(H2): construction — once per process, not per datagram
        ServiceCore {
            shards,
            registry: ClientRegistry::new(clients),
            window_end,
            merged_below: SimTime::ORIGIN,
            merges: 0,
        }
    }

    /// Handles one client message: the reply to send back (reports
    /// only) and the window batch this message sealed, if any, in
    /// archive order.
    pub fn handle(&mut self, msg: &ClientMsg) -> (Option<ReplyMsg>, Option<Vec<PeerReport>>) {
        match msg {
            ClientMsg::Hello { client_id, clients } => {
                self.registry.hello(*client_id, *clients);
                (None, None)
            }
            ClientMsg::Report { seq, payload } => {
                let status = self.ingest_payload(payload);
                (Some(ReplyMsg { seq: *seq, status }), None)
            }
            ClientMsg::WindowMark { client_id, up_to } => {
                self.registry.mark(*client_id, *up_to);
                (None, self.try_merge())
            }
            ClientMsg::Finish { client_id, sent } => {
                self.registry.finish(*client_id, *sent);
                (None, None)
            }
        }
    }

    /// Routes one report payload to its shard and ingests it.
    pub fn ingest_payload(&mut self, payload: &[u8]) -> StatusCode {
        // A payload too short to carry an address is malformed
        // wherever it lands; charge it to shard 0.
        let shard = peek_report_addr(payload)
            .map(|addr| shard_of(addr, self.shards.len()))
            .unwrap_or(0);
        self.shards[shard].ingest_wire(payload)
    }

    fn try_merge(&mut self) -> Option<Vec<PeerReport>> {
        let ready = self.registry.ready_below()?;
        if ready <= self.merged_below {
            return None;
        }
        let batches = self
            .shards
            .iter_mut()
            .map(|s| s.drain_below(ready))
            .collect();
        self.merged_below = ready;
        self.merges += 1;
        Some(merge_sorted(batches))
    }

    /// Whether every expected client finished.
    pub fn all_finished(&self) -> bool {
        self.registry.all_finished()
    }

    /// Seals everything still pending (the final merge after all
    /// clients finish) and returns the batch plus the reconciled
    /// accounting. The service is done after this.
    pub fn finalize(&mut self) -> (Vec<PeerReport>, IngestStats) {
        let end = self.window_end;
        let batches = self.shards.iter_mut().map(|s| s.drain_below(end)).collect();
        let final_batch = merge_sorted(batches);
        if !final_batch.is_empty() {
            self.merges += 1;
        }
        self.merged_below = end;

        let mut totals = ShardStats::default();
        for s in &self.shards {
            totals.absorb(&s.stats());
        }
        let sent = self.registry.total_sent();
        let mut stats = IngestStats {
            clients: self.registry.expected,
            sent,
            admitted: totals.admitted,
            deduped: totals.deduped,
            shed_busy: totals.shed_busy,
            rejected: totals.rejected,
            malformed: totals.malformed,
            late: totals.late,
            unavailable: totals.unavailable,
            rate_limited: 0,
            lost: 0,
            surplus: 0,
            evicted: self.registry.evicted_count(),
            merges: self.merges,
            protocol_errors: self.registry.protocol_errors(),
        };
        stats.lost = sent.saturating_sub(stats.received());
        stats.surplus = stats.received().saturating_sub(sent);
        (final_batch, stats)
    }

    /// Merge windows sealed so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total reports buffered across all shards — overload
    /// observability for the shell.
    pub fn pending_len(&self) -> usize {
        self.shards.iter().map(Shard::pending_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMap;
    use crate::wire;
    use magellan_netsim::{PeerAddr, SimDuration};
    use magellan_workload::ChannelId;

    fn report(ip: u32, minute: u64) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(minute),
            addr: PeerAddr::from_u32(ip),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 400.0,
            send_throughput_kbps: 50.0,
            partners: vec![],
        }
    }

    fn at_min(m: u64) -> SimTime {
        SimTime::ORIGIN + SimDuration::from_mins(m)
    }

    fn send(core: &mut ServiceCore, seq: u64, r: &PeerReport) -> StatusCode {
        let msg = ClientMsg::Report {
            seq,
            payload: wire::encode(r),
        };
        let (reply, batch) = core.handle(&msg);
        assert!(batch.is_none(), "a report sealed a window");
        let reply = reply.expect("reports are always answered");
        assert_eq!(reply.seq, seq);
        reply.status
    }

    fn mark(core: &mut ServiceCore, client: u32, minute: u64) -> Option<Vec<PeerReport>> {
        let (reply, batch) = core.handle(&ClientMsg::WindowMark {
            client_id: client,
            up_to: at_min(minute),
        });
        assert!(reply.is_none());
        batch
    }

    #[test]
    fn windows_seal_only_behind_every_clients_mark() {
        let mut core = ServiceCore::new(SimTime::at(1, 0, 0), 4, 1024, 2);
        core.handle(&ClientMsg::Hello {
            client_id: 0,
            clients: 2,
        });
        core.handle(&ClientMsg::Hello {
            client_id: 1,
            clients: 2,
        });
        assert_eq!(send(&mut core, 1, &report(1, 5)), StatusCode::Ack);
        assert_eq!(send(&mut core, 2, &report(2, 8)), StatusCode::Ack);
        // Client 0 marks 10 — client 1 hasn't, nothing seals.
        assert!(mark(&mut core, 0, 10).is_none());
        // Client 1 marks 20 — barrier is min(10, 20) = 10.
        let batch = mark(&mut core, 1, 20).expect("window sealed");
        let addrs: Vec<u32> = batch.iter().map(|r| r.addr.as_u32()).collect();
        assert_eq!(addrs, vec![1, 2]);
        assert_eq!(core.merges(), 1);
        // Client 0 catches up to 20: the next window seals.
        assert_eq!(send(&mut core, 3, &report(3, 15)), StatusCode::Ack);
        let batch = mark(&mut core, 0, 20).expect("second window sealed");
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn merged_batches_are_globally_sorted_across_shards() {
        let mut core = ServiceCore::new(SimTime::at(1, 0, 0), 8, 1024, 1);
        core.handle(&ClientMsg::Hello {
            client_id: 0,
            clients: 1,
        });
        // Interleave timestamps so shards hold out-of-order slices.
        for (seq, ip) in (0u32..64).enumerate() {
            let minute = u64::from(63 - ip) % 17;
            assert_eq!(
                send(&mut core, seq as u64, &report(ip + 1, minute)),
                StatusCode::Ack
            );
        }
        let batch = mark(&mut core, 0, 30).expect("window sealed");
        assert_eq!(batch.len(), 64);
        let keys: Vec<(u64, u32)> = batch
            .iter()
            .map(|r| (r.time.as_millis(), r.addr.as_u32()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "merge not (time, addr)-sorted");
    }

    #[test]
    fn finalize_reconciles_lost_and_balances() {
        let mut core = ServiceCore::new(SimTime::at(1, 0, 0), 2, 1024, 1);
        core.handle(&ClientMsg::Hello {
            client_id: 0,
            clients: 1,
        });
        assert_eq!(send(&mut core, 0, &report(1, 5)), StatusCode::Ack);
        assert_eq!(send(&mut core, 1, &report(1, 5)), StatusCode::AckDuplicate);
        let (_, none) = core.handle(&ClientMsg::Report {
            seq: 2,
            payload: bytes::Bytes::from_static(&[9, 9]),
        });
        assert!(none.is_none());
        // The client claims 5 datagrams sent; the service saw 3 —
        // two were lost in flight.
        core.handle(&ClientMsg::Finish {
            client_id: 0,
            sent: 5,
        });
        assert!(core.all_finished());
        let (batch, stats) = core.finalize();
        assert_eq!(batch.len(), 1);
        assert_eq!(
            (stats.admitted, stats.deduped, stats.malformed, stats.lost),
            (1, 1, 1, 2)
        );
        assert!(stats.balanced(), "{stats:?}");
        assert_eq!(stats.received(), 3);
    }

    #[test]
    fn protocol_errors_are_counted_not_fatal() {
        let mut core = ServiceCore::new(SimTime::at(1, 0, 0), 1, 16, 2);
        core.handle(&ClientMsg::Hello {
            client_id: 0,
            clients: 3,
        }); // wrong count
        core.handle(&ClientMsg::Hello {
            client_id: 7,
            clients: 2,
        }); // bad id
        core.handle(&ClientMsg::WindowMark {
            client_id: 9,
            up_to: at_min(10),
        });
        core.handle(&ClientMsg::Finish {
            client_id: 0,
            sent: 0,
        });
        core.handle(&ClientMsg::Finish {
            client_id: 1,
            sent: 0,
        });
        let (_, stats) = core.finalize();
        assert!(stats.protocol_errors >= 3, "{stats:?}");
        assert!(stats.balanced());
    }

    #[test]
    fn sidecar_round_trips_and_survives_atomic_write() {
        let stats = IngestStats {
            clients: 3,
            sent: 1000,
            admitted: 890,
            deduped: 40,
            shed_busy: 30,
            rejected: 5,
            malformed: 4,
            late: 1,
            unavailable: 0,
            rate_limited: 10,
            lost: 20,
            surplus: 0,
            evicted: 1,
            merges: 12,
            protocol_errors: 0,
        };
        assert!(stats.balanced());
        assert_eq!(IngestStats::parse(&stats.render()), Some(stats));
        assert_eq!(IngestStats::parse("garbage"), None);
        assert_eq!(IngestStats::parse("ingest v1\nclients x\n"), None);

        let dir =
            std::env::temp_dir().join(format!("magellan-ingest-sidecar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_ingest_stats(&dir, &stats).unwrap();
        assert_eq!(read_ingest_stats(&dir).unwrap(), Some(stats));
        std::fs::remove_dir_all(&dir).unwrap();
        let missing = std::env::temp_dir().join("magellan-ingest-sidecar-none");
        assert_eq!(read_ingest_stats(&missing).unwrap(), None);
    }

    /// A v1 sidecar (written before the hostile-transport columns
    /// existed) still parses, with the new columns reading 0.
    #[test]
    fn v1_sidecar_still_parses_with_zeroed_new_columns() {
        let v1 = "ingest v1\nclients 2\nsent 100\nadmitted 90\ndeduped 5\nshed_busy 3\n\
                  rejected 0\nmalformed 0\nlate 0\nunavailable 0\nlost 2\nmerges 4\n\
                  protocol_errors 0\n";
        let stats = IngestStats::parse(v1).expect("v1 sidecar must parse");
        assert_eq!(
            (stats.rate_limited, stats.surplus, stats.evicted),
            (0, 0, 0)
        );
        assert!(stats.balanced());
    }

    #[test]
    fn token_bucket_throttles_and_refills_deterministically() {
        let mut tb = TokenBucket::new(2, 3); // 2/s, burst 3, starts full
        assert!(tb.try_admit(0));
        assert!(tb.try_admit(0));
        assert!(tb.try_admit(0));
        assert!(!tb.try_admit(0), "burst exhausted");
        assert!(!tb.try_admit(400), "0.8 tokens refilled, still short");
        assert!(tb.try_admit(500), "1 full token at +500ms");
        assert!(!tb.try_admit(500));
        // A long quiet period banks at most `burst` tokens.
        assert!(tb.try_admit(1_000_000));
        assert!(tb.try_admit(1_000_000));
        assert!(tb.try_admit(1_000_000));
        assert!(!tb.try_admit(1_000_000));
        // Rewound clocks refill nothing and never panic.
        assert!(!tb.try_admit(10));
        // rate 0 disables limiting entirely.
        let mut open = TokenBucket::new(0, 1);
        for _ in 0..10_000 {
            assert!(open.try_admit(0));
        }
    }

    /// The barrier survives a vanished client: eviction at the
    /// deadline degrades `ready_below` to the survivors, a touched
    /// client is revived, and `all_finished` counts evictees.
    #[test]
    fn eviction_unwedges_the_barrier_and_touch_revives() {
        let mut reg = ClientRegistry::new(3);
        reg.hello(0, 3);
        reg.hello(1, 3);
        reg.touch(0, 1000);
        reg.touch(1, 1000);
        reg.mark(0, at_min(30));
        reg.mark(1, at_min(20));
        // Client 2 never arrived: the barrier is wedged.
        assert_eq!(reg.ready_below(), None);
        // Deadline passes for client 2 only (clients 0/1 touched at
        // 1000, client 2 implicitly at 0).
        assert_eq!(reg.evict_idle(1500, 600), 1);
        assert_eq!(reg.evicted_count(), 1);
        assert_eq!(reg.ready_below(), Some(at_min(20)), "barrier degraded");
        // Client 1 goes quiet too.
        assert_eq!(reg.evict_idle(5000, 600), 2);
        assert_eq!(reg.ready_below(), None, "all live clients gone");
        assert!(reg.all_finished(), "evictees complete the roster");
        // A late mark revives client 1: barrier re-forms around it.
        reg.mark(1, at_min(25));
        assert_eq!(reg.evicted_count(), 2);
        assert_eq!(reg.ready_below(), Some(at_min(25)));
        assert!(!reg.all_finished());
        reg.finish(1, 10);
        assert!(reg.all_finished());
        assert_eq!(reg.evicted_count(), 2, "clients 0 and 2 stay evicted");
        assert_eq!(reg.total_sent(), 10);
    }

    #[test]
    fn resume_sidecar_round_trips() {
        let resume = ServiceResume {
            archived: 12345,
            merged_below_ms: 86_400_000,
            stats: IngestStats {
                clients: 2,
                admitted: 12345,
                deduped: 7,
                shed_busy: 3,
                merges: 9,
                ..IngestStats::default()
            },
        };
        assert_eq!(ServiceResume::parse(&resume.render()), Some(resume));
        assert_eq!(ServiceResume::parse("garbage"), None);
        assert_eq!(ServiceResume::parse("traced-resume v1\narchived x\n"), None);

        let dir =
            std::env::temp_dir().join(format!("magellan-ingest-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_service_resume(&dir, &resume).unwrap();
        assert_eq!(read_service_resume(&dir).unwrap(), Some(resume));
        std::fs::remove_dir_all(&dir).unwrap();
        let missing = std::env::temp_dir().join("magellan-ingest-resume-none");
        assert_eq!(read_service_resume(&missing).unwrap(), None);
    }

    #[test]
    fn marks_never_regress_and_barrier_is_min() {
        let mut reg = ClientRegistry::new(2);
        assert_eq!(reg.ready_below(), None);
        reg.hello(0, 2);
        reg.hello(1, 2);
        assert_eq!(reg.ready_below(), Some(SimTime::ORIGIN));
        reg.mark(0, at_min(30));
        reg.mark(1, at_min(10));
        assert_eq!(reg.ready_below(), Some(at_min(10)));
        reg.mark(1, at_min(5)); // regression ignored
        assert_eq!(reg.ready_below(), Some(at_min(10)));
        assert!(!reg.all_finished());
        reg.finish(0, 100);
        reg.finish(1, 200);
        assert!(reg.all_finished());
        assert_eq!(reg.total_sent(), 300);
    }
}
