//! JSON-lines persistence for traces.
//!
//! One report per line, stable field order. Both the writer and the
//! parser are hand-rolled: the approved dependency set includes
//! `serde` (used for the typed schema) but not `serde_json`, and the
//! schema is small enough that a direct implementation is simpler
//! than pulling a general-purpose format crate.

use crate::buffer::BufferMap;
use crate::report::{PartnerRecord, PeerReport};
use magellan_netsim::{PeerAddr, SimTime};
use magellan_workload::ChannelId;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors from parsing a JSON-lines record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for JsonError {}

/// Serializes a report to one JSON line (no trailing newline).
pub fn to_json_line(r: &PeerReport) -> String {
    let mut s = String::with_capacity(160 + r.partners.len() * 64);
    let _ = write!(
        s,
        "{{\"time\":{},\"addr\":{},\"channel\":{},\"bm_start\":{},\"bm_len\":{},\"bm_bits\":\"",
        r.time.as_millis(),
        r.addr.as_u32(),
        r.channel.0,
        r.buffer_map.start(),
        r.buffer_map.len(),
    );
    for b in r.buffer_map.raw_bits() {
        let _ = write!(s, "{b:02x}");
    }
    let _ = write!(
        s,
        "\",\"down\":{},\"up\":{},\"recv\":{},\"send\":{},\"partners\":[",
        fmt_f64(r.download_capacity_kbps),
        fmt_f64(r.upload_capacity_kbps),
        fmt_f64(r.recv_throughput_kbps),
        fmt_f64(r.send_throughput_kbps),
    );
    for (i, p) in r.partners.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"addr\":{},\"tcp\":{},\"udp\":{},\"sent\":{},\"recv\":{}}}",
            p.addr.as_u32(),
            p.tcp_port,
            p.udp_port,
            p.segments_sent,
            p.segments_received
        );
    }
    s.push_str("]}");
    s
}

/// `f64` formatting that always reparses to the same value and never
/// produces `NaN`/`inf` tokens (reports are validated upstream).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        // 17 significant digits round-trips every f64.
        format!("{v:.17e}")
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser, specialized to the report schema's needs:
// objects, arrays, strings (hex only — no escapes), and numbers.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", c as char)) // lint:allow(H2): parse-error path — allocates the diagnostic once, never per record
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError {
                        offset: start,
                        message: "invalid utf-8 in string".into(),
                    })?
                    .to_owned();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return self.err("escape sequences are not used by this schema");
            }
            self.pos += 1;
        }
        self.err("unterminated string")
    }

    fn parse_number(&mut self) -> Result<f64, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return self.err("expected a number");
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or(JsonError {
                offset: start,
                message: "malformed number".into(),
            })
    }

    /// Parses `"key": value` pairs of an object, calling `on_field`.
    fn parse_object(
        &mut self,
        mut on_field: impl FnMut(&mut Self, &str) -> Result<(), JsonError>,
    ) -> Result<(), JsonError> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            on_field(self, &key)?;
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

fn hex_to_bytes(s: &str, offset: usize) -> Result<Vec<u8>, JsonError> {
    if s.len() % 2 != 0 {
        return Err(JsonError {
            offset,
            message: "odd-length hex bitmap".into(),
        });
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16).map_err(|_| JsonError {
                offset,
                message: "invalid hex in bitmap".into(),
            })
        })
        .collect()
}

/// Parses one JSON line back into a report.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or missing fields.
pub fn from_json_line(line: &str) -> Result<PeerReport, JsonError> {
    let mut p = Parser::new(line);
    let mut time = None;
    let mut addr = None;
    let mut channel = None;
    let mut bm_start = None;
    let mut bm_len = None;
    let mut bm_bits: Option<Vec<u8>> = None;
    let mut down = None;
    let mut up = None;
    let mut recv = None;
    let mut send = None;
    let mut partners: Vec<PartnerRecord> = Vec::new();

    p.parse_object(|p, key| {
        match key {
            "time" => time = Some(p.parse_number()? as u64),
            "addr" => addr = Some(p.parse_number()? as u32),
            "channel" => channel = Some(p.parse_number()? as u16),
            "bm_start" => bm_start = Some(p.parse_number()? as u64),
            "bm_len" => bm_len = Some(p.parse_number()? as u16),
            "bm_bits" => {
                let off = p.pos;
                let hex = p.parse_string()?;
                bm_bits = Some(hex_to_bytes(&hex, off)?);
            }
            "down" => down = Some(p.parse_number()?),
            "up" => up = Some(p.parse_number()?),
            "recv" => recv = Some(p.parse_number()?),
            "send" => send = Some(p.parse_number()?),
            "partners" => {
                p.expect(b'[')?;
                if p.peek() == Some(b']') {
                    p.pos += 1;
                } else {
                    loop {
                        let mut rec = PartnerRecord {
                            addr: PeerAddr::from_u32(0),
                            tcp_port: 0,
                            udp_port: 0,
                            segments_sent: 0,
                            segments_received: 0,
                        };
                        p.parse_object(|p, key| {
                            match key {
                                "addr" => rec.addr = PeerAddr::from_u32(p.parse_number()? as u32),
                                "tcp" => rec.tcp_port = p.parse_number()? as u16,
                                "udp" => rec.udp_port = p.parse_number()? as u16,
                                "sent" => rec.segments_sent = p.parse_number()? as u64,
                                "recv" => rec.segments_received = p.parse_number()? as u64,
                                other => {
                                    return Err(JsonError {
                                        offset: p.pos,
                                        message: format!("unknown partner field '{other}'"),
                                    })
                                }
                            }
                            Ok(())
                        })?;
                        partners.push(rec);
                        match p.peek() {
                            Some(b',') => p.pos += 1,
                            Some(b']') => {
                                p.pos += 1;
                                break;
                            }
                            _ => return p.err("expected ',' or ']'"),
                        }
                    }
                }
            }
            other => {
                return Err(JsonError {
                    offset: p.pos,
                    message: format!("unknown field '{other}'"),
                })
            }
        }
        Ok(())
    })?;

    let missing = |what: &str| JsonError {
        offset: 0,
        message: format!("missing field '{what}'"),
    };
    let bm_len = bm_len.ok_or_else(|| missing("bm_len"))?;
    let bits = bm_bits.ok_or_else(|| missing("bm_bits"))?;
    if bits.len() < (bm_len as usize).div_ceil(8) {
        return Err(JsonError {
            offset: 0,
            message: "bitmap shorter than bm_len requires".into(),
        });
    }
    Ok(PeerReport {
        time: SimTime::from_millis(time.ok_or_else(|| missing("time"))?),
        addr: PeerAddr::from_u32(addr.ok_or_else(|| missing("addr"))?),
        channel: ChannelId(channel.ok_or_else(|| missing("channel"))?),
        buffer_map: BufferMap::from_raw(bm_start.ok_or_else(|| missing("bm_start"))?, bm_len, bits),
        download_capacity_kbps: down.ok_or_else(|| missing("down"))?,
        upload_capacity_kbps: up.ok_or_else(|| missing("up"))?,
        recv_throughput_kbps: recv.ok_or_else(|| missing("recv"))?,
        send_throughput_kbps: send.ok_or_else(|| missing("send"))?,
        partners,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PeerReport {
        let mut bm = BufferMap::new(500, 24);
        bm.set(501);
        bm.set(523);
        PeerReport {
            time: SimTime::at(2, 13, 40),
            addr: PeerAddr::from_u32(0x0B0A0903),
            channel: ChannelId(3),
            buffer_map: bm,
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.7519283,
            recv_throughput_kbps: 399.125,
            send_throughput_kbps: 0.0,
            partners: vec![PartnerRecord {
                addr: PeerAddr::from_u32(0x0C010101),
                tcp_port: 8080,
                udp_port: 8081,
                segments_sent: 42,
                segments_received: 17,
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let r = sample();
        let line = to_json_line(&r);
        let back = from_json_line(&line).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn roundtrip_no_partners() {
        let mut r = sample();
        r.partners.clear();
        assert_eq!(from_json_line(&to_json_line(&r)).unwrap(), r);
    }

    #[test]
    fn fractional_capacities_roundtrip_exactly() {
        let mut r = sample();
        r.download_capacity_kbps = 1_234.567_890_123_456;
        r.recv_throughput_kbps = 1.0 / 3.0;
        let back = from_json_line(&to_json_line(&r)).unwrap();
        assert_eq!(back.download_capacity_kbps, r.download_capacity_kbps);
        assert_eq!(back.recv_throughput_kbps, r.recv_throughput_kbps);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let line = to_json_line(&sample())
            .replace(":", " : ")
            .replace(",", " ,  ");
        assert_eq!(from_json_line(&line).unwrap(), sample());
    }

    #[test]
    fn missing_field_is_reported() {
        let err = from_json_line(r#"{"time":1}"#).unwrap_err();
        assert!(err.message.contains("missing field"), "{err}");
    }

    #[test]
    fn unknown_field_is_rejected() {
        let err = from_json_line(r#"{"bogus":1}"#).unwrap_err();
        assert!(err.message.contains("unknown field"), "{err}");
    }

    #[test]
    fn truncated_line_is_an_error() {
        let line = to_json_line(&sample());
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(from_json_line(&line[..cut]).is_err(), "cut at {cut} parsed");
        }
    }

    #[test]
    fn bad_hex_is_rejected() {
        let line = to_json_line(&sample()).replace("bm_bits\":\"", "bm_bits\":\"zz");
        assert!(from_json_line(&line).is_err());
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for junk in ["", "{", "[]", "{\"time\":}", "{\"time\":1,}", "nonsense"] {
            assert!(from_json_line(junk).is_err(), "{junk:?} parsed");
        }
    }
}
