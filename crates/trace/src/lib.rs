//! # magellan-trace
//!
//! The measurement substrate of the Magellan reproduction — a faithful
//! implementation of the paper's §3.2:
//!
//! * [`report`] — the peer report schema: IP address, channel, buffer
//!   map, total capacities, instantaneous aggregate send/receive
//!   throughput, and the full partner list with per-partner segment
//!   counters; plus the reporting schedule (first report 20 minutes
//!   after join, then every 10 minutes).
//! * [`buffer`] — the sliding-window buffer map peers advertise.
//! * [`archive`] / [`segment`] — the durable segmented report archive:
//!   CRC-framed records in sealed-by-atomic-rename segments, plus the
//!   corruption-tolerant streaming reader and its [`RecoveryReport`].
//! * [`checkpoint`] — the self-validating checkpoint-file envelope
//!   behind crash-safe study resume.
//! * [`gateway`] — the report-delivery trait the uplink speaks, with
//!   the server's admission logic factored out for archive backends.
//! * [`atomicio`] — write-temp-then-atomic-rename artifact emission.
//! * [`wire`] — a compact binary encoding of reports (the real system
//!   shipped them as UDP datagrams).
//! * [`jsonl`] — JSON-lines persistence, hand-rolled to keep the
//!   dependency set to the approved crates.
//! * [`loss`] — lossy-collection injection (dropped/corrupted
//!   datagrams) for robustness testing.
//! * [`server`] — the standalone trace server collecting reports,
//!   with scheduled-downtime windows and `(peer, timestamp)`
//!   deduplication of retransmitted reports.
//! * [`codec`] — the networked service's message vocabulary: one
//!   message per UDP datagram, length-prefixed frames over TCP.
//! * [`shard`] — one shard of the sharded admission pipeline: an
//!   owned [`GatewayCore`] plus a bounded pending buffer with
//!   `Busy`/`Late` shedding and balanced per-shard accounting.
//! * [`service`] — the sans-I/O service brain: client registry,
//!   window-barrier merge sequencing, and the [`IngestStats`] sidecar
//!   (`magellan-traced` is the thin socket shell around it).
//! * [`uplink`] — the peer-side bounded store-and-forward queue that
//!   buffers reports across server downtime and retransmits them,
//!   and the networked [`NetUplink`] client shell with
//!   capped-exponential retry.
//! * [`store`] — the trace store with 10-minute bucketing and range
//!   queries.
//! * [`snapshot`] — reconstruction of "continuous-time snapshots of
//!   P2P streaming topologies": the stable-peer set, the known-IP
//!   universe, and the directed partner multigraph at any instant.
//! * [`stats`] — trace volume accounting (the "120 GB" arithmetic).

//!
//! ## Example
//!
//! ```
//! use magellan_trace::{jsonl, wire, BufferMap, PeerReport};
//! use magellan_netsim::{PeerAddr, SimTime};
//! use magellan_workload::ChannelId;
//!
//! let report = PeerReport {
//!     time: SimTime::at(0, 0, 20),
//!     addr: PeerAddr::from_u32(0x0B000001),
//!     channel: ChannelId::CCTV1,
//!     buffer_map: BufferMap::new(0, 16),
//!     download_capacity_kbps: 2000.0,
//!     upload_capacity_kbps: 512.0,
//!     recv_throughput_kbps: 395.0,
//!     send_throughput_kbps: 120.0,
//!     partners: vec![],
//! };
//! // Wire and JSON-lines codecs both round-trip.
//! let datagram = wire::encode(&report);
//! assert_eq!(wire::decode(&mut datagram.clone()).unwrap(), report);
//! let line = jsonl::to_json_line(&report);
//! assert_eq!(jsonl::from_json_line(&line).unwrap(), report);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod archive;
pub mod atomicio;
pub mod buffer;
pub mod checkpoint;
pub mod codec;
pub mod gateway;
pub mod jsonl;
pub mod loss;
pub mod report;
pub mod segment;
pub mod server;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod uplink;
pub mod wire;

pub use archive::{ArchiveConfig, ArchiveWriter, RecoveryReport};
pub use atomicio::atomic_write;
pub use buffer::BufferMap;
pub use codec::{ClientMsg, FrameReader, ReplyMsg};
pub use gateway::{GatewayCore, ReportGateway};
pub use report::{
    PartnerRecord, PeerReport, ACTIVE_SEGMENT_THRESHOLD, FIRST_REPORT_DELAY, REPORT_INTERVAL,
};
pub use server::{ServerStats, SubmitError, TraceServer};
pub use service::{ClientRegistry, IngestStats, ServiceCore, ServiceResume, TokenBucket};
pub use shard::{shard_of, Shard, ShardStats};
pub use snapshot::{Snapshot, SnapshotBuilder};
pub use stats::TraceStats;
pub use store::TraceStore;
pub use uplink::{NetBackoff, NetUplink, ReportUplink, UplinkStats};
pub use wire::StatusCode;
