//! The standalone trace server (paper §3.2).
//!
//! Peers fire UDP datagrams at a single collection endpoint; the
//! server validates and stores them. This implementation accepts
//! either decoded [`PeerReport`]s or raw datagrams (via
//! [`TraceServer::submit_wire`]), is safe to share across threads, and
//! counts what it rejects — datagram loss and corruption were facts of
//! life for the real deployment too.

use crate::report::PeerReport;
use crate::store::TraceStore;
use crate::wire;
use bytes::Buf;
use magellan_netsim::{FaultWindow, SimTime};
// lint:allow(P1): the server is the one real concurrent ingestion boundary — datagrams arrive from OS threads, and the protected store is only read after collection ends
use parking_lot::Mutex;
use std::error::Error;
use std::fmt;

/// Why a report was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubmitError {
    /// Report timestamp outside the collection window.
    OutOfWindow {
        /// The offending timestamp.
        time: SimTime,
    },
    /// A numeric field failed sanity checks.
    Implausible {
        /// Which check failed.
        what: &'static str,
    },
    /// The datagram could not be decoded.
    Malformed(wire::WireError),
    /// The server was down when the datagram arrived; the sender
    /// should buffer and retransmit after the outage.
    Unavailable {
        /// Arrival time of the rejected datagram.
        time: SimTime,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::OutOfWindow { time } => {
                write!(f, "report timestamp {time} outside collection window")
            }
            SubmitError::Implausible { what } => write!(f, "implausible report field: {what}"),
            SubmitError::Malformed(e) => write!(f, "malformed datagram: {e}"),
            SubmitError::Unavailable { time } => {
                write!(f, "trace server down at {time}")
            }
        }
    }
}

impl Error for SubmitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SubmitError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wire::WireError> for SubmitError {
    fn from(e: wire::WireError) -> Self {
        SubmitError::Malformed(e)
    }
}

/// Collection statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Reports accepted into the store.
    pub accepted: u64,
    /// Reports rejected by validation or decoding.
    pub rejected: u64,
    /// Datagrams bounced because the server was down.
    pub unavailable: u64,
    /// Retransmitted duplicates absorbed idempotently (counted, not
    /// stored; keyed by `(peer, timestamp)`).
    pub duplicates: u64,
}

/// The trace collection endpoint.
#[derive(Debug)]
pub struct TraceServer {
    window_end: SimTime,
    /// Scheduled downtime; datagrams arriving inside any window
    /// bounce with [`SubmitError::Unavailable`].
    downtime: Vec<FaultWindow>,
    /// Ingestion state. The vendored `parking_lot::Mutex` recovers
    /// from poisoning explicitly (`PoisonError::into_inner`), so a
    /// client thread that panics while holding the guard cannot wedge
    /// ingestion for every later submitter — the store mutates one
    /// whole report at a time, so the recovered state is at worst
    /// missing the panicking client's report, never torn.
    // lint:allow(P1): guards ingestion only; analysis drains the store into ordered structures after the lock is gone
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    store: TraceStore,
    stats: ServerStats,
}

/// Partner lists beyond this length are implausible (bootstrap hands
/// out at most 50; gossip adds a bounded number more).
const MAX_PARTNERS: usize = 256;

/// The collection-endpoint validation rules, shared by the in-memory
/// [`TraceServer`] and the durable archive gateway
/// ([`crate::gateway::GatewayCore`]).
pub(crate) fn validate_report(report: &PeerReport, window_end: SimTime) -> Result<(), SubmitError> {
    if report.time >= window_end {
        return Err(SubmitError::OutOfWindow { time: report.time });
    }
    if report.partners.len() > MAX_PARTNERS {
        return Err(SubmitError::Implausible {
            what: "partner list length",
        });
    }
    for (v, what) in [
        (report.download_capacity_kbps, "download capacity"),
        (report.upload_capacity_kbps, "upload capacity"),
        (report.recv_throughput_kbps, "recv throughput"),
        (report.send_throughput_kbps, "send throughput"),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(SubmitError::Implausible { what });
        }
    }
    if report.partners.iter().any(|p| p.addr == report.addr) {
        return Err(SubmitError::Implausible {
            what: "peer lists itself as partner",
        });
    }
    Ok(())
}

impl TraceServer {
    /// Creates a server accepting reports with `time < window_end`.
    pub fn new(window_end: SimTime) -> Self {
        Self::with_downtime(window_end, Vec::new())
    }

    /// Creates a server with scheduled downtime windows; datagrams
    /// arriving inside one bounce with [`SubmitError::Unavailable`]
    /// and are expected to be buffered and retransmitted by the
    /// sender (see [`crate::uplink::ReportUplink`]).
    pub fn with_downtime(window_end: SimTime, downtime: Vec<FaultWindow>) -> Self {
        TraceServer {
            window_end,
            downtime,
            // lint:allow(P1): constructor of the ingestion lock justified on the field above
            inner: Mutex::new(Inner {
                store: TraceStore::new(),
                stats: ServerStats::default(),
            }),
        }
    }

    /// Validates and stores one decoded report that arrives at its
    /// own timestamp (the common live path).
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] and leaves the store untouched when
    /// the server is down at the report's timestamp or the report
    /// fails validation. Rejections are counted either way.
    pub fn submit(&self, report: PeerReport) -> Result<(), SubmitError> {
        let now = report.time;
        self.submit_at(report, now)
    }

    /// Validates and stores one decoded report arriving at `now` —
    /// later than its timestamp for buffered retransmissions.
    /// Duplicate `(peer, timestamp)` submissions are absorbed
    /// idempotently: counted and dropped, `Ok`.
    ///
    /// # Errors
    ///
    /// As [`TraceServer::submit`], with downtime checked against
    /// `now` rather than the report's own timestamp.
    pub fn submit_at(&self, report: PeerReport, now: SimTime) -> Result<(), SubmitError> {
        if self.downtime.iter().any(|w| w.contains(now)) {
            self.inner.lock().stats.unavailable += 1;
            return Err(SubmitError::Unavailable { time: now });
        }
        let verdict = self.validate(&report);
        // lint:allow(L1): name-merged false cycle — `TraceStore::push` shares a `len` node with `TraceServer::len`; the store never calls back into the server, and `inner` is this crate's only lock class
        let mut inner = self.inner.lock();
        match verdict {
            Ok(()) => {
                if inner.store.contains(report.addr, report.time) {
                    inner.stats.duplicates += 1;
                } else {
                    inner.store.push(report);
                    inner.stats.accepted += 1;
                }
                Ok(())
            }
            Err(e) => {
                inner.stats.rejected += 1;
                Err(e)
            }
        }
    }

    /// Decodes a datagram and submits it.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Malformed`] on decode failure, else as
    /// [`TraceServer::submit`].
    pub fn submit_wire(&self, mut datagram: impl Buf) -> Result<(), SubmitError> {
        match wire::decode(&mut datagram) {
            Ok(report) => self.submit(report),
            Err(e) => {
                self.inner.lock().stats.rejected += 1;
                Err(e.into())
            }
        }
    }

    fn validate(&self, report: &PeerReport) -> Result<(), SubmitError> {
        validate_report(report, self.window_end)
    }

    /// Current collection statistics.
    pub fn stats(&self) -> ServerStats {
        self.inner.lock().stats
    }

    /// Number of stored reports so far.
    pub fn len(&self) -> usize {
        self.inner.lock().store.len()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the server, yielding the store.
    pub fn into_store(self) -> TraceStore {
        self.inner.into_inner().store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMap;
    use magellan_netsim::{PeerAddr, SimDuration};
    use magellan_workload::ChannelId;

    fn report(minute: u64) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(minute),
            addr: PeerAddr::from_u32(42),
            channel: ChannelId::CCTV4,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 380.0,
            send_throughput_kbps: 90.0,
            partners: vec![],
        }
    }

    fn server() -> TraceServer {
        TraceServer::new(SimTime::at(14, 0, 0))
    }

    #[test]
    fn accepts_valid_reports() {
        let s = server();
        s.submit(report(20)).unwrap();
        s.submit(report(30)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.stats(),
            ServerStats {
                accepted: 2,
                ..ServerStats::default()
            }
        );
        assert!(!s.is_empty());
    }

    #[test]
    fn downtime_bounces_datagrams_with_unavailable() {
        let down = FaultWindow::new(SimTime::at(0, 1, 0), SimTime::at(0, 2, 0));
        let s = TraceServer::with_downtime(SimTime::at(14, 0, 0), vec![down]);
        // 90 minutes in: inside the outage.
        assert!(matches!(
            s.submit(report(90)),
            Err(SubmitError::Unavailable { .. })
        ));
        assert_eq!(s.stats().unavailable, 1);
        assert!(s.is_empty());
        // Same report retransmitted after recovery is accepted even
        // though its own timestamp is inside the window.
        s.submit_at(report(90), SimTime::at(0, 2, 30)).unwrap();
        assert_eq!(s.stats().accepted, 1);
    }

    #[test]
    fn duplicates_are_absorbed_idempotently() {
        let s = server();
        s.submit(report(20)).unwrap();
        s.submit(report(20)).unwrap();
        s.submit(report(30)).unwrap();
        assert_eq!(s.len(), 2, "duplicate was stored");
        let st = s.stats();
        assert_eq!((st.accepted, st.duplicates), (2, 1));
    }

    #[test]
    fn rejects_out_of_window() {
        let s = server();
        let mut r = report(0);
        r.time = SimTime::at(20, 0, 0);
        assert!(matches!(s.submit(r), Err(SubmitError::OutOfWindow { .. })));
        assert_eq!(s.stats().rejected, 1);
        assert!(s.is_empty());
    }

    #[test]
    fn rejects_negative_capacity() {
        let s = server();
        let mut r = report(20);
        r.upload_capacity_kbps = -5.0;
        assert!(matches!(s.submit(r), Err(SubmitError::Implausible { .. })));
    }

    #[test]
    fn rejects_self_partner() {
        let s = server();
        let mut r = report(20);
        r.partners.push(crate::report::PartnerRecord {
            addr: r.addr,
            tcp_port: 1,
            udp_port: 2,
            segments_sent: 0,
            segments_received: 0,
        });
        assert!(matches!(s.submit(r), Err(SubmitError::Implausible { .. })));
    }

    #[test]
    fn wire_path_roundtrips() {
        let s = server();
        let datagram = crate::wire::encode(&report(25));
        s.submit_wire(datagram).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn wire_path_counts_garbage() {
        let s = server();
        let garbage: &[u8] = &[1, 2, 3];
        assert!(matches!(
            s.submit_wire(garbage),
            Err(SubmitError::Malformed(_))
        ));
        assert_eq!(s.stats().rejected, 1);
    }

    #[test]
    fn concurrent_submission_is_safe() {
        let s = std::sync::Arc::new(server());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let mut r = report(20 + (i % 100));
                    r.addr = PeerAddr::from_u32(t * 10_000 + i as u32);
                    s.submit(r).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 8 * 500);
        assert_eq!(s.stats().accepted, 4_000);
    }

    /// A client thread that panics while holding the ingestion lock
    /// must not wedge the server: the std mutex underneath is poisoned
    /// by the unwinding thread, and the parking_lot shim's explicit
    /// `PoisonError::into_inner` recovery keeps later submissions
    /// flowing.
    #[test]
    fn panicking_client_does_not_wedge_ingestion() {
        let s = std::sync::Arc::new(server());
        s.submit(report(10)).unwrap();
        let poisoner = s.clone();
        let crashed = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock();
            panic!("client thread dies mid-ingestion");
        })
        .join();
        assert!(crashed.is_err(), "the client thread really panicked");
        s.submit(report(20)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.stats().accepted, 2);
    }

    #[test]
    fn into_store_preserves_reports() {
        let s = server();
        s.submit(report(20)).unwrap();
        let store = s.into_store();
        assert_eq!(store.len(), 1);
    }
}
