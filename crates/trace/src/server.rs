//! The standalone trace server (paper §3.2).
//!
//! Peers fire UDP datagrams at a single collection endpoint; the
//! server validates and stores them. This implementation accepts
//! either decoded [`PeerReport`]s or raw datagrams (via
//! [`TraceServer::submit_wire`]) and counts what it rejects —
//! datagram loss and corruption were facts of life for the real
//! deployment too.
//!
//! The server itself is single-threaded by design: admission lives in
//! the sans-I/O [`crate::gateway::GatewayCore`] and concurrency is
//! provided *around* it by the sharded service layer
//! ([`crate::shard`], [`crate::service`]) — each shard owns its own
//! admission state, so no lock guards the ingest hot path.

use crate::gateway::GatewayCore;
use crate::report::PeerReport;
use crate::store::TraceStore;
use crate::wire;
use bytes::Buf;
use magellan_netsim::{FaultWindow, SimTime};
use std::error::Error;
use std::fmt;

/// Why a report was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubmitError {
    /// Report timestamp outside the collection window.
    OutOfWindow {
        /// The offending timestamp.
        time: SimTime,
    },
    /// A numeric field failed sanity checks.
    Implausible {
        /// Which check failed.
        what: &'static str,
    },
    /// The datagram could not be decoded.
    Malformed(wire::WireError),
    /// The server was down when the datagram arrived; the sender
    /// should buffer and retransmit after the outage.
    Unavailable {
        /// Arrival time of the rejected datagram.
        time: SimTime,
    },
    /// The ingest path was saturated when the datagram arrived — a
    /// shard queue or pending buffer was full. Transient: the sender
    /// should back off and retransmit (see
    /// [`crate::uplink::NetBackoff`]).
    Busy {
        /// Arrival time of the shed datagram.
        time: SimTime,
    },
    /// The report belongs to a collection window the service has
    /// already merged and sealed. Permanent for this report: the
    /// archive is append-ordered, so the service sheds stragglers
    /// rather than reordering history.
    Late {
        /// The sealed report timestamp.
        time: SimTime,
    },
    /// The sender exceeded its per-client token-bucket allowance.
    /// Transient: the sender should back off and retransmit — the
    /// bucket refills at a fixed rate (see
    /// [`crate::service::TokenBucket`]).
    RateLimited {
        /// Arrival time of the throttled datagram.
        time: SimTime,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::OutOfWindow { time } => {
                write!(f, "report timestamp {time} outside collection window")
            }
            SubmitError::Implausible { what } => write!(f, "implausible report field: {what}"),
            SubmitError::Malformed(e) => write!(f, "malformed datagram: {e}"),
            SubmitError::Unavailable { time } => {
                write!(f, "trace server down at {time}")
            }
            SubmitError::Busy { time } => {
                write!(f, "ingest saturated at {time}, retry with backoff")
            }
            SubmitError::Late { time } => {
                write!(
                    f,
                    "report timestamp {time} is behind the sealed merge frontier"
                )
            }
            SubmitError::RateLimited { time } => {
                write!(
                    f,
                    "sender over its rate allowance at {time}, retry with backoff"
                )
            }
        }
    }
}

impl Error for SubmitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SubmitError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wire::WireError> for SubmitError {
    fn from(e: wire::WireError) -> Self {
        SubmitError::Malformed(e)
    }
}

/// Collection statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Reports accepted into the store.
    pub accepted: u64,
    /// Reports rejected by validation or decoding.
    pub rejected: u64,
    /// Datagrams bounced because the server was down.
    pub unavailable: u64,
    /// Retransmitted duplicates absorbed idempotently (counted, not
    /// stored; keyed by `(peer, timestamp)`).
    pub duplicates: u64,
}

/// The trace collection endpoint: the [`GatewayCore`] admission rules
/// in front of an in-memory [`TraceStore`].
///
/// Mutation is `&mut self` — there is no interior locking. Concurrent
/// ingestion is the job of the sharded service layer
/// ([`crate::service::ServiceCore`], `magellan-traced`), which runs
/// one admission core per shard and merges at window boundaries.
#[derive(Debug)]
pub struct TraceServer {
    core: GatewayCore,
    store: TraceStore,
}

/// Partner lists beyond this length are implausible (bootstrap hands
/// out at most 50; gossip adds a bounded number more).
const MAX_PARTNERS: usize = 256;

/// The collection-endpoint validation rules, shared by the in-memory
/// [`TraceServer`] and the durable archive gateway
/// ([`crate::gateway::GatewayCore`]).
pub(crate) fn validate_report(report: &PeerReport, window_end: SimTime) -> Result<(), SubmitError> {
    if report.time >= window_end {
        return Err(SubmitError::OutOfWindow { time: report.time });
    }
    if report.partners.len() > MAX_PARTNERS {
        return Err(SubmitError::Implausible {
            what: "partner list length",
        });
    }
    for (v, what) in [
        (report.download_capacity_kbps, "download capacity"),
        (report.upload_capacity_kbps, "upload capacity"),
        (report.recv_throughput_kbps, "recv throughput"),
        (report.send_throughput_kbps, "send throughput"),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(SubmitError::Implausible { what });
        }
    }
    if report.partners.iter().any(|p| p.addr == report.addr) {
        return Err(SubmitError::Implausible {
            what: "peer lists itself as partner",
        });
    }
    Ok(())
}

impl TraceServer {
    /// Creates a server accepting reports with `time < window_end`.
    pub fn new(window_end: SimTime) -> Self {
        Self::with_downtime(window_end, Vec::new())
    }

    /// Creates a server with scheduled downtime windows; datagrams
    /// arriving inside one bounce with [`SubmitError::Unavailable`]
    /// and are expected to be buffered and retransmitted by the
    /// sender (see [`crate::uplink::ReportUplink`]).
    pub fn with_downtime(window_end: SimTime, downtime: Vec<FaultWindow>) -> Self {
        TraceServer {
            core: GatewayCore::new(window_end, downtime),
            store: TraceStore::new(),
        }
    }

    /// Validates and stores one decoded report that arrives at its
    /// own timestamp (the common live path).
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] and leaves the store untouched when
    /// the server is down at the report's timestamp or the report
    /// fails validation. Rejections are counted either way.
    pub fn submit(&mut self, report: PeerReport) -> Result<(), SubmitError> {
        let now = report.time;
        self.submit_at(report, now)
    }

    /// Validates and stores one decoded report arriving at `now` —
    /// later than its timestamp for buffered retransmissions.
    /// Duplicate `(peer, timestamp)` submissions are absorbed
    /// idempotently: counted and dropped, `Ok`.
    ///
    /// # Errors
    ///
    /// As [`TraceServer::submit`], with downtime checked against
    /// `now` rather than the report's own timestamp.
    pub fn submit_at(&mut self, report: PeerReport, now: SimTime) -> Result<(), SubmitError> {
        if self.core.admit(&report, now)? {
            self.store.push(report);
        }
        Ok(())
    }

    /// Decodes a datagram and submits it.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Malformed`] on decode failure, else as
    /// [`TraceServer::submit`].
    pub fn submit_wire(&mut self, mut datagram: impl Buf) -> Result<(), SubmitError> {
        match wire::decode(&mut datagram) {
            Ok(report) => self.submit(report),
            Err(e) => {
                self.core.note_rejected();
                Err(e.into())
            }
        }
    }

    /// Current collection statistics.
    pub fn stats(&self) -> ServerStats {
        self.core.stats()
    }

    /// Number of stored reports so far.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// Consumes the server, yielding the store.
    pub fn into_store(self) -> TraceStore {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMap;
    use magellan_netsim::{PeerAddr, SimDuration};
    use magellan_workload::ChannelId;

    fn report(minute: u64) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(minute),
            addr: PeerAddr::from_u32(42),
            channel: ChannelId::CCTV4,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 2000.0,
            upload_capacity_kbps: 512.0,
            recv_throughput_kbps: 380.0,
            send_throughput_kbps: 90.0,
            partners: vec![],
        }
    }

    fn server() -> TraceServer {
        TraceServer::new(SimTime::at(14, 0, 0))
    }

    #[test]
    fn accepts_valid_reports() {
        let mut s = server();
        s.submit(report(20)).unwrap();
        s.submit(report(30)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.stats(),
            ServerStats {
                accepted: 2,
                ..ServerStats::default()
            }
        );
        assert!(!s.is_empty());
    }

    #[test]
    fn downtime_bounces_datagrams_with_unavailable() {
        let down = FaultWindow::new(SimTime::at(0, 1, 0), SimTime::at(0, 2, 0));
        let mut s = TraceServer::with_downtime(SimTime::at(14, 0, 0), vec![down]);
        // 90 minutes in: inside the outage.
        assert!(matches!(
            s.submit(report(90)),
            Err(SubmitError::Unavailable { .. })
        ));
        assert_eq!(s.stats().unavailable, 1);
        assert!(s.is_empty());
        // Same report retransmitted after recovery is accepted even
        // though its own timestamp is inside the window.
        s.submit_at(report(90), SimTime::at(0, 2, 30)).unwrap();
        assert_eq!(s.stats().accepted, 1);
    }

    #[test]
    fn duplicates_are_absorbed_idempotently() {
        let mut s = server();
        s.submit(report(20)).unwrap();
        s.submit(report(20)).unwrap();
        s.submit(report(30)).unwrap();
        assert_eq!(s.len(), 2, "duplicate was stored");
        let st = s.stats();
        assert_eq!((st.accepted, st.duplicates), (2, 1));
    }

    #[test]
    fn rejects_out_of_window() {
        let mut s = server();
        let mut r = report(0);
        r.time = SimTime::at(20, 0, 0);
        assert!(matches!(s.submit(r), Err(SubmitError::OutOfWindow { .. })));
        assert_eq!(s.stats().rejected, 1);
        assert!(s.is_empty());
    }

    #[test]
    fn rejects_negative_capacity() {
        let mut s = server();
        let mut r = report(20);
        r.upload_capacity_kbps = -5.0;
        assert!(matches!(s.submit(r), Err(SubmitError::Implausible { .. })));
    }

    #[test]
    fn rejects_self_partner() {
        let mut s = server();
        let mut r = report(20);
        r.partners.push(crate::report::PartnerRecord {
            addr: r.addr,
            tcp_port: 1,
            udp_port: 2,
            segments_sent: 0,
            segments_received: 0,
        });
        assert!(matches!(s.submit(r), Err(SubmitError::Implausible { .. })));
    }

    #[test]
    fn wire_path_roundtrips() {
        let mut s = server();
        let datagram = crate::wire::encode(&report(25));
        s.submit_wire(datagram).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn wire_path_counts_garbage() {
        let mut s = server();
        let garbage: &[u8] = &[1, 2, 3];
        assert!(matches!(
            s.submit_wire(garbage),
            Err(SubmitError::Malformed(_))
        ));
        assert_eq!(s.stats().rejected, 1);
    }

    /// The old interior-Mutex server absorbed concurrent submissions
    /// behind a lock; the rewritten server pushes that job to the
    /// sharded service layer and stays single-threaded. This pins the
    /// equivalent property at this level: interleaving many clients
    /// through one `&mut` server preserves exact accounting.
    #[test]
    fn interleaved_clients_preserve_accounting() {
        let mut s = server();
        for t in 0..8u32 {
            for i in 0..500u32 {
                let mut r = report(20 + u64::from(i % 100));
                r.addr = PeerAddr::from_u32(t * 10_000 + i);
                s.submit(r).unwrap();
            }
        }
        assert_eq!(s.len(), 8 * 500);
        assert_eq!(s.stats().accepted, 4_000);
    }

    #[test]
    fn busy_and_late_display_are_informative() {
        let t = SimTime::at(0, 1, 0);
        assert!(SubmitError::Busy { time: t }.to_string().contains("retry"));
        assert!(SubmitError::Late { time: t }.to_string().contains("sealed"));
    }

    #[test]
    fn into_store_preserves_reports() {
        let mut s = server();
        s.submit(report(20)).unwrap();
        let store = s.into_store();
        assert_eq!(store.len(), 1);
    }
}
