//! The sliding-window buffer map.
//!
//! UUSee peers exchange blocks of the live stream inside a sliding
//! window and advertise which blocks they hold via periodic buffer-map
//! exchanges (§3.1). A [`BufferMap`] is that advertisement: a window
//! start sequence number plus a bitmap.

use serde::{Deserialize, Serialize};

/// A peer's buffer map: which segments of the sliding window it holds.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferMap {
    start: u64,
    len: u16,
    bits: Vec<u8>,
}

impl BufferMap {
    /// Creates an empty map whose window starts at `start` and spans
    /// `len` segments.
    pub fn new(start: u64, len: u16) -> Self {
        BufferMap {
            start,
            len,
            bits: vec![0; (len as usize).div_ceil(8)],
        }
    }

    /// First sequence number of the window.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Window length in segments.
    pub fn len(&self) -> u16 {
        self.len
    }

    /// Whether the window has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `seq` lies inside the window.
    pub fn in_window(&self, seq: u64) -> bool {
        seq >= self.start && seq < self.start + self.len as u64
    }

    /// Marks `seq` as held. Out-of-window sequence numbers are
    /// ignored (they arrive routinely around window advances).
    pub fn set(&mut self, seq: u64) {
        if !self.in_window(seq) {
            return;
        }
        let off = (seq - self.start) as usize;
        self.bits[off / 8] |= 1 << (off % 8);
    }

    /// Whether `seq` is held (false outside the window).
    pub fn has(&self, seq: u64) -> bool {
        if !self.in_window(seq) {
            return false;
        }
        let off = (seq - self.start) as usize;
        self.bits[off / 8] & (1 << (off % 8)) != 0
    }

    /// Slides the window forward so it starts at `new_start`,
    /// retaining the overlap. Does nothing when `new_start` is not
    /// ahead of the current start.
    pub fn advance(&mut self, new_start: u64) {
        if new_start <= self.start {
            return;
        }
        let mut next = BufferMap::new(new_start, self.len);
        let lo = new_start;
        let hi = self.start + self.len as u64;
        for seq in lo..hi {
            if self.has(seq) {
                next.set(seq);
            }
        }
        *self = next;
    }

    /// Number of held segments.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Fraction of the window held, in `[0, 1]`.
    pub fn fill_fraction(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.count() as f64 / self.len as f64
    }

    /// Length of the contiguous run of held segments at the start of
    /// the window — the playable prefix.
    pub fn contiguous_prefix(&self) -> u16 {
        let mut n = 0;
        while n < self.len && self.has(self.start + n as u64) {
            n += 1;
        }
        n
    }

    /// Sequence numbers held by `other` but missing here — the
    /// request candidates against one partner.
    pub fn missing_from(&self, other: &BufferMap) -> Vec<u64> {
        let lo = self.start.max(other.start);
        let hi = (self.start + self.len as u64).min(other.start + other.len as u64);
        (lo..hi).filter(|&s| other.has(s) && !self.has(s)).collect()
    }

    /// Raw bitmap bytes (for wire encoding).
    pub fn raw_bits(&self) -> &[u8] {
        &self.bits
    }

    /// Rebuilds a map from raw parts, as decoded off the wire.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is shorter than `len` requires.
    pub fn from_raw(start: u64, len: u16, bits: Vec<u8>) -> Self {
        assert!(
            bits.len() >= (len as usize).div_ceil(8),
            "bitmap too short for window length"
        );
        BufferMap { start, len, bits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_map_is_empty() {
        let m = BufferMap::new(100, 64);
        assert_eq!(m.count(), 0);
        assert_eq!(m.fill_fraction(), 0.0);
        assert_eq!(m.contiguous_prefix(), 0);
        assert!(!m.has(100));
    }

    #[test]
    fn set_and_query() {
        let mut m = BufferMap::new(10, 16);
        m.set(10);
        m.set(12);
        m.set(25);
        assert!(m.has(10));
        assert!(!m.has(11));
        assert!(m.has(12));
        assert!(m.has(25));
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn out_of_window_sets_are_ignored() {
        let mut m = BufferMap::new(10, 16);
        m.set(9);
        m.set(26);
        assert_eq!(m.count(), 0);
        assert!(!m.has(9));
        assert!(!m.has(26));
    }

    #[test]
    fn advance_retains_overlap() {
        let mut m = BufferMap::new(0, 8);
        for s in 0..8 {
            m.set(s);
        }
        m.advance(4);
        assert_eq!(m.start(), 4);
        assert_eq!(m.count(), 4);
        assert!(m.has(4) && m.has(7));
        assert!(!m.has(3)); // slid out
        assert!(!m.has(8)); // not yet received
    }

    #[test]
    fn advance_backwards_is_noop() {
        let mut m = BufferMap::new(10, 8);
        m.set(11);
        m.advance(5);
        assert_eq!(m.start(), 10);
        assert!(m.has(11));
    }

    #[test]
    fn contiguous_prefix_stops_at_gap() {
        let mut m = BufferMap::new(0, 10);
        m.set(0);
        m.set(1);
        m.set(3);
        assert_eq!(m.contiguous_prefix(), 2);
    }

    #[test]
    fn fill_fraction_full_window() {
        let mut m = BufferMap::new(0, 10);
        for s in 0..10 {
            m.set(s);
        }
        assert!((m.fill_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(m.contiguous_prefix(), 10);
    }

    #[test]
    fn missing_from_respects_overlap() {
        let mut a = BufferMap::new(0, 8);
        a.set(0);
        a.set(1);
        let mut b = BufferMap::new(4, 8); // window 4..12
        for s in 4..10 {
            b.set(s);
        }
        // Overlap is 4..8; a holds none of it.
        assert_eq!(a.missing_from(&b), vec![4, 5, 6, 7]);
        a.set(5);
        assert_eq!(a.missing_from(&b), vec![4, 6, 7]);
    }

    #[test]
    fn disjoint_windows_have_no_candidates() {
        let a = BufferMap::new(0, 4);
        let mut b = BufferMap::new(100, 4);
        b.set(101);
        assert!(a.missing_from(&b).is_empty());
    }

    #[test]
    fn raw_roundtrip() {
        let mut m = BufferMap::new(7, 20);
        m.set(9);
        m.set(26);
        let back = BufferMap::from_raw(m.start(), m.len(), m.raw_bits().to_vec());
        assert_eq!(m, back);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn from_raw_validates_length() {
        let _ = BufferMap::from_raw(0, 64, vec![0; 2]);
    }
}
