//! Crash-safe study runner.
//!
//! ```text
//! magellan study  --archive DIR [--seed N] [--scale F] [--days N]
//!                 [--sample-every-mins N] [--checkpoint-every-ticks N]
//!                 [--segment-bytes N] [--resume] [--kill-at-tick N]
//!                 [--report FILE] [--threads N]
//! magellan replay --archive DIR [--report FILE]
//! ```
//!
//! `study` runs the full Magellan pipeline with every admitted report
//! archived durably and the simulator checkpointed; `--resume` picks
//! up a killed run from its newest valid checkpoint and finishes with
//! byte-identical archives and report. `--kill-at-tick` aborts the
//! process at a deterministic tick (the crash drill in
//! `scripts/check.sh` uses it). `replay` re-analyzes an existing
//! archive offline, tolerating damage and reporting what recovery had
//! to skip. The run directory carries a `study.cfg` describing the
//! study parameters so `--resume` and `replay` reconstruct the exact
//! configuration.

use magellan::analysis::durable::{DurableConfig, DurableStudy};
use magellan::analysis::study::StudyConfig;
use magellan::netsim::SimDuration;
use magellan::trace::{atomic_write, ArchiveConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The CLI-settable subset of the study parameters. Everything else
/// stays at [`StudyConfig::default`] so a persisted `study.cfg`
/// reconstructs the identical configuration (and fingerprint).
#[derive(Debug, Clone, PartialEq)]
struct RunParams {
    seed: u64,
    scale: f64,
    days: u64,
    sample_every_mins: u64,
    checkpoint_every_ticks: u64,
    segment_bytes: u64,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            seed: 2006,
            scale: 0.002,
            days: 2,
            sample_every_mins: 60,
            checkpoint_every_ticks: 512,
            segment_bytes: 256 * 1024,
        }
    }
}

impl RunParams {
    fn render(&self) -> String {
        format!(
            "version 1\nseed {}\nscale_bits {:016x}\ndays {}\nsample_every_mins {}\n\
             checkpoint_every_ticks {}\nsegment_bytes {}\n",
            self.seed,
            self.scale.to_bits(),
            self.days,
            self.sample_every_mins,
            self.checkpoint_every_ticks,
            self.segment_bytes,
        )
    }

    fn parse(text: &str) -> Result<Self, String> {
        let mut p = RunParams::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("study.cfg line {}: expected `key value`", i + 1))?;
            let num = |radix: u32| {
                u64::from_str_radix(value, radix)
                    .map_err(|e| format!("study.cfg line {}: {key}: {e}", i + 1))
            };
            match key {
                "version" => {
                    if value != "1" {
                        return Err(format!("study.cfg version {value} not supported"));
                    }
                }
                "seed" => p.seed = num(10)?,
                "scale_bits" => p.scale = f64::from_bits(num(16)?),
                "days" => p.days = num(10)?,
                "sample_every_mins" => p.sample_every_mins = num(10)?,
                "checkpoint_every_ticks" => p.checkpoint_every_ticks = num(10)?,
                "segment_bytes" => p.segment_bytes = num(10)?,
                _ => return Err(format!("study.cfg line {}: unknown key {key}", i + 1)),
            }
        }
        Ok(p)
    }

    fn study_config(&self) -> StudyConfig {
        StudyConfig {
            seed: self.seed,
            scale: self.scale,
            window_days: self.days,
            sample_every: SimDuration::from_mins(self.sample_every_mins),
            ..StudyConfig::default()
        }
    }

    fn durable_config(&self) -> DurableConfig {
        DurableConfig {
            archive: ArchiveConfig {
                segment_bytes: self.segment_bytes,
            },
            checkpoint_every_ticks: self.checkpoint_every_ticks,
            keep_checkpoints: 2,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  magellan study  --archive DIR [--seed N] [--scale F] [--days N]\n                  \
         [--sample-every-mins N] [--checkpoint-every-ticks N] [--segment-bytes N]\n                  \
         [--resume] [--kill-at-tick N] [--report FILE] [--threads N]\n  \
         magellan replay --archive DIR [--report FILE]"
    );
    ExitCode::FAILURE
}

fn cfg_path(dir: &Path) -> PathBuf {
    dir.join("study.cfg")
}

fn load_params(dir: &Path) -> Result<RunParams, String> {
    let path = cfg_path(dir);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "read {}: {e} (not a magellan run directory?)",
            path.display()
        )
    })?;
    RunParams::parse(&text)
}

fn emit_report(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => {
            atomic_write(Path::new(path), text.as_bytes()).map_err(|e| format!("write {path}: {e}"))
        }
        None => {
            println!("{text}");
            Ok(())
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let get = |name: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let has = |name: &str| args.iter().any(|a| a == name);
    let parse_u64 = |name: &str| -> Result<Option<u64>, String> {
        get(name)
            .map(|v| v.parse::<u64>().map_err(|e| format!("{name}: {e}")))
            .transpose()
    };

    if let Some(n) = parse_u64("--threads")? {
        magellan::par::set_threads(n as usize);
    }
    let dir = PathBuf::from(
        get("--archive")
            .ok_or_else(|| "--archive DIR is required".to_string())?
            .clone(),
    );
    let report_out = get("--report").map(String::as_str);

    match args.first().map(String::as_str) {
        Some("study") => {
            let resume = has("--resume");
            let mut params = if resume {
                load_params(&dir)?
            } else {
                RunParams::default()
            };
            if let Some(v) = parse_u64("--seed")? {
                params.seed = v;
            }
            if let Some(v) = get("--scale") {
                params.scale = v.parse::<f64>().map_err(|e| format!("--scale: {e}"))?;
            }
            if let Some(v) = parse_u64("--days")? {
                params.days = v;
            }
            if let Some(v) = parse_u64("--sample-every-mins")? {
                params.sample_every_mins = v;
            }
            if let Some(v) = parse_u64("--checkpoint-every-ticks")? {
                params.checkpoint_every_ticks = v;
            }
            if let Some(v) = parse_u64("--segment-bytes")? {
                params.segment_bytes = v;
            }
            let kill_at = parse_u64("--kill-at-tick")?;

            std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            // Persist the parameters before simulating so a run killed
            // at any tick can still be resumed.
            atomic_write(&cfg_path(&dir), params.render().as_bytes())
                .map_err(|e| format!("write study.cfg: {e}"))?;

            let study = DurableStudy::new(&dir, params.study_config(), params.durable_config());
            let observer = |tick: u64| {
                if Some(tick) == kill_at {
                    eprintln!("magellan: simulating crash at tick {tick}");
                    std::process::abort();
                }
            };
            let report = if resume {
                study.resume_observed(observer)
            } else {
                study.run_observed(observer)
            }
            .map_err(|e| format!("study: {e}"))?;
            emit_report(&report.render_text(), report_out)
        }
        Some("replay") => {
            let params = load_params(&dir)?;
            let study = DurableStudy::new(&dir, params.study_config(), params.durable_config());
            let report = study
                .analyze_archive()
                .map_err(|e| format!("replay: {e}"))?;
            emit_report(&report.render_text(), report_out)
        }
        _ => Err("unknown command".to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e == "unknown command" {
                return usage();
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_round_trip_through_cfg_text() {
        let p = RunParams {
            seed: 7,
            scale: 0.000_8,
            days: 1,
            sample_every_mins: 120,
            checkpoint_every_ticks: 64,
            segment_bytes: 16 * 1024,
        };
        let back = RunParams::parse(&p.render()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.scale.to_bits(), p.scale.to_bits());
    }

    #[test]
    fn params_reject_garbage() {
        assert!(RunParams::parse("version 2\n").is_err());
        assert!(RunParams::parse("seed\n").is_err());
        assert!(RunParams::parse("mystery 4\n").is_err());
    }
}
