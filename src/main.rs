//! Crash-safe study runner.
//!
//! ```text
//! magellan study  --archive DIR [--seed N] [--scale F] [--days N]
//!                 [--sample-every-mins N] [--checkpoint-every-ticks N]
//!                 [--segment-bytes N] [--resume] [--kill-at-tick N]
//!                 [--report FILE] [--threads N]
//! magellan replay --archive DIR [--report FILE]
//! ```
//!
//! `study` runs the full Magellan pipeline with every admitted report
//! archived durably and the simulator checkpointed; `--resume` picks
//! up a killed run from its newest valid checkpoint and finishes with
//! byte-identical archives and report. `--kill-at-tick` aborts the
//! process at a deterministic tick (the crash drill in
//! `scripts/check.sh` uses it). `replay` re-analyzes an existing
//! archive offline, tolerating damage and reporting what recovery had
//! to skip. The run directory carries a `study.cfg` describing the
//! study parameters so `--resume` and `replay` reconstruct the exact
//! configuration.

use magellan::analysis::durable::DurableStudy;
use magellan::runcfg::{cfg_path, load_params, RunParams};
use magellan::trace::atomic_write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  magellan study  --archive DIR [--seed N] [--scale F] [--days N]\n                  \
         [--sample-every-mins N] [--checkpoint-every-ticks N] [--segment-bytes N]\n                  \
         [--resume] [--kill-at-tick N] [--report FILE] [--threads N]\n  \
         magellan replay --archive DIR [--report FILE]"
    );
    ExitCode::FAILURE
}

fn emit_report(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => {
            atomic_write(Path::new(path), text.as_bytes()).map_err(|e| format!("write {path}: {e}"))
        }
        None => {
            println!("{text}");
            Ok(())
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let get = |name: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let has = |name: &str| args.iter().any(|a| a == name);
    let parse_u64 = |name: &str| -> Result<Option<u64>, String> {
        get(name)
            .map(|v| v.parse::<u64>().map_err(|e| format!("{name}: {e}")))
            .transpose()
    };

    if let Some(n) = parse_u64("--threads")? {
        magellan::par::set_threads(n as usize);
    }
    let dir = PathBuf::from(
        get("--archive")
            .ok_or_else(|| "--archive DIR is required".to_string())?
            .clone(),
    );
    let report_out = get("--report").map(String::as_str);

    match args.first().map(String::as_str) {
        Some("study") => {
            let resume = has("--resume");
            let mut params = if resume {
                load_params(&dir)?
            } else {
                RunParams::default()
            };
            if let Some(v) = parse_u64("--seed")? {
                params.seed = v;
            }
            if let Some(v) = get("--scale") {
                params.scale = v.parse::<f64>().map_err(|e| format!("--scale: {e}"))?;
            }
            if let Some(v) = parse_u64("--days")? {
                params.days = v;
            }
            if let Some(v) = parse_u64("--sample-every-mins")? {
                params.sample_every_mins = v;
            }
            if let Some(v) = parse_u64("--checkpoint-every-ticks")? {
                params.checkpoint_every_ticks = v;
            }
            if let Some(v) = parse_u64("--segment-bytes")? {
                params.segment_bytes = v;
            }
            let kill_at = parse_u64("--kill-at-tick")?;

            std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            // Persist the parameters before simulating so a run killed
            // at any tick can still be resumed.
            atomic_write(&cfg_path(&dir), params.render().as_bytes())
                .map_err(|e| format!("write study.cfg: {e}"))?;

            let study = DurableStudy::new(&dir, params.study_config(), params.durable_config());
            let observer = |tick: u64| {
                if Some(tick) == kill_at {
                    eprintln!("magellan: simulating crash at tick {tick}");
                    std::process::abort();
                }
            };
            let report = if resume {
                study.resume_observed(observer)
            } else {
                study.run_observed(observer)
            }
            .map_err(|e| format!("study: {e}"))?;
            emit_report(&report.render_text(), report_out)
        }
        Some("replay") => {
            let params = load_params(&dir)?;
            let study = DurableStudy::new(&dir, params.study_config(), params.durable_config());
            let report = study
                .analyze_archive()
                .map_err(|e| format!("replay: {e}"))?;
            emit_report(&report.render_text(), report_out)
        }
        _ => Err("unknown command".to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e == "unknown command" {
                return usage();
            }
            ExitCode::FAILURE
        }
    }
}
