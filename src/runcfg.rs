//! Shared run-directory configuration for the `magellan` binaries.
//!
//! A run directory carries a `study.cfg` describing the CLI-settable
//! study parameters; `magellan study --resume`, `magellan replay`,
//! and the networked `magellan-traced` service all reconstruct the
//! exact configuration (and fingerprint) from it. Everything not
//! listed here stays at [`StudyConfig::default`].

use magellan_analysis::durable::DurableConfig;
use magellan_analysis::study::StudyConfig;
use magellan_netsim::SimDuration;
use magellan_trace::ArchiveConfig;
use std::path::{Path, PathBuf};

/// The CLI-settable subset of the study parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RunParams {
    /// Experiment seed.
    pub seed: u64,
    /// Population scale factor relative to the paper's deployment.
    pub scale: f64,
    /// Study window length in days.
    pub days: u64,
    /// Figure sampling cadence in minutes.
    pub sample_every_mins: u64,
    /// Simulator ticks between durable checkpoints.
    pub checkpoint_every_ticks: u64,
    /// Archive segment roll size in bytes.
    pub segment_bytes: u64,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            seed: 2006,
            scale: 0.002,
            days: 2,
            sample_every_mins: 60,
            checkpoint_every_ticks: 512,
            segment_bytes: 256 * 1024,
        }
    }
}

impl RunParams {
    /// Renders the stable `study.cfg` key-value format. The scale is
    /// persisted as raw bits so the round-trip is exact.
    pub fn render(&self) -> String {
        format!(
            "version 1\nseed {}\nscale_bits {:016x}\ndays {}\nsample_every_mins {}\n\
             checkpoint_every_ticks {}\nsegment_bytes {}\n",
            self.seed,
            self.scale.to_bits(),
            self.days,
            self.sample_every_mins,
            self.checkpoint_every_ticks,
            self.segment_bytes,
        )
    }

    /// Parses [`RunParams::render`] output.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = RunParams::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("study.cfg line {}: expected `key value`", i + 1))?;
            let num = |radix: u32| {
                u64::from_str_radix(value, radix)
                    .map_err(|e| format!("study.cfg line {}: {key}: {e}", i + 1))
            };
            match key {
                "version" => {
                    if value != "1" {
                        return Err(format!("study.cfg version {value} not supported"));
                    }
                }
                "seed" => p.seed = num(10)?,
                "scale_bits" => p.scale = f64::from_bits(num(16)?),
                "days" => p.days = num(10)?,
                "sample_every_mins" => p.sample_every_mins = num(10)?,
                "checkpoint_every_ticks" => p.checkpoint_every_ticks = num(10)?,
                "segment_bytes" => p.segment_bytes = num(10)?,
                _ => return Err(format!("study.cfg line {}: unknown key {key}", i + 1)),
            }
        }
        Ok(p)
    }

    /// The full study configuration these parameters select.
    pub fn study_config(&self) -> StudyConfig {
        StudyConfig {
            seed: self.seed,
            scale: self.scale,
            window_days: self.days,
            sample_every: SimDuration::from_mins(self.sample_every_mins),
            ..StudyConfig::default()
        }
    }

    /// The durability configuration these parameters select.
    pub fn durable_config(&self) -> DurableConfig {
        DurableConfig {
            archive: ArchiveConfig {
                segment_bytes: self.segment_bytes,
            },
            checkpoint_every_ticks: self.checkpoint_every_ticks,
            keep_checkpoints: 2,
        }
    }
}

/// The `study.cfg` path inside a run directory.
pub fn cfg_path(dir: &Path) -> PathBuf {
    dir.join("study.cfg")
}

/// Loads and parses a run directory's `study.cfg`.
///
/// # Errors
///
/// A human-readable message covering both I/O and parse failures.
pub fn load_params(dir: &Path) -> Result<RunParams, String> {
    let path = cfg_path(dir);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "read {}: {e} (not a magellan run directory?)",
            path.display()
        )
    })?;
    RunParams::parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_round_trip_through_cfg_text() {
        let p = RunParams {
            seed: 7,
            scale: 0.000_8,
            days: 1,
            sample_every_mins: 120,
            checkpoint_every_ticks: 64,
            segment_bytes: 16 * 1024,
        };
        let back = RunParams::parse(&p.render()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.scale.to_bits(), p.scale.to_bits());
    }

    #[test]
    fn params_reject_garbage() {
        assert!(RunParams::parse("version 2\n").is_err());
        assert!(RunParams::parse("seed\n").is_err());
        assert!(RunParams::parse("mystery 4\n").is_err());
    }
}
