//! # Magellan
//!
//! A full reproduction of **"Magellan: Charting Large-Scale
//! Peer-to-Peer Live Streaming Topologies"** (Wu, Li & Zhao, ICDCS
//! 2007) as a Rust workspace: a discrete-event simulator of the UUSee
//! mesh streaming protocol, the in-protocol measurement substrate the
//! paper describes, and the graph-theoretic analysis that produces
//! every figure of its evaluation.
//!
//! This crate is the facade: it re-exports the sub-crates and offers
//! a [`prelude`] for the common entry points.
//!
//! ## Quickstart
//!
//! ```no_run
//! use magellan::prelude::*;
//!
//! // A small-scale run of the full two-week study.
//! let report = MagellanStudy::with_scale(2006, 0.002).run();
//! println!("{}", report.render_text());
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`graph`] | directed graph + degree/clustering/path/reciprocity/power-law metrics |
//! | [`par`] | deterministic fork-join primitives behind the metric kernels |
//! | [`netsim`] | simulation clock, event queue, ISP database, RTT/bandwidth underlay |
//! | [`workload`] | diurnal arrivals, flash crowds, sessions, channel popularity |
//! | [`overlay`] | the UUSee protocol simulator (tracker, selection, block exchange) |
//! | [`trace`] | peer reports, trace server/store, snapshot reconstruction |
//! | [`analysis`] | the study: classification, topologies, every figure |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod runcfg;

pub use magellan_analysis as analysis;
pub use magellan_graph as graph;
pub use magellan_netsim as netsim;
pub use magellan_overlay as overlay;
pub use magellan_par as par;
pub use magellan_trace as trace;
pub use magellan_workload as workload;

/// The common entry points, one `use` away.
pub mod prelude {
    pub use magellan_analysis::figures::StudyReport;
    pub use magellan_analysis::study::{MagellanStudy, StudyConfig};
    pub use magellan_graph::{DegreeHistogram, DiGraph, NodeId};
    pub use magellan_netsim::{Isp, IspDatabase, PeerAddr, SimDuration, SimTime, StudyCalendar};
    pub use magellan_overlay::{OverlaySim, SimConfig, SimSummary};
    pub use magellan_trace::{PeerReport, TraceStore};
    pub use magellan_workload::{ChannelDirectory, ChannelId, FaultPlan, Scenario};
}
