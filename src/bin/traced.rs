//! `magellan-traced` — the networked ingest service and its drill
//! client.
//!
//! ```text
//! magellan-traced serve --archive DIR [--listen ADDR] [--clients N]
//!                       [--shards N] [--pending-cap N] [--queue-cap N]
//!                       [--port-file FILE] [--resume]
//!                       [--idle-timeout-ms N] [--barrier-timeout-ms N]
//!                       [--max-conns N] [--max-conns-per-ip N]
//!                       [--rate-limit N] [--rate-burst N]
//!                       [--seed N] [--scale F] [--days N]
//!                       [--sample-every-mins N] [--segment-bytes N]
//! magellan-traced drive --server ADDR --client-id I --clients N
//!                       [--transport tcp|udp] [--window N]
//!                       [--mark-every-mins N] [--backoff-base-ms N]
//!                       [--backoff-cap-ms N] [--max-attempts N]
//!                       [--reconnect N]
//!                       [--seed N] [--scale F] [--days N]
//!                       [--sample-every-mins N]
//! ```
//!
//! `serve` listens on one port (TCP and UDP simultaneously), ingests
//! `wire`-encoded [`PeerReport`]s from `--clients` concurrent
//! clients through `--shards` independent admission shards, and lands
//! the merged windows in a standard archive under `DIR/archive` plus
//! the `INGEST` accounting sidecar — so `magellan replay --archive
//! DIR` analyzes a networked run exactly like an in-process one. The
//! threading shape mirrors the sans-I/O
//! [`ServiceCore`](magellan::trace::ServiceCore) reference: one owner
//! thread per [`Shard`] behind a bounded FIFO (backpressure sheds
//! `Busy` at the queue, accounted), reader threads that only route,
//! and a coordinator owning the registry and the archive writer.
//!
//! The service assumes a hostile network. Every socket carries a read
//! timeout and an idle deadline (`--idle-timeout-ms`), so a slowloris
//! connection — opened, half-fed, never finished — is reaped instead
//! of pinning a reader thread forever. The acceptor enforces
//! `--max-conns` / `--max-conns-per-ip`; surplus connections are
//! closed on arrival and counted. With `--rate-limit` set, each TCP
//! connection and each UDP source gets a token bucket and over-budget
//! reports are answered [`StatusCode::RateLimited`] — a retryable
//! verdict the [`NetUplink`] backs off on. A client that goes silent
//! past `--barrier-timeout-ms` is evicted from the window barrier, so
//! a vanished peer degrades the seal to an accounted partial window
//! instead of wedging the merge pipeline.
//!
//! The service itself is crash-safe. `SIGTERM`/`SIGINT` request a
//! drain: the acceptor stops accepting, unfinished clients are
//! evicted, the in-flight window is sealed, the sidecar is flushed,
//! and the process exits 0. After `kill -9`, `serve --resume` reopens
//! the archive at the last checkpoint (the `INGEST.resume` sidecar is
//! rewritten after every merge+sync), truncates any torn tail, and
//! restores the merge frontier so re-received reports below it shed
//! as `Late` while everything at or past it is admitted fresh —
//! re-receives reconcile in the `surplus` column, never in the
//! archive twice.
//!
//! `drive` runs the full deterministic study simulation and streams
//! the partition `shard_of(addr, clients) == client_id` to the
//! service through a [`NetUplink`], marking window boundaries every
//! `--mark-every-mins` of simulated time. `--reconnect N` arms the
//! uplink's reconnect budget: a mid-stream connection kill is
//! answered by redial + re-`Hello` + retransmit of every outstanding
//! report. N drive processes with the same study parameters cover
//! every report exactly once, which is what makes the multi-process
//! drill reproduce the in-process `StudyReport`.
//!
//! Control messages over UDP are sent blind with redundancy; on a
//! lossy path a fully lost `Hello`/`Finish` can stall the barrier, so
//! the drill (and CI) use TCP and treat UDP as the loss-tolerance
//! exercise.

use bytes::Bytes;
use magellan::netsim::{SimDuration, SimTime};
use magellan::overlay::OverlaySim;
use magellan::runcfg::{cfg_path, load_params, RunParams};
use magellan::trace::codec::{self, ClientMsg, FrameReader, ReplyMsg};
use magellan::trace::service::{
    merge_sorted, read_service_resume, write_ingest_stats, write_service_resume, ServiceResume,
};
use magellan::trace::shard::{shard_of, Shard, ShardStats};
use magellan::trace::{
    atomic_write, ArchiveWriter, ClientRegistry, IngestStats, NetBackoff, NetUplink, PeerReport,
    StatusCode, TokenBucket,
};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
// lint:allow(P1): service shell, not simulation — channels carry socket traffic whose interleaving is inherently external
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, SendError, Sender, SyncSender, TrySendError,
};
// lint:allow(P1): service shell — the reply half of a TCP stream is shared between shard workers, nothing simulation-visible
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// How often a blocked socket read wakes to check the idle deadline
/// and the drain flag.
const READ_TICK_MS: u64 = 200;

/// `SIGINT` on every platform this service targets.
const SIGINT: i32 = 2;
/// `SIGTERM` on every platform this service targets.
const SIGTERM: i32 = 15;

/// Set by the signal handler. The acceptor stops accepting, reader
/// threads wind down at their next tick, and the coordinator drains
/// the in-flight window and exits 0.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// The drain handler: one atomic store, the only thing that is
/// async-signal-safe to do here.
extern "C" fn on_drain_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" {
    /// ISO C `signal(2)`, provided by the platform libc that `std`
    /// already links — bound directly to keep the dependency set
    /// closed (no signal-handling crate).
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Arms the drain protocol: `SIGTERM`/`SIGINT` flip [`SHUTDOWN`]
/// instead of killing the process mid-write.
fn install_drain_handler() {
    let handler = on_drain_signal as extern "C" fn(i32) as *const () as usize;
    // SAFETY: `signal` matches the ISO C prototype (libc is linked by std on this platform); the handler only performs one atomic store, which is async-signal-safe; and the handler is a static fn item, so the pointer outlives the process.
    unsafe { (signal(SIGTERM, handler), signal(SIGINT, handler)) };
}

/// True once a drain signal arrived.
fn drain_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Where a shard worker sends the 9-byte reply record.
enum ReplyTo {
    /// The shared write half of the client's TCP stream.
    // lint:allow(P1): service shell — guards only the socket write half; replies are matched by seq, order-free
    Tcp(Arc<Mutex<TcpStream>>),
    /// The server's UDP socket plus the client's return address.
    Udp(Arc<UdpSocket>, SocketAddr),
}

/// One entry in a shard worker's bounded FIFO.
enum ShardCmd {
    /// A report datagram to classify and answer.
    Report {
        payload: Bytes,
        seq: u64,
        reply: ReplyTo,
    },
    /// Seal a window: drain everything below the barrier and report
    /// the shard's running books (the coordinator checkpoints them).
    Drain {
        below: SimTime,
        out: Sender<(Vec<PeerReport>, ShardStats)>,
    },
    /// Final drain; the worker returns its accounting and exits.
    Stop {
        below: SimTime,
        out: Sender<(Vec<PeerReport>, ShardStats)>,
    },
}

/// Control-plane traffic the readers forward to the coordinator.
enum Ctrl {
    Hello { client_id: u32, clients: u32 },
    Mark { client_id: u32, up_to: SimTime },
    Finish { client_id: u32, sent: u64 },
}

/// Shed/defense counters shared by every reader thread. All are
/// connection-plane events the coordinator folds into the final
/// books (and prints), so hostile traffic is visible, not silent.
#[derive(Default)]
struct Counters {
    /// Reports shed `Busy` because a shard FIFO was full.
    queue_shed: AtomicU64,
    /// Reports answered `RateLimited` by a token bucket.
    rate_limited: AtomicU64,
    /// Connections reaped by the idle deadline (slowloris defense).
    reaped: AtomicU64,
    /// Connections refused by the max-conns / per-IP governor.
    refused: AtomicU64,
}

/// Per-reader defense knobs, plus the service epoch for token-bucket
/// clocks.
#[derive(Clone, Copy)]
struct Defense {
    idle_timeout_ms: u64,
    rate_limit: u64,
    rate_burst: u64,
}

/// Everything a reader thread needs, cloned per connection.
#[derive(Clone)]
struct ReaderCtx {
    shards: Arc<Vec<SyncSender<ShardCmd>>>,
    ctrl: Sender<Ctrl>,
    counters: Arc<Counters>,
    defense: Defense,
    /// The serve epoch — token buckets and the registry's idle clock
    /// both run on milliseconds since this instant.
    epoch: Instant,
}

impl ReaderCtx {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// The connection census: total and per-IP caps enforced at accept
/// time, released when the reader thread drops its permit.
struct ConnGovernor {
    max_conns: usize,
    max_per_ip: usize,
    // lint:allow(P1): service shell — guards only the connection census, nothing simulation-visible
    table: Mutex<ConnTable>,
}

#[derive(Default)]
struct ConnTable {
    total: usize,
    per_ip: BTreeMap<IpAddr, usize>,
}

impl ConnGovernor {
    fn new(max_conns: usize, max_per_ip: usize) -> Arc<Self> {
        Arc::new(ConnGovernor {
            max_conns,
            max_per_ip,
            // lint:allow(P1): service shell — guards only the connection census, nothing simulation-visible
            table: Mutex::new(ConnTable::default()),
        })
    }

    /// Admits a connection from `ip`, or refuses it when either cap
    /// is reached. The returned permit releases the slot on drop, so
    /// every reader-thread exit path (EOF, error, reap) decrements.
    fn admit(self: &Arc<Self>, ip: IpAddr) -> Option<ConnPermit> {
        let mut t = self.table.lock().unwrap_or_else(PoisonError::into_inner);
        let mine = t.per_ip.get(&ip).copied().unwrap_or(0);
        if t.total >= self.max_conns || mine >= self.max_per_ip {
            return None;
        }
        t.total += 1;
        t.per_ip.insert(ip, mine + 1);
        Some(ConnPermit {
            gov: Arc::clone(self),
            ip,
        })
    }

    fn release(&self, ip: IpAddr) {
        let mut t = self.table.lock().unwrap_or_else(PoisonError::into_inner);
        t.total = t.total.saturating_sub(1);
        if let Some(n) = t.per_ip.get_mut(&ip) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                t.per_ip.remove(&ip);
            }
        }
    }
}

/// One admitted connection's slot in the census.
struct ConnPermit {
    gov: Arc<ConnGovernor>,
    ip: IpAddr,
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.gov.release(self.ip);
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  magellan-traced serve --archive DIR [--listen ADDR] [--clients N] [--shards N]\n                        \
         [--pending-cap N] [--queue-cap N] [--port-file FILE] [--resume]\n                        \
         [--idle-timeout-ms N] [--barrier-timeout-ms N] [--max-conns N]\n                        \
         [--max-conns-per-ip N] [--rate-limit N] [--rate-burst N]\n                        \
         [--seed N] [--scale F] [--days N] [--sample-every-mins N] [--segment-bytes N]\n  \
         magellan-traced drive --server ADDR --client-id I --clients N [--transport tcp|udp]\n                        \
         [--window N] [--mark-every-mins N] [--backoff-base-ms N] [--backoff-cap-ms N]\n                        \
         [--max-attempts N] [--reconnect N] [--seed N] [--scale F] [--days N]\n                        \
         [--sample-every-mins N]"
    );
    ExitCode::FAILURE
}

/// Writes one reply record, best-effort: a vanished client shows up
/// in the books as client-side loss, never as a server error.
fn send_reply(reply: &ReplyTo, msg: &ReplyMsg) {
    let bytes = codec::encode_reply(msg);
    match reply {
        ReplyTo::Tcp(stream) => {
            let mut s = stream.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = s.write_all(&bytes);
        }
        ReplyTo::Udp(sock, peer) => {
            let _ = sock.send_to(&bytes, *peer);
        }
    }
}

/// A shard worker: sole owner of one [`Shard`], fed by a bounded
/// FIFO. No locks around admission state — the queue is the only
/// synchronization.
fn shard_worker(mut shard: Shard, rx: Receiver<ShardCmd>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ShardCmd::Report {
                payload,
                seq,
                reply,
            } => {
                let status = shard.ingest_wire(&payload);
                send_reply(&reply, &ReplyMsg { seq, status });
            }
            ShardCmd::Drain { below, out } => {
                let _ = out.send((shard.drain_below(below), shard.stats()));
            }
            ShardCmd::Stop { below, out } => {
                let _ = out.send((shard.drain_below(below), shard.stats()));
                return;
            }
        }
    }
}

/// Routes one report to its shard's FIFO. A full queue is the
/// overload backpressure path: the reader answers `Busy` itself and
/// the shed is accounted in `queue_shed` so the books still balance.
fn route_report(
    shards: &[SyncSender<ShardCmd>],
    payload: Bytes,
    seq: u64,
    reply: ReplyTo,
    queue_shed: &AtomicU64,
) {
    let idx = codec::peek_report_addr(&payload)
        .map(|addr| shard_of(addr, shards.len()))
        .unwrap_or(0);
    match shards[idx].try_send(ShardCmd::Report {
        payload,
        seq,
        reply,
    }) {
        Ok(()) => {}
        Err(TrySendError::Full(ShardCmd::Report { seq, reply, .. })) => {
            queue_shed.fetch_add(1, Ordering::SeqCst);
            send_reply(
                &reply,
                &ReplyMsg {
                    seq,
                    status: StatusCode::Busy,
                },
            );
        }
        // Disconnected only during shutdown; stragglers count as lost.
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {}
    }
}

/// Serves one TCP connection: length-framed requests in, raw reply
/// records out (written by whichever shard worker classified the
/// report). Returns — closing the connection — on EOF, I/O error,
/// the first undecodable frame (the stream is desynced beyond
/// repair; the client's datagrams become `lost`), the idle deadline
/// (the slowloris defense — a half-open connection cannot pin a
/// reader thread), or a drain signal.
fn tcp_conn(stream: TcpStream, ctx: ReaderCtx) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // A client that stops reading replies must wedge only itself,
    // never a shard worker.
    let _ = write_half.set_write_timeout(Some(Duration::from_secs(5)));
    // The read timeout is the reaper tick: a blocked read wakes every
    // tick to check the idle deadline and the drain flag.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(READ_TICK_MS)));
    // lint:allow(P1): service shell — shares the socket write half with shard workers; replies are seq-matched
    let write_half = Arc::new(Mutex::new(write_half));
    let mut stream = stream;
    let mut frames = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    let mut bucket = TokenBucket::new(ctx.defense.rate_limit, ctx.defense.rate_burst);
    // lint:allow(D2): service shell — socket idle deadlines run on wall clock, not simulation time
    let mut last_data = Instant::now();
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if drain_requested() {
                    return;
                }
                if last_data.elapsed().as_millis() as u64 >= ctx.defense.idle_timeout_ms {
                    ctx.counters.reaped.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        last_data = Instant::now(); // lint:allow(D2): service shell — wall-clock idle deadline
        frames.extend(&buf[..n]);
        loop {
            let mut body = match frames.next_frame() {
                Ok(Some(body)) => body,
                Ok(None) => break,
                Err(_) => return,
            };
            let Ok(msg) = codec::decode_client_msg(&mut body) else {
                return;
            };
            let forwarded = match msg {
                ClientMsg::Report { seq, payload } => {
                    if bucket.try_admit(ctx.now_ms()) {
                        route_report(
                            &ctx.shards,
                            payload,
                            seq,
                            ReplyTo::Tcp(Arc::clone(&write_half)),
                            &ctx.counters.queue_shed,
                        );
                    } else {
                        ctx.counters.rate_limited.fetch_add(1, Ordering::SeqCst);
                        send_reply(
                            &ReplyTo::Tcp(Arc::clone(&write_half)),
                            &ReplyMsg {
                                seq,
                                status: StatusCode::RateLimited,
                            },
                        );
                    }
                    Ok(())
                }
                ClientMsg::Hello { client_id, clients } => {
                    ctrl_send(&ctx, Ctrl::Hello { client_id, clients })
                }
                ClientMsg::WindowMark { client_id, up_to } => {
                    ctrl_send(&ctx, Ctrl::Mark { client_id, up_to })
                }
                ClientMsg::Finish { client_id, sent } => {
                    ctrl_send(&ctx, Ctrl::Finish { client_id, sent })
                }
            };
            if forwarded.is_err() {
                return; // coordinator gone — shutdown
            }
        }
    }
}

/// Forwards one control message to the coordinator.
fn ctrl_send(ctx: &ReaderCtx, msg: Ctrl) -> Result<(), SendError<Ctrl>> {
    ctx.ctrl.send(msg)
}

/// Serves the UDP side: one message per datagram, reports answered
/// with one reply datagram, undecodable datagrams silently dropped
/// (they reconcile as `lost` — there is no sequence number to
/// answer). Rate limiting is per source address, since UDP has no
/// connection to hang a bucket on.
fn udp_reader(sock: Arc<UdpSocket>, ctx: ReaderCtx) {
    let _ = sock.set_read_timeout(Some(Duration::from_millis(READ_TICK_MS)));
    let mut buckets: BTreeMap<SocketAddr, TokenBucket> = BTreeMap::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let (n, peer) = match sock.recv_from(&mut buf) {
            Ok(v) => v,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if drain_requested() {
                    return;
                }
                continue;
            }
            Err(_) => continue,
        };
        let mut body = &buf[..n];
        let Ok(msg) = codec::decode_client_msg(&mut body) else {
            continue;
        };
        let forwarded = match msg {
            ClientMsg::Report { seq, payload } => {
                let bucket = buckets.entry(peer).or_insert_with(|| {
                    TokenBucket::new(ctx.defense.rate_limit, ctx.defense.rate_burst)
                });
                if bucket.try_admit(ctx.now_ms()) {
                    route_report(
                        &ctx.shards,
                        payload,
                        seq,
                        ReplyTo::Udp(Arc::clone(&sock), peer),
                        &ctx.counters.queue_shed,
                    );
                } else {
                    ctx.counters.rate_limited.fetch_add(1, Ordering::SeqCst);
                    send_reply(
                        &ReplyTo::Udp(Arc::clone(&sock), peer),
                        &ReplyMsg {
                            seq,
                            status: StatusCode::RateLimited,
                        },
                    );
                }
                Ok(())
            }
            ClientMsg::Hello { client_id, clients } => {
                ctrl_send(&ctx, Ctrl::Hello { client_id, clients })
            }
            ClientMsg::WindowMark { client_id, up_to } => {
                ctrl_send(&ctx, Ctrl::Mark { client_id, up_to })
            }
            ClientMsg::Finish { client_id, sent } => {
                ctrl_send(&ctx, Ctrl::Finish { client_id, sent })
            }
        };
        if forwarded.is_err() {
            return;
        }
    }
}

/// Flag-scanning helpers shared by both subcommands.
struct Args<'a>(&'a [String]);

impl Args<'_> {
    fn get(&self, name: &str) -> Option<&String> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    fn num(&self, name: &str) -> Result<Option<u64>, String> {
        self.get(name)
            .map(|v| v.parse::<u64>().map_err(|e| format!("{name}: {e}")))
            .transpose()
    }

    /// The CLI-settable study parameters both subcommands share —
    /// every drive process and the server must agree on these for the
    /// partition to cover the study exactly once.
    fn params(&self) -> Result<RunParams, String> {
        let mut p = RunParams::default();
        if let Some(v) = self.num("--seed")? {
            p.seed = v;
        }
        if let Some(v) = self.get("--scale") {
            p.scale = v.parse::<f64>().map_err(|e| format!("--scale: {e}"))?;
        }
        if let Some(v) = self.num("--days")? {
            p.days = v;
        }
        if let Some(v) = self.num("--sample-every-mins")? {
            p.sample_every_mins = v;
        }
        if let Some(v) = self.num("--segment-bytes")? {
            p.segment_bytes = v;
        }
        Ok(p)
    }
}

/// The coordinator's durable state: archive writer, merge frontier,
/// and the baseline books restored by `--resume` (all zero on a
/// fresh serve).
struct Books {
    writer: ArchiveWriter,
    /// Records landed in the archive, across incarnations — the
    /// checkpoint cursor `--resume` truncates to.
    archived: u64,
    merged_below: SimTime,
    /// Merges across incarnations (starts at the resumed count).
    merges: u64,
    /// Receive-side totals of the previous incarnation.
    base: IngestStats,
    clients: u32,
}

impl Books {
    /// Receive-side totals right now: previous incarnation + the live
    /// shards + the reader-side shed counters. `sent`/`lost`/
    /// `surplus` stay zero until the roster closes — they need the
    /// registry's final word.
    fn compose(&self, registry: &ClientRegistry, shards: &ShardStats, c: &Counters) -> IngestStats {
        IngestStats {
            clients: self.clients,
            sent: 0,
            admitted: self.base.admitted + shards.admitted,
            deduped: self.base.deduped + shards.deduped,
            shed_busy: self.base.shed_busy + shards.shed_busy + c.queue_shed.load(Ordering::SeqCst),
            rejected: self.base.rejected + shards.rejected,
            malformed: self.base.malformed + shards.malformed,
            late: self.base.late + shards.late,
            unavailable: self.base.unavailable + shards.unavailable,
            rate_limited: self.base.rate_limited + c.rate_limited.load(Ordering::SeqCst),
            lost: 0,
            surplus: 0,
            evicted: self.base.evicted + registry.evicted_count(),
            merges: self.merges,
            protocol_errors: self.base.protocol_errors + registry.protocol_errors(),
        }
    }
}

/// Drains every shard below `below` (finally when `stop`), returning
/// the merged batches plus the summed cumulative shard books.
fn drain_shards(
    shard_txs: &[SyncSender<ShardCmd>],
    below: SimTime,
    stop: bool,
) -> Result<(Vec<Vec<PeerReport>>, ShardStats), String> {
    let mut batches = Vec::with_capacity(shard_txs.len());
    let mut totals = ShardStats::default();
    for tx in shard_txs {
        let (out, back) = channel();
        let cmd = if stop {
            ShardCmd::Stop { below, out }
        } else {
            ShardCmd::Drain { below, out }
        };
        tx.send(cmd).map_err(|_| "shard worker died".to_string())?;
        let (batch, stats) = back.recv().map_err(|_| "shard worker died".to_string())?;
        batches.push(batch);
        totals.absorb(&stats);
    }
    Ok((batches, totals))
}

/// Seals everything below the registry's barrier into the archive,
/// then rewrites the `INGEST.resume` checkpoint — append+sync first,
/// checkpoint second, so the cursor never runs ahead of durable
/// records. No-op while the barrier hasn't advanced.
fn seal_ready(
    books: &mut Books,
    registry: &ClientRegistry,
    shard_txs: &[SyncSender<ShardCmd>],
    counters: &Counters,
    archive_dir: &Path,
) -> Result<(), String> {
    let Some(ready) = registry.ready_below() else {
        return Ok(());
    };
    if ready <= books.merged_below {
        return Ok(());
    }
    // Every live client flushed everything below `ready` before
    // marking, and the FIFOs preserve that order — the drains see
    // every covered report. Evicted clients are excluded from the
    // barrier: whatever they still owed reconciles as loss.
    let (batches, totals) = drain_shards(shard_txs, ready, false)?;
    books.merged_below = ready;
    books.merges += 1;
    let merged = merge_sorted(batches);
    for r in &merged {
        books
            .writer
            .append(r)
            .map_err(|e| format!("archive append: {e}"))?;
    }
    books.archived += merged.len() as u64;
    books
        .writer
        .sync()
        .map_err(|e| format!("archive sync: {e}"))?;
    let resume = ServiceResume {
        archived: books.archived,
        merged_below_ms: books.merged_below.as_millis(),
        stats: books.compose(registry, &totals, counters),
    };
    write_service_resume(archive_dir, &resume).map_err(|e| format!("write resume sidecar: {e}"))?;
    Ok(())
}

fn serve(args: &Args) -> Result<(), String> {
    let dir = PathBuf::from(
        args.get("--archive")
            .ok_or_else(|| "--archive DIR is required".to_string())?,
    );
    let resuming = args.has("--resume");
    // On resume the run directory's study.cfg is authoritative — the
    // restarted service must agree with the original parameters.
    let params = if resuming {
        load_params(&dir)?
    } else {
        args.params()?
    };
    let listen = args
        .get("--listen")
        .map_or("127.0.0.1:0", String::as_str)
        .to_string();
    let clients = u32::try_from(args.num("--clients")?.unwrap_or(1).max(1))
        .map_err(|_| "--clients out of range".to_string())?;
    let shards = args.num("--shards")?.unwrap_or(4).max(1) as usize;
    let pending_cap = args.num("--pending-cap")?.unwrap_or(1 << 16).max(1) as usize;
    let queue_cap = args.num("--queue-cap")?.unwrap_or(1024).max(1) as usize;
    let idle_timeout_ms = args.num("--idle-timeout-ms")?.unwrap_or(30_000).max(1);
    let barrier_timeout_ms = args.num("--barrier-timeout-ms")?.unwrap_or(30_000).max(1);
    let max_conns = args.num("--max-conns")?.unwrap_or(1024).max(1) as usize;
    let max_per_ip = args.num("--max-conns-per-ip")?.unwrap_or(64).max(1) as usize;
    let rate_limit = args.num("--rate-limit")?.unwrap_or(0);
    let rate_burst = args
        .num("--rate-burst")?
        .unwrap_or_else(|| (rate_limit * 2).max(8));
    let window_end = SimTime::at(params.days, 0, 0);

    install_drain_handler();

    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let archive_dir = dir.join("archive");
    let (writer, archived, base, frontier) = if resuming {
        // Crash-resume: reopen the archive at the checkpoint cursor
        // (truncating any torn tail past it) and restore the merge
        // frontier, so already-archived reports shed as `Late` when
        // the drill re-offers them.
        let resume = read_service_resume(&archive_dir)
            .map_err(|e| format!("read resume sidecar: {e}"))?
            .unwrap_or(ServiceResume {
                archived: 0,
                merged_below_ms: 0,
                stats: IngestStats::default(),
            });
        let writer = ArchiveWriter::resume(
            &archive_dir,
            params.durable_config().archive,
            resume.archived,
        )
        .map_err(|e| format!("resume archive: {e}"))?;
        let frontier = SimTime::from_millis(resume.merged_below_ms);
        (writer, resume.archived, resume.stats, frontier)
    } else {
        // The run directory is replay-compatible: study.cfg first, so
        // a killed drill still identifies its parameters.
        atomic_write(&cfg_path(&dir), params.render().as_bytes())
            .map_err(|e| format!("write study.cfg: {e}"))?;
        let writer = ArchiveWriter::create(&archive_dir, params.durable_config().archive)
            .map_err(|e| format!("create archive: {e}"))?;
        (writer, 0, IngestStats::default(), SimTime::ORIGIN)
    };
    let mut books = Books {
        writer,
        archived,
        merged_below: frontier,
        merges: base.merges,
        base,
        clients,
    };

    // One owner thread per shard behind a bounded FIFO. On resume
    // every shard starts at the restored frontier: re-received
    // reports below it are `Late` (their dedup history died with the
    // previous incarnation), at or past it they are admitted fresh.
    let mut shard_txs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = sync_channel::<ShardCmd>(queue_cap); // lint:allow(P1): service shell — bounded ingest queue, the backpressure mechanism itself
        let shard = Shard::with_frontier(window_end, pending_cap, frontier);
        // lint:allow(D3): service shell — shard owner threads live for the whole process; the drill joins them via Stop
        thread::spawn(move || shard_worker(shard, rx));
        shard_txs.push(tx);
    }
    let shard_txs = Arc::new(shard_txs);
    let counters = Arc::new(Counters::default());
    let (ctrl_tx, ctrl_rx) = channel::<Ctrl>();
    // lint:allow(D2): service shell — the serve epoch anchors socket/barrier deadlines in wall time
    let epoch = Instant::now();
    let ctx = ReaderCtx {
        shards: Arc::clone(&shard_txs),
        ctrl: ctrl_tx,
        counters: Arc::clone(&counters),
        defense: Defense {
            idle_timeout_ms,
            rate_limit,
            rate_burst,
        },
        epoch,
    };

    // TCP and UDP share one port.
    let listener = TcpListener::bind(&listen).map_err(|e| format!("bind tcp {listen}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    let udp = Arc::new(UdpSocket::bind(local).map_err(|e| format!("bind udp {local}: {e}"))?);

    println!(
        "magellan-traced: listening on {local} (tcp+udp), {clients} client(s), {shards} shard(s), \
         pending cap {pending_cap}, queue cap {queue_cap}{}",
        if resuming {
            format!(
                ", resumed at {} archived record(s), frontier {} ms",
                books.archived,
                books.merged_below.as_millis()
            )
        } else {
            String::new()
        }
    );
    if let Some(path) = args.get("--port-file") {
        // Written atomically so a polling drill script never reads a
        // half-written address.
        atomic_write(Path::new(path), local.to_string().as_bytes())
            .map_err(|e| format!("write {path}: {e}"))?;
    }

    {
        let ctx = ctx.clone();
        let governor = ConnGovernor::new(max_conns, max_per_ip);
        // lint:allow(D3): service shell — the acceptor lives until process exit; it owns no simulation state
        thread::spawn(move || {
            for conn in listener.incoming() {
                if drain_requested() {
                    return; // drain: stop accepting, let readers wind down
                }
                let Ok(stream) = conn else { continue };
                let Some(permit) = stream
                    .peer_addr()
                    .ok()
                    .and_then(|peer| governor.admit(peer.ip()))
                else {
                    ctx.counters.refused.fetch_add(1, Ordering::SeqCst);
                    continue; // dropping the stream closes it — the refusal
                };
                let ctx = ctx.clone();
                // lint:allow(D3): service shell — one reader per connection, detached; connections outlive no window barrier
                thread::spawn(move || {
                    let _permit = permit;
                    tcp_conn(stream, ctx);
                });
            }
        });
    }
    {
        let sock = Arc::clone(&udp);
        let ctx = ctx;
        // lint:allow(D3): service shell — single UDP reader for the whole process lifetime
        thread::spawn(move || udp_reader(sock, ctx));
    }

    // The coordinator: registry, window barrier, archive. The loop
    // ticks instead of blocking, so a vanished client or a drain
    // signal degrades the run instead of wedging it.
    let mut registry = ClientRegistry::new(clients);
    let now_ms = || epoch.elapsed().as_millis() as u64;
    let mut drained_on_signal = false;
    while !registry.all_finished() {
        if drain_requested() {
            // Drain protocol: evict whoever hasn't finished, seal the
            // in-flight window below, and close the books at exit 0.
            let evicted = registry.evict_idle(now_ms(), 0);
            drained_on_signal = true;
            println!(
                "magellan-traced: drain signal — evicted {evicted} unfinished client(s), \
                 sealing the in-flight window"
            );
            break;
        }
        match ctrl_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(Ctrl::Hello { client_id, clients }) => {
                registry.touch(client_id, now_ms());
                registry.hello(client_id, clients);
            }
            Ok(Ctrl::Finish { client_id, sent }) => {
                registry.touch(client_id, now_ms());
                registry.finish(client_id, sent);
            }
            Ok(Ctrl::Mark { client_id, up_to }) => {
                registry.touch(client_id, now_ms());
                registry.mark(client_id, up_to);
                seal_ready(&mut books, &registry, &shard_txs, &counters, &archive_dir)?;
            }
            Err(RecvTimeoutError::Timeout) => {
                // The barrier deadline: a client silent past it is
                // evicted so the window seals as an accounted partial
                // instead of wedging ready_below() forever.
                let evicted = registry.evict_idle(now_ms(), barrier_timeout_ms);
                if evicted > 0 {
                    println!(
                        "magellan-traced: evicted {evicted} client(s) silent past the \
                         {barrier_timeout_ms} ms barrier deadline; sealing a partial window"
                    );
                    seal_ready(&mut books, &registry, &shard_txs, &counters, &archive_dir)?;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err("every reader thread died before the drill finished".to_string())
            }
        }
    }

    // Final drain: stop every shard, merge the tail, close the books.
    let (batches, totals) = drain_shards(&shard_txs, window_end, true)?;
    let final_batch = merge_sorted(batches);
    if !final_batch.is_empty() {
        books.merges += 1;
    }
    for r in &final_batch {
        books
            .writer
            .append(r)
            .map_err(|e| format!("archive append: {e}"))?;
    }
    let sent = registry.total_sent();
    let mut stats = books.compose(&registry, &totals, &counters);
    let summary = books
        .writer
        .finish()
        .map_err(|e| format!("archive finish: {e}"))?;
    stats.sent = sent;
    // Net reconciliation: datagrams the clients sent that never
    // classified are `lost`; classifications beyond what this
    // incarnation's clients sent (chaos duplicates, evicted clients'
    // traffic, crash-resume re-receives) are `surplus`.
    stats.lost = sent.saturating_sub(stats.received());
    stats.surplus = stats.received().saturating_sub(sent);
    write_ingest_stats(&archive_dir, &stats).map_err(|e| format!("write sidecar: {e}"))?;
    println!(
        "magellan-traced: archived {} report(s) in {} sealed segment(s)",
        summary.records, summary.sealed_segments
    );
    println!(
        "magellan-traced: defense reaped_idle {} refused_conns {} drained_on_signal {}",
        counters.reaped.load(Ordering::SeqCst),
        counters.refused.load(Ordering::SeqCst),
        if drained_on_signal { "yes" } else { "no" },
    );
    print!("{}", stats.render());
    if !stats.balanced() {
        return Err(format!("ingest accounting does not balance: {stats:?}"));
    }
    println!("balanced yes");
    Ok(())
    // Reader threads are detached on purpose: the books are closed,
    // and process exit is the shutdown protocol.
}

fn drive(args: &Args) -> Result<(), String> {
    let params = args.params()?;
    let server = args
        .get("--server")
        .ok_or_else(|| "--server ADDR is required".to_string())?
        .clone();
    let client_id = u32::try_from(
        args.num("--client-id")?
            .ok_or_else(|| "--client-id I is required".to_string())?,
    )
    .map_err(|_| "--client-id out of range".to_string())?;
    let clients = u32::try_from(
        args.num("--clients")?
            .ok_or_else(|| "--clients N is required".to_string())?
            .max(1),
    )
    .map_err(|_| "--clients out of range".to_string())?;
    let transport = args
        .get("--transport")
        .map_or("tcp", String::as_str)
        .to_string();
    let window = args.num("--window")?.unwrap_or(64).max(1) as usize;
    let mark_every = SimDuration::from_mins(args.num("--mark-every-mins")?.unwrap_or(10).max(1));
    let base_ms = args.num("--backoff-base-ms")?.unwrap_or(2);
    let cap_ms = args.num("--backoff-cap-ms")?.unwrap_or(200);
    let max_attempts =
        u32::try_from(args.num("--max-attempts")?.unwrap_or(8).max(1)).unwrap_or(u32::MAX);
    let reconnect = args.num("--reconnect")?;

    // Deterministic per-client backoff jitter: same drill, same
    // delays.
    let backoff_seed = params
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(client_id));
    let backoff = NetBackoff::new(base_ms, cap_ms, max_attempts, backoff_seed);
    let mut uplink = match transport.as_str() {
        "tcp" => NetUplink::connect_tcp(server.as_str(), client_id, clients, window, backoff),
        "udp" => NetUplink::connect_udp(server.as_str(), client_id, clients, backoff),
        other => return Err(format!("--transport {other}: expected tcp or udp")),
    }
    .map_err(|e| format!("connect {server}: {e}"))?;
    if let Some(budget) = reconnect {
        uplink.set_reconnect_budget(u32::try_from(budget).unwrap_or(u32::MAX));
    }

    let cfg = params.study_config();
    let window_end = SimTime::at(params.days, 0, 0);
    let mut sim = OverlaySim::new(cfg.scenario(), cfg.sim.clone());
    let shard_count = clients as usize;
    let me = client_id as usize;
    let mut next_mark = SimTime::ORIGIN + mark_every;
    let mut io_error: Option<std::io::Error> = None;
    // Every client runs the identical full simulation and sends only
    // its partition — no coordination needed for exactly-once
    // coverage.
    let summary = sim
        .run(|r| {
            if io_error.is_some() {
                return;
            }
            // Report times are nondecreasing across ticks, so seeing
            // `next_mark` means everything below it was offered.
            while r.time >= next_mark {
                if let Err(e) = uplink.mark(next_mark) {
                    io_error = Some(e);
                    return;
                }
                next_mark += mark_every;
            }
            if shard_of(r.addr, shard_count) == me {
                if let Err(e) = uplink.send_report(&r) {
                    io_error = Some(e);
                }
            }
        })
        .map_err(|e| format!("simulation: {e}"))?;
    if let Some(e) = io_error {
        return Err(format!("uplink: {e}"));
    }
    uplink
        .mark(window_end)
        .map_err(|e| format!("final mark: {e}"))?;
    let reconnects = uplink.reconnects();
    let stats = uplink.finish().map_err(|e| format!("finish: {e}"))?;
    println!(
        "magellan-traced drive: client {client_id}/{clients} over {transport} — simulated {} \
         report(s); offered {} delivered {} retransmitted {} rejected {} dropped {} attempts {} \
         backoff-capped {} reconnects {}",
        summary.reports,
        stats.offered,
        stats.delivered,
        stats.retransmitted,
        stats.rejected,
        stats.dropped_permanent,
        stats.attempts,
        stats.backoff_capped,
        reconnects,
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args(&argv);
    let result = match argv.first().map(String::as_str) {
        Some("serve") => serve(&args),
        Some("drive") => drive(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
