//! `magellan-traced` — the networked ingest service and its drill
//! client.
//!
//! ```text
//! magellan-traced serve --archive DIR [--listen ADDR] [--clients N]
//!                       [--shards N] [--pending-cap N] [--queue-cap N]
//!                       [--port-file FILE] [--seed N] [--scale F] [--days N]
//!                       [--sample-every-mins N] [--segment-bytes N]
//! magellan-traced drive --server ADDR --client-id I --clients N
//!                       [--transport tcp|udp] [--window N]
//!                       [--mark-every-mins N] [--backoff-base-ms N]
//!                       [--backoff-cap-ms N] [--max-attempts N]
//!                       [--seed N] [--scale F] [--days N]
//!                       [--sample-every-mins N]
//! ```
//!
//! `serve` listens on one port (TCP and UDP simultaneously), ingests
//! `wire`-encoded [`PeerReport`]s from `--clients` concurrent
//! clients through `--shards` independent admission shards, and lands
//! the merged windows in a standard archive under `DIR/archive` plus
//! the `INGEST` accounting sidecar — so `magellan replay --archive
//! DIR` analyzes a networked run exactly like an in-process one. The
//! threading shape mirrors the sans-I/O
//! [`ServiceCore`](magellan::trace::ServiceCore) reference: one owner
//! thread per [`Shard`] behind a bounded FIFO (backpressure sheds
//! `Busy` at the queue, accounted), reader threads that only route,
//! and a coordinator owning the registry and the archive writer.
//!
//! `drive` runs the full deterministic study simulation and streams
//! the partition `shard_of(addr, clients) == client_id` to the
//! service through a [`NetUplink`], marking window boundaries every
//! `--mark-every-mins` of simulated time. N drive processes with the
//! same study parameters cover every report exactly once, which is
//! what makes the multi-process drill reproduce the in-process
//! `StudyReport`.
//!
//! Control messages over UDP are sent blind with redundancy; on a
//! lossy path a fully lost `Hello`/`Finish` can stall the barrier, so
//! the drill (and CI) use TCP and treat UDP as the loss-tolerance
//! exercise.

use bytes::Bytes;
use magellan::netsim::{SimDuration, SimTime};
use magellan::overlay::OverlaySim;
use magellan::runcfg::{cfg_path, RunParams};
use magellan::trace::codec::{self, ClientMsg, FrameReader, ReplyMsg};
use magellan::trace::service::{merge_sorted, write_ingest_stats};
use magellan::trace::shard::{shard_of, Shard, ShardStats};
use magellan::trace::{
    atomic_write, ArchiveWriter, ClientRegistry, IngestStats, NetBackoff, NetUplink, PeerReport,
    StatusCode,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
// lint:allow(P1): service shell, not simulation — channels carry socket traffic whose interleaving is inherently external
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
// lint:allow(P1): service shell — the reply half of a TCP stream is shared between shard workers, nothing simulation-visible
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// Where a shard worker sends the 9-byte reply record.
enum ReplyTo {
    /// The shared write half of the client's TCP stream.
    // lint:allow(P1): service shell — guards only the socket write half; replies are matched by seq, order-free
    Tcp(Arc<Mutex<TcpStream>>),
    /// The server's UDP socket plus the client's return address.
    Udp(Arc<UdpSocket>, SocketAddr),
}

/// One entry in a shard worker's bounded FIFO.
enum ShardCmd {
    /// A report datagram to classify and answer.
    Report {
        payload: Bytes,
        seq: u64,
        reply: ReplyTo,
    },
    /// Seal a window: drain everything below the barrier.
    Drain {
        below: SimTime,
        out: Sender<Vec<PeerReport>>,
    },
    /// Final drain; the worker returns its accounting and exits.
    Stop {
        below: SimTime,
        out: Sender<(Vec<PeerReport>, ShardStats)>,
    },
}

/// Control-plane traffic the readers forward to the coordinator.
enum Ctrl {
    Hello { client_id: u32, clients: u32 },
    Mark { client_id: u32, up_to: SimTime },
    Finish { client_id: u32, sent: u64 },
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  magellan-traced serve --archive DIR [--listen ADDR] [--clients N] [--shards N]\n                        \
         [--pending-cap N] [--queue-cap N] [--port-file FILE]\n                        \
         [--seed N] [--scale F] [--days N] [--sample-every-mins N] [--segment-bytes N]\n  \
         magellan-traced drive --server ADDR --client-id I --clients N [--transport tcp|udp]\n                        \
         [--window N] [--mark-every-mins N] [--backoff-base-ms N] [--backoff-cap-ms N]\n                        \
         [--max-attempts N] [--seed N] [--scale F] [--days N] [--sample-every-mins N]"
    );
    ExitCode::FAILURE
}

/// Writes one reply record, best-effort: a vanished client shows up
/// in the books as client-side loss, never as a server error.
fn send_reply(reply: &ReplyTo, msg: &ReplyMsg) {
    let bytes = codec::encode_reply(msg);
    match reply {
        ReplyTo::Tcp(stream) => {
            let mut s = stream.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = s.write_all(&bytes);
        }
        ReplyTo::Udp(sock, peer) => {
            let _ = sock.send_to(&bytes, *peer);
        }
    }
}

/// A shard worker: sole owner of one [`Shard`], fed by a bounded
/// FIFO. No locks around admission state — the queue is the only
/// synchronization.
fn shard_worker(mut shard: Shard, rx: Receiver<ShardCmd>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ShardCmd::Report {
                payload,
                seq,
                reply,
            } => {
                let status = shard.ingest_wire(&payload);
                send_reply(&reply, &ReplyMsg { seq, status });
            }
            ShardCmd::Drain { below, out } => {
                let _ = out.send(shard.drain_below(below));
            }
            ShardCmd::Stop { below, out } => {
                let _ = out.send((shard.drain_below(below), shard.stats()));
                return;
            }
        }
    }
}

/// Routes one report to its shard's FIFO. A full queue is the
/// overload backpressure path: the reader answers `Busy` itself and
/// the shed is accounted in `queue_shed` so the books still balance.
fn route_report(
    shards: &[SyncSender<ShardCmd>],
    payload: Bytes,
    seq: u64,
    reply: ReplyTo,
    queue_shed: &AtomicU64,
) {
    let idx = codec::peek_report_addr(&payload)
        .map(|addr| shard_of(addr, shards.len()))
        .unwrap_or(0);
    match shards[idx].try_send(ShardCmd::Report {
        payload,
        seq,
        reply,
    }) {
        Ok(()) => {}
        Err(TrySendError::Full(ShardCmd::Report { seq, reply, .. })) => {
            queue_shed.fetch_add(1, Ordering::SeqCst);
            send_reply(
                &reply,
                &ReplyMsg {
                    seq,
                    status: StatusCode::Busy,
                },
            );
        }
        // Disconnected only during shutdown; stragglers count as lost.
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {}
    }
}

/// Serves one TCP connection: length-framed requests in, raw reply
/// records out (written by whichever shard worker classified the
/// report). Returns — closing the connection — on EOF, I/O error, or
/// the first undecodable frame (the stream is desynced beyond repair;
/// the client's datagrams become `lost`).
fn tcp_conn(
    stream: TcpStream,
    shards: Arc<Vec<SyncSender<ShardCmd>>>,
    ctrl: Sender<Ctrl>,
    queue_shed: Arc<AtomicU64>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // A client that stops reading replies must wedge only itself,
    // never a shard worker.
    let _ = write_half.set_write_timeout(Some(Duration::from_secs(5)));
    // lint:allow(P1): service shell — shares the socket write half with shard workers; replies are seq-matched
    let write_half = Arc::new(Mutex::new(write_half));
    let mut stream = stream;
    let mut frames = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        frames.extend(&buf[..n]);
        loop {
            let mut body = match frames.next_frame() {
                Ok(Some(body)) => body,
                Ok(None) => break,
                Err(_) => return,
            };
            let Ok(msg) = codec::decode_client_msg(&mut body) else {
                return;
            };
            let forwarded = match msg {
                ClientMsg::Report { seq, payload } => {
                    route_report(
                        &shards,
                        payload,
                        seq,
                        ReplyTo::Tcp(Arc::clone(&write_half)),
                        &queue_shed,
                    );
                    Ok(())
                }
                ClientMsg::Hello { client_id, clients } => {
                    ctrl.send(Ctrl::Hello { client_id, clients })
                }
                ClientMsg::WindowMark { client_id, up_to } => {
                    ctrl.send(Ctrl::Mark { client_id, up_to })
                }
                ClientMsg::Finish { client_id, sent } => {
                    ctrl.send(Ctrl::Finish { client_id, sent })
                }
            };
            if forwarded.is_err() {
                return; // coordinator gone — shutdown
            }
        }
    }
}

/// Serves the UDP side: one message per datagram, reports answered
/// with one reply datagram, undecodable datagrams silently dropped
/// (they reconcile as `lost` — there is no sequence number to answer).
fn udp_reader(
    sock: Arc<UdpSocket>,
    shards: Arc<Vec<SyncSender<ShardCmd>>>,
    ctrl: Sender<Ctrl>,
    queue_shed: Arc<AtomicU64>,
) {
    let mut buf = [0u8; 64 * 1024];
    loop {
        let (n, peer) = match sock.recv_from(&mut buf) {
            Ok(v) => v,
            Err(_) => continue,
        };
        let mut body = &buf[..n];
        let Ok(msg) = codec::decode_client_msg(&mut body) else {
            continue;
        };
        let forwarded = match msg {
            ClientMsg::Report { seq, payload } => {
                route_report(
                    &shards,
                    payload,
                    seq,
                    ReplyTo::Udp(Arc::clone(&sock), peer),
                    &queue_shed,
                );
                Ok(())
            }
            ClientMsg::Hello { client_id, clients } => {
                ctrl.send(Ctrl::Hello { client_id, clients })
            }
            ClientMsg::WindowMark { client_id, up_to } => {
                ctrl.send(Ctrl::Mark { client_id, up_to })
            }
            ClientMsg::Finish { client_id, sent } => ctrl.send(Ctrl::Finish { client_id, sent }),
        };
        if forwarded.is_err() {
            return;
        }
    }
}

/// Flag-scanning helpers shared by both subcommands.
struct Args<'a>(&'a [String]);

impl Args<'_> {
    fn get(&self, name: &str) -> Option<&String> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
    }

    fn num(&self, name: &str) -> Result<Option<u64>, String> {
        self.get(name)
            .map(|v| v.parse::<u64>().map_err(|e| format!("{name}: {e}")))
            .transpose()
    }

    /// The CLI-settable study parameters both subcommands share —
    /// every drive process and the server must agree on these for the
    /// partition to cover the study exactly once.
    fn params(&self) -> Result<RunParams, String> {
        let mut p = RunParams::default();
        if let Some(v) = self.num("--seed")? {
            p.seed = v;
        }
        if let Some(v) = self.get("--scale") {
            p.scale = v.parse::<f64>().map_err(|e| format!("--scale: {e}"))?;
        }
        if let Some(v) = self.num("--days")? {
            p.days = v;
        }
        if let Some(v) = self.num("--sample-every-mins")? {
            p.sample_every_mins = v;
        }
        if let Some(v) = self.num("--segment-bytes")? {
            p.segment_bytes = v;
        }
        Ok(p)
    }
}

fn serve(args: &Args) -> Result<(), String> {
    let params = args.params()?;
    let dir = PathBuf::from(
        args.get("--archive")
            .ok_or_else(|| "--archive DIR is required".to_string())?,
    );
    let listen = args
        .get("--listen")
        .map_or("127.0.0.1:0", String::as_str)
        .to_string();
    let clients = u32::try_from(args.num("--clients")?.unwrap_or(1).max(1))
        .map_err(|_| "--clients out of range".to_string())?;
    let shards = args.num("--shards")?.unwrap_or(4).max(1) as usize;
    let pending_cap = args.num("--pending-cap")?.unwrap_or(1 << 16).max(1) as usize;
    let queue_cap = args.num("--queue-cap")?.unwrap_or(1024).max(1) as usize;
    let window_end = SimTime::at(params.days, 0, 0);

    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    // The run directory is replay-compatible: study.cfg first, so a
    // killed drill still identifies its parameters.
    atomic_write(&cfg_path(&dir), params.render().as_bytes())
        .map_err(|e| format!("write study.cfg: {e}"))?;
    let archive_dir = dir.join("archive");
    let mut writer = ArchiveWriter::create(&archive_dir, params.durable_config().archive)
        .map_err(|e| format!("create archive: {e}"))?;

    // One owner thread per shard behind a bounded FIFO.
    let mut shard_txs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = sync_channel::<ShardCmd>(queue_cap); // lint:allow(P1): service shell — bounded ingest queue, the backpressure mechanism itself
        let shard = Shard::new(window_end, pending_cap);
        // lint:allow(D3): service shell — shard owner threads live for the whole process; the drill joins them via Stop
        thread::spawn(move || shard_worker(shard, rx));
        shard_txs.push(tx);
    }
    let shard_txs = Arc::new(shard_txs);
    let queue_shed = Arc::new(AtomicU64::new(0));
    let (ctrl_tx, ctrl_rx) = channel::<Ctrl>();

    // TCP and UDP share one port.
    let listener = TcpListener::bind(&listen).map_err(|e| format!("bind tcp {listen}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    let udp = Arc::new(UdpSocket::bind(local).map_err(|e| format!("bind udp {local}: {e}"))?);

    println!(
        "magellan-traced: listening on {local} (tcp+udp), {clients} client(s), {shards} shard(s), \
         pending cap {pending_cap}, queue cap {queue_cap}"
    );
    if let Some(path) = args.get("--port-file") {
        // Written atomically so a polling drill script never reads a
        // half-written address.
        atomic_write(std::path::Path::new(path), local.to_string().as_bytes())
            .map_err(|e| format!("write {path}: {e}"))?;
    }

    {
        let shards = Arc::clone(&shard_txs);
        let ctrl = ctrl_tx.clone();
        let shed = Arc::clone(&queue_shed);
        // lint:allow(D3): service shell — the acceptor lives until process exit; it owns no simulation state
        thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let shards = Arc::clone(&shards);
                let ctrl = ctrl.clone();
                let shed = Arc::clone(&shed);
                // lint:allow(D3): service shell — one reader per connection, detached; connections outlive no window barrier
                thread::spawn(move || tcp_conn(stream, shards, ctrl, shed));
            }
        });
    }
    {
        let sock = Arc::clone(&udp);
        let shards = Arc::clone(&shard_txs);
        let shed = Arc::clone(&queue_shed);
        // lint:allow(D3): service shell — single UDP reader for the whole process lifetime
        thread::spawn(move || udp_reader(sock, shards, ctrl_tx, shed));
    }

    // The coordinator: registry, window barrier, archive.
    let mut registry = ClientRegistry::new(clients);
    let mut merged_below = SimTime::ORIGIN;
    let mut merges = 0u64;
    while !registry.all_finished() {
        let msg = ctrl_rx
            .recv()
            .map_err(|_| "every reader thread died before the drill finished".to_string())?;
        match msg {
            Ctrl::Hello { client_id, clients } => registry.hello(client_id, clients),
            Ctrl::Finish { client_id, sent } => registry.finish(client_id, sent),
            Ctrl::Mark { client_id, up_to } => {
                registry.mark(client_id, up_to);
                let Some(ready) = registry.ready_below() else {
                    continue;
                };
                if ready <= merged_below {
                    continue;
                }
                // Every client flushed everything below `ready`
                // before marking, and the FIFOs preserve that order —
                // the drains see every covered report.
                let mut batches = Vec::with_capacity(shard_txs.len());
                for tx in shard_txs.iter() {
                    let (out, back) = channel();
                    tx.send(ShardCmd::Drain { below: ready, out })
                        .map_err(|_| "shard worker died".to_string())?;
                    batches.push(back.recv().map_err(|_| "shard worker died".to_string())?);
                }
                merged_below = ready;
                merges += 1;
                for r in &merge_sorted(batches) {
                    writer
                        .append(r)
                        .map_err(|e| format!("archive append: {e}"))?;
                }
                writer.sync().map_err(|e| format!("archive sync: {e}"))?;
            }
        }
    }

    // Final drain: stop every shard, merge the tail, close the books.
    let mut totals = ShardStats::default();
    let mut batches = Vec::with_capacity(shard_txs.len());
    for tx in shard_txs.iter() {
        let (out, back) = channel();
        tx.send(ShardCmd::Stop {
            below: window_end,
            out,
        })
        .map_err(|_| "shard worker died".to_string())?;
        let (batch, stats) = back.recv().map_err(|_| "shard worker died".to_string())?;
        batches.push(batch);
        totals.absorb(&stats);
    }
    let final_batch = merge_sorted(batches);
    if !final_batch.is_empty() {
        merges += 1;
    }
    for r in &final_batch {
        writer
            .append(r)
            .map_err(|e| format!("archive append: {e}"))?;
    }
    let summary = writer
        .finish()
        .map_err(|e| format!("archive finish: {e}"))?;

    let sent = registry.total_sent();
    let mut stats = IngestStats {
        clients,
        sent,
        admitted: totals.admitted,
        deduped: totals.deduped,
        shed_busy: totals.shed_busy + queue_shed.load(Ordering::SeqCst),
        rejected: totals.rejected,
        malformed: totals.malformed,
        late: totals.late,
        unavailable: totals.unavailable,
        lost: 0,
        merges,
        protocol_errors: registry.protocol_errors(),
    };
    stats.lost = sent.saturating_sub(stats.received());
    write_ingest_stats(&archive_dir, &stats).map_err(|e| format!("write sidecar: {e}"))?;
    println!(
        "magellan-traced: archived {} report(s) in {} sealed segment(s)",
        summary.records, summary.sealed_segments
    );
    print!("{}", stats.render());
    if !stats.balanced() {
        return Err(format!("ingest accounting does not balance: {stats:?}"));
    }
    println!("balanced yes");
    Ok(())
    // Reader threads are detached on purpose: the books are closed,
    // and process exit is the shutdown protocol.
}

fn drive(args: &Args) -> Result<(), String> {
    let params = args.params()?;
    let server = args
        .get("--server")
        .ok_or_else(|| "--server ADDR is required".to_string())?
        .clone();
    let client_id = u32::try_from(
        args.num("--client-id")?
            .ok_or_else(|| "--client-id I is required".to_string())?,
    )
    .map_err(|_| "--client-id out of range".to_string())?;
    let clients = u32::try_from(
        args.num("--clients")?
            .ok_or_else(|| "--clients N is required".to_string())?
            .max(1),
    )
    .map_err(|_| "--clients out of range".to_string())?;
    let transport = args
        .get("--transport")
        .map_or("tcp", String::as_str)
        .to_string();
    let window = args.num("--window")?.unwrap_or(64).max(1) as usize;
    let mark_every = SimDuration::from_mins(args.num("--mark-every-mins")?.unwrap_or(10).max(1));
    let base_ms = args.num("--backoff-base-ms")?.unwrap_or(2);
    let cap_ms = args.num("--backoff-cap-ms")?.unwrap_or(200);
    let max_attempts =
        u32::try_from(args.num("--max-attempts")?.unwrap_or(8).max(1)).unwrap_or(u32::MAX);

    // Deterministic per-client backoff jitter: same drill, same
    // delays.
    let backoff_seed = params
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(client_id));
    let backoff = NetBackoff::new(base_ms, cap_ms, max_attempts, backoff_seed);
    let mut uplink = match transport.as_str() {
        "tcp" => NetUplink::connect_tcp(server.as_str(), client_id, clients, window, backoff),
        "udp" => NetUplink::connect_udp(server.as_str(), client_id, clients, backoff),
        other => return Err(format!("--transport {other}: expected tcp or udp")),
    }
    .map_err(|e| format!("connect {server}: {e}"))?;

    let cfg = params.study_config();
    let window_end = SimTime::at(params.days, 0, 0);
    let mut sim = OverlaySim::new(cfg.scenario(), cfg.sim.clone());
    let shard_count = clients as usize;
    let me = client_id as usize;
    let mut next_mark = SimTime::ORIGIN + mark_every;
    let mut io_error: Option<std::io::Error> = None;
    // Every client runs the identical full simulation and sends only
    // its partition — no coordination needed for exactly-once
    // coverage.
    let summary = sim
        .run(|r| {
            if io_error.is_some() {
                return;
            }
            // Report times are nondecreasing across ticks, so seeing
            // `next_mark` means everything below it was offered.
            while r.time >= next_mark {
                if let Err(e) = uplink.mark(next_mark) {
                    io_error = Some(e);
                    return;
                }
                next_mark += mark_every;
            }
            if shard_of(r.addr, shard_count) == me {
                if let Err(e) = uplink.send_report(&r) {
                    io_error = Some(e);
                }
            }
        })
        .map_err(|e| format!("simulation: {e}"))?;
    if let Some(e) = io_error {
        return Err(format!("uplink: {e}"));
    }
    uplink
        .mark(window_end)
        .map_err(|e| format!("final mark: {e}"))?;
    let stats = uplink.finish().map_err(|e| format!("finish: {e}"))?;
    println!(
        "magellan-traced drive: client {client_id}/{clients} over {transport} — simulated {} \
         report(s); offered {} delivered {} retransmitted {} rejected {} dropped {} attempts {} \
         backoff-capped {}",
        summary.reports,
        stats.offered,
        stats.delivered,
        stats.retransmitted,
        stats.rejected,
        stats.dropped_permanent,
        stats.attempts,
        stats.backoff_capped,
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args(&argv);
    let result = match argv.first().map(String::as_str) {
        Some("serve") => serve(&args),
        Some("drive") => drive(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
