//! Trace workbench: inspect and export archived traces.
//!
//! ```text
//! tracetool stats    <trace.jsonl | archive-dir>
//! tracetool sessions <trace.jsonl>
//! tracetool snapshot <trace.jsonl> --at d,h,m [--scope stable|all]
//!                    [--format summary|edges|dot] [--out file]
//! tracetool inspect  <archive-dir>
//! tracetool fsck     <archive-dir>
//! ```
//!
//! Traces come from `figures --save-trace` (or any §3.2-conformant
//! JSON-lines archive). `snapshot --format edges|dot` exports the
//! reconstructed topology for networkx / Graphviz. `inspect` and
//! `fsck` operate on the segmented binary archives written by
//! `magellan study`: `inspect` summarizes contents and recovery
//! state, `fsck` exits non-zero when any frame was lost to damage.
//! `stats` on a directory scans the segmented archive instead of a
//! JSONL trace and adds the `magellan-traced` ingest accounting
//! (admitted / deduped / shed / lost and whether the books balance)
//! when the run came through the networked service.

use magellan::analysis::graphs::{active_link_graph, node_isps, NodeScope};
use magellan::analysis::sessions::{stable_sessions, summarize};
use magellan::graph::export::{to_dot, to_edge_list};
use magellan::graph::reciprocity::garlaschelli_reciprocity;
use magellan::graph::smallworld::{assess, SmallWorldConfig};
use magellan::netsim::{IspDatabase, SimTime};
use magellan::trace::{atomic_write, SnapshotBuilder, TraceStats, TraceStore};
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn load(path: &str) -> Result<TraceStore, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    TraceStore::read_jsonl(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tracetool stats    <trace.jsonl | archive-dir>\n  tracetool sessions <trace.jsonl>\n  \
         tracetool snapshot <trace.jsonl> --at d,h,m [--scope stable|all] [--format summary|edges|dot] [--out file]\n  \
         tracetool inspect  <archive-dir>\n  tracetool fsck     <archive-dir>"
    );
    ExitCode::FAILURE
}

/// Accepts either an archive directory or a `magellan study` run
/// directory that contains one.
fn archive_dir(path: &str) -> PathBuf {
    let p = Path::new(path);
    let nested = p.join("archive");
    if nested.is_dir() {
        nested
    } else {
        p.to_path_buf()
    }
}

/// Streams an archive, printing recovery state; returns the exit code
/// (`fsck` fails on any damage, `inspect` only on I/O errors).
fn scan_archive(path: &str, strict: bool) -> ExitCode {
    let dir = archive_dir(path);
    let mut records = 0u64;
    let mut span: Option<(SimTime, SimTime)> = None;
    let mut reporters = std::collections::BTreeSet::new();
    let report = match magellan::trace::archive::read_archive(&dir, |r| {
        records += 1;
        reporters.insert(r.addr.as_u32());
        span = Some(match span {
            None => (r.time, r.time),
            Some((lo, hi)) => (lo.min(r.time), hi.max(r.time)),
        });
    }) {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!("error: read archive {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    println!("archive            : {}", dir.display());
    println!("records recovered  : {records}");
    println!("distinct reporters : {}", reporters.len());
    if let Some((lo, hi)) = span {
        println!("time span          : {lo} .. {hi}");
    }
    println!(
        "segments           : {} ({} sealed)",
        report.segments_read, report.sealed_segments
    );
    println!("corrupt regions    : {}", report.corrupt_regions);
    println!("bytes quarantined  : {}", report.bytes_quarantined);
    println!(
        "torn tail          : {}",
        if report.truncated_tail { "yes" } else { "no" }
    );
    if strict && !report.is_clean() {
        eprintln!("fsck: archive sustained damage");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `stats` on a segmented archive: recovery state plus — when the run
/// came through `magellan-traced` — the full ingest accounting and
/// its balance verdict.
fn archive_stats(path: &str) -> ExitCode {
    let dir = archive_dir(path);
    match magellan::trace::service::read_ingest_stats(&dir) {
        Ok(Some(s)) => {
            println!("--- ingest (magellan-traced service) ---");
            println!("clients            : {}", s.clients);
            println!("sent               : {}", s.sent);
            println!("admitted           : {}", s.admitted);
            println!("deduped            : {}", s.deduped);
            println!("shed busy          : {}", s.shed_busy);
            println!("rejected           : {}", s.rejected);
            println!("malformed          : {}", s.malformed);
            println!("late               : {}", s.late);
            println!("unavailable        : {}", s.unavailable);
            println!("lost in flight     : {}", s.lost);
            println!("window merges      : {}", s.merges);
            println!("protocol errors    : {}", s.protocol_errors);
            println!(
                "books balance      : {}",
                if s.balanced() { "yes" } else { "NO" }
            );
        }
        Ok(None) => println!("--- ingest: no sidecar (in-process archive) ---"),
        Err(e) => {
            eprintln!("error: read ingest sidecar: {e}");
            return ExitCode::FAILURE;
        }
    }
    scan_archive(path, false)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(cmd) = args.get(1) else {
        return usage();
    };
    let Some(path) = args.get(2) else {
        return usage();
    };
    let get = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    // Archive-directory commands never parse JSON lines.
    match cmd.as_str() {
        "inspect" => return scan_archive(path, false),
        "fsck" => return scan_archive(path, true),
        "stats" if Path::new(path).is_dir() => return archive_stats(path),
        _ => {}
    }
    let store = match load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "stats" => {
            let s = TraceStats::compute(&store);
            println!("reports            : {}", s.reports);
            println!("wire volume        : {:.2} MB", s.wire_bytes as f64 / 1e6);
            println!("mean report size   : {:.0} B", s.mean_report_bytes);
            println!("distinct reporters : {}", s.distinct_reporters);
            println!("distinct addresses : {}", s.distinct_addresses);
            println!("mean partners      : {:.1}", s.mean_partners);
            println!("active buckets     : {}", s.active_buckets);
            println!("reports per bucket : {:.1}", s.reports_per_bucket);
            if let Some((lo, hi)) = store.time_span() {
                println!("time span          : {lo} .. {hi}");
            }
            ExitCode::SUCCESS
        }
        "sessions" => {
            let sessions = stable_sessions(&store);
            match summarize(&sessions) {
                Some(s) => {
                    println!("stable sessions    : {}", s.sessions);
                    println!("mean length        : {:.0} min", s.mean_mins);
                    println!("median length      : {:.0} min", s.median_mins);
                    println!("p90 length         : {:.0} min", s.p90_mins);
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("no sessions in trace");
                    ExitCode::FAILURE
                }
            }
        }
        "snapshot" => {
            let Some(at) = get("--at") else {
                eprintln!("snapshot needs --at d,h,m");
                return ExitCode::FAILURE;
            };
            let parts: Vec<u64> = at
                .split(',')
                .filter_map(|p| p.trim().parse().ok())
                .collect();
            if parts.len() != 3 {
                eprintln!("--at wants day,hour,minute (e.g. 0,21,0)");
                return ExitCode::FAILURE;
            }
            let t = SimTime::at(parts[0], parts[1], parts[2]);
            let scope = match get("--scope").as_deref() {
                Some("all") => NodeScope::AllKnown,
                _ => NodeScope::StableOnly,
            };
            let snap = SnapshotBuilder::new(&store).at(t);
            let reports: Vec<_> = snap.reports().cloned().collect();
            let g = active_link_graph(&reports, scope);
            let db = IspDatabase::default();
            let output = match get("--format").as_deref() {
                Some("edges") => to_edge_list(&g),
                Some("dot") => {
                    let isps = node_isps(&g, &db);
                    to_dot(&g, &format!("snapshot_{t}"), |id, _| {
                        Some(isps[id.index()].name().to_owned())
                    })
                }
                _ => {
                    let sw = assess(&g, &SmallWorldConfig::default());
                    let rho = garlaschelli_reciprocity(&g)
                        .map(|v| format!("{v:+.3}"))
                        .unwrap_or_else(|_| "n/a".into());
                    format!(
                        "snapshot at {t}\nstable peers : {}\nknown peers  : {}\nnodes/edges  : {} / {}\nC vs C_rand  : {:.3} vs {:.4}\nL vs L_rand  : {:?} vs {:?}\nreciprocity  : {rho}\nsmall world  : {}\n",
                        snap.stable_count(),
                        snap.known_peers().len(),
                        g.node_count(),
                        g.edge_count(),
                        sw.c,
                        sw.c_rand,
                        sw.l,
                        sw.l_rand,
                        sw.is_small_world
                    )
                }
            };
            match get("--out") {
                Some(out) => {
                    if let Err(e) = atomic_write(Path::new(&out), output.as_bytes()) {
                        eprintln!("write {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {out}");
                }
                None => print!("{output}"),
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
