//! Trace workbench: inspect and export archived traces.
//!
//! ```text
//! tracetool stats    <trace.jsonl | archive-dir>
//! tracetool sessions <trace.jsonl>
//! tracetool snapshot <trace.jsonl> --at d,h,m [--scope stable|all]
//!                    [--format summary|edges|dot] [--out file]
//! tracetool inspect  <archive-dir>
//! tracetool fsck     <archive-dir>
//! tracetool nemesis  --upstream ADDR [--listen ADDR] [--seed N]
//!                    [--profile tcp|udp|off] [--port-file FILE]
//! tracetool nemesis  --print-schedule EVENTS [--flows N] [--seed N]
//!                    [--profile tcp|udp|off]
//! ```
//!
//! Traces come from `figures --save-trace` (or any §3.2-conformant
//! JSON-lines archive). `snapshot --format edges|dot` exports the
//! reconstructed topology for networkx / Graphviz. `inspect` and
//! `fsck` operate on the segmented binary archives written by
//! `magellan study`: `inspect` summarizes contents and recovery
//! state, `fsck` exits non-zero when any frame was lost to damage.
//! `stats` on a directory scans the segmented archive instead of a
//! JSONL trace and adds the `magellan-traced` ingest accounting
//! (admitted / deduped / shed / lost and whether the books balance)
//! when the run came through the networked service.
//!
//! `nemesis` is the deterministic chaos interposer for the hostile
//! ingest drills: it proxies TCP connections and UDP datagrams to
//! `--upstream` while injecting the transport hostility scheduled by
//! [`FlowSchedule`] — latency, partial/coalesced writes, byte flips,
//! duplicates, reorders, connection resets, half-open stalls, and
//! mid-stream kills. The schedule is a pure function of `(--seed,
//! flow index, --profile)`, so a failing drill replays exactly;
//! `--print-schedule` renders the decision table as the byte-for-byte
//! reproducibility witness without opening a socket.

use magellan::analysis::graphs::{active_link_graph, node_isps, NodeScope};
use magellan::analysis::sessions::{stable_sessions, summarize};
use magellan::graph::export::{to_dot, to_edge_list};
use magellan::graph::reciprocity::garlaschelli_reciprocity;
use magellan::graph::smallworld::{assess, SmallWorldConfig};
use magellan::netsim::{IspDatabase, SimTime};
use magellan::trace::{atomic_write, SnapshotBuilder, TraceStats, TraceStore};
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn load(path: &str) -> Result<TraceStore, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    TraceStore::read_jsonl(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tracetool stats    <trace.jsonl | archive-dir>\n  tracetool sessions <trace.jsonl>\n  \
         tracetool snapshot <trace.jsonl> --at d,h,m [--scope stable|all] [--format summary|edges|dot] [--out file]\n  \
         tracetool inspect  <archive-dir>\n  tracetool fsck     <archive-dir>\n  \
         tracetool nemesis  --upstream ADDR [--listen ADDR] [--seed N] [--profile tcp|udp|off] [--port-file FILE]\n  \
         tracetool nemesis  --print-schedule EVENTS [--flows N] [--seed N] [--profile tcp|udp|off]"
    );
    ExitCode::FAILURE
}

/// `nemesis` — the deterministic chaos proxy. Everything hostile it
/// does is decided by [`FlowSchedule`] (pure seeded arithmetic); this
/// code only executes the scheduled socket mischief.
mod nemesis {
    use magellan::netsim::chaos::{
        render_schedule, ChaosAction, ChaosProfile, FlowKind, FlowSchedule,
    };
    use magellan::trace::atomic_write;
    use std::collections::BTreeMap;
    use std::io::{Read, Write};
    use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, UdpSocket};
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;
    use std::time::Duration;

    /// Flow indices are allocated process-wide so every TCP
    /// connection and every UDP source gets an independent schedule.
    static NEXT_FLOW: AtomicU64 = AtomicU64::new(0);

    fn profile_of(name: &str) -> Result<(FlowKind, ChaosProfile), String> {
        match name {
            "tcp" => Ok((FlowKind::Stream, ChaosProfile::tcp_drill())),
            "udp" => Ok((FlowKind::Datagram, ChaosProfile::udp_drill())),
            "off" => Ok((FlowKind::Stream, ChaosProfile::off())),
            other => Err(format!("--profile {other}: expected tcp, udp, or off")),
        }
    }

    /// The chaos-bearing direction of one TCP connection
    /// (client → upstream). Replies flow back through a clean pump —
    /// hostility on the request path is what the service must
    /// survive; a mangled reply would only test the drill client.
    fn pump_chaos(mut from: TcpStream, to: TcpStream, mut sched: FlowSchedule) {
        // The coalesce timer: bytes withheld to ride with the next
        // chunk are flushed after one tick anyway (like Nagle), so a
        // request/reply lockstep never deadlocks on the proxy.
        let _ = from.set_read_timeout(Some(Duration::from_millis(20)));
        let mut held: Vec<u8> = Vec::new();
        let mut buf = [0u8; 8192];
        loop {
            let n = match from.read(&mut buf) {
                Ok(0) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if !held.is_empty() {
                        if (&to).write_all(&held).is_err() {
                            break;
                        }
                        held.clear();
                    }
                    continue;
                }
                Err(_) => break,
                Ok(n) => n,
            };
            held.extend_from_slice(&buf[..n]);
            match sched.next_action() {
                ChaosAction::Coalesce => continue, // withhold; prepend to the next chunk
                ChaosAction::Deliver | ChaosAction::Reorder => {}
                ChaosAction::Delay { ms } => thread::sleep(Duration::from_millis(u64::from(ms))),
                ChaosAction::Stall { ms } => {
                    // Half-open pressure: the connection sits silent,
                    // then resumes — the upstream's idle reaper must
                    // tolerate this without dropping a live client.
                    thread::sleep(Duration::from_millis(u64::from(ms)));
                }
                ChaosAction::FlipBit { offset, bit } => {
                    let i = offset as usize % held.len();
                    held[i] ^= 1 << bit;
                }
                ChaosAction::SplitAt { at_pm } => {
                    let at = ((held.len() as u64 * u64::from(at_pm)) / 1000).max(1) as usize;
                    let at = at.min(held.len());
                    if (&to).write_all(&held[..at]).is_err() {
                        break;
                    }
                    (&to).flush().ok();
                    held.drain(..at);
                    if held.is_empty() {
                        continue;
                    }
                }
                ChaosAction::Duplicate => {
                    if (&to).write_all(&held).is_err() {
                        break;
                    }
                }
                ChaosAction::Drop => {
                    held.clear();
                    continue;
                }
                ChaosAction::Reset => {
                    // The chunk dies with the connection.
                    let _ = to.shutdown(Shutdown::Both);
                    let _ = from.shutdown(Shutdown::Both);
                    return;
                }
                ChaosAction::Kill => {
                    let _ = (&to).write_all(&held);
                    let _ = to.shutdown(Shutdown::Both);
                    let _ = from.shutdown(Shutdown::Both);
                    return;
                }
            }
            if (&to).write_all(&held).is_err() {
                break;
            }
            held.clear();
        }
        // Clean EOF: flush any coalesced remainder, then propagate
        // the half-close so the upstream sees the same stream end.
        if !held.is_empty() {
            let _ = (&to).write_all(&held);
        }
        let _ = to.shutdown(Shutdown::Write);
    }

    /// The clean reply direction (upstream → client).
    fn pump_clean(mut from: TcpStream, to: TcpStream) {
        let mut buf = [0u8; 8192];
        loop {
            let n = match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            if (&to).write_all(&buf[..n]).is_err() {
                break;
            }
        }
        let _ = to.shutdown(Shutdown::Write);
    }

    fn serve_tcp(
        listener: TcpListener,
        upstream: String,
        seed: u64,
        kind: FlowKind,
        profile: ChaosProfile,
    ) {
        for conn in listener.incoming() {
            let Ok(client) = conn else { continue };
            let Ok(server) = TcpStream::connect(upstream.as_str()) else {
                let _ = client.shutdown(Shutdown::Both);
                continue;
            };
            let _ = client.set_nodelay(true);
            let _ = server.set_nodelay(true);
            let flow = NEXT_FLOW.fetch_add(1, Ordering::SeqCst);
            let sched = FlowSchedule::new(seed, flow, kind, profile);
            let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                continue;
            };
            // lint:allow(D3): proxy shell — one pump pair per connection, detached; process exit is shutdown
            thread::spawn(move || pump_chaos(client, server, sched));
            // lint:allow(D3): proxy shell — reply pump, detached
            thread::spawn(move || pump_clean(s2, c2));
        }
    }

    /// One proxied UDP source: its upstream socket and its pending
    /// reordered datagram.
    struct UdpFlow {
        up: std::sync::Arc<UdpSocket>,
        sched: FlowSchedule,
        held: Option<Vec<u8>>,
    }

    /// Connects a fresh upstream socket for one UDP source and starts
    /// its clean reply pump (upstream datagrams back to the client
    /// through the listener socket).
    fn open_udp_flow(
        listener: &std::sync::Arc<UdpSocket>,
        upstream: &str,
        seed: u64,
        profile: ChaosProfile,
        peer: SocketAddr,
    ) -> Option<UdpFlow> {
        let up = UdpSocket::bind("127.0.0.1:0").ok()?;
        up.connect(upstream).ok()?;
        let up = std::sync::Arc::new(up);
        let flow = NEXT_FLOW.fetch_add(1, Ordering::SeqCst);
        {
            let up = std::sync::Arc::clone(&up);
            let down = std::sync::Arc::clone(listener);
            // lint:allow(D3): proxy shell — one reply pump per UDP source, detached
            thread::spawn(move || {
                let mut rbuf = [0u8; 64 * 1024];
                while let Ok(rn) = up.recv(&mut rbuf) {
                    if down.send_to(&rbuf[..rn], peer).is_err() {
                        return;
                    }
                }
            });
        }
        Some(UdpFlow {
            up,
            sched: FlowSchedule::new(seed, flow, FlowKind::Datagram, profile),
            held: None,
        })
    }

    fn serve_udp(
        listener: std::sync::Arc<UdpSocket>,
        upstream: String,
        seed: u64,
        profile: ChaosProfile,
    ) {
        let mut flows: BTreeMap<SocketAddr, UdpFlow> = BTreeMap::new();
        let mut buf = [0u8; 64 * 1024];
        loop {
            let (n, peer) = match listener.recv_from(&mut buf) {
                Ok(v) => v,
                Err(_) => continue,
            };
            let f = match flows.entry(peer) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(v) => {
                    let Some(flow) = open_udp_flow(&listener, &upstream, seed, profile, peer)
                    else {
                        continue;
                    };
                    v.insert(flow)
                }
            };
            let datagram = buf[..n].to_vec();
            match f.sched.next_action() {
                ChaosAction::Drop | ChaosAction::Reset | ChaosAction::Kill => {
                    // No connection to kill on UDP: the datagram is
                    // simply lost.
                }
                ChaosAction::Duplicate => {
                    let _ = f.up.send(&datagram);
                    let _ = f.up.send(&datagram);
                }
                ChaosAction::Reorder => {
                    // Hold one slot; it rides behind the next datagram.
                    match f.held.take() {
                        None => f.held = Some(datagram),
                        Some(prev) => {
                            let _ = f.up.send(&datagram);
                            let _ = f.up.send(&prev);
                        }
                    }
                    continue;
                }
                ChaosAction::Delay { ms } | ChaosAction::Stall { ms } => {
                    thread::sleep(Duration::from_millis(u64::from(ms)));
                    let _ = f.up.send(&datagram);
                }
                ChaosAction::FlipBit { offset, bit } => {
                    let mut d = datagram;
                    let i = offset as usize % d.len().max(1);
                    if let Some(b) = d.get_mut(i) {
                        *b ^= 1 << bit;
                    }
                    let _ = f.up.send(&d);
                }
                // Split/Coalesce have no meaning at datagram
                // granularity; the schedule never emits them for
                // datagram flows, but deliver defensively.
                ChaosAction::Deliver | ChaosAction::SplitAt { .. } | ChaosAction::Coalesce => {
                    let _ = f.up.send(&datagram);
                }
            }
            if let Some(prev) = f.held.take() {
                let _ = f.up.send(&prev);
            }
        }
    }

    /// Entry point for `tracetool nemesis`.
    pub fn run(args: &[String]) -> std::process::ExitCode {
        use std::process::ExitCode as ExitCode2;
        let get = |name: &str| -> Option<String> {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let seed = get("--seed")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(9);
        let (kind, profile) = match profile_of(get("--profile").as_deref().unwrap_or("tcp")) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode2::FAILURE;
            }
        };

        if let Some(events) = get("--print-schedule") {
            let Ok(events) = events.parse::<u32>() else {
                eprintln!("error: --print-schedule wants an event count");
                return ExitCode2::FAILURE;
            };
            let flows = get("--flows")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(4);
            print!("{}", render_schedule(seed, kind, profile, flows, events));
            return ExitCode2::SUCCESS;
        }

        let Some(upstream) = get("--upstream") else {
            eprintln!("error: --upstream ADDR is required");
            return ExitCode2::FAILURE;
        };
        let listen = get("--listen").unwrap_or_else(|| "127.0.0.1:0".to_string());
        let listener = match TcpListener::bind(listen.as_str()) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: bind tcp {listen}: {e}");
                return ExitCode2::FAILURE;
            }
        };
        let Ok(local) = listener.local_addr() else {
            eprintln!("error: local addr");
            return ExitCode2::FAILURE;
        };
        let udp = match UdpSocket::bind(local) {
            Ok(s) => std::sync::Arc::new(s),
            Err(e) => {
                eprintln!("error: bind udp {local}: {e}");
                return ExitCode2::FAILURE;
            }
        };
        println!("tracetool nemesis: interposing {local} -> {upstream} (seed {seed}, {kind:?})");
        if let Some(path) = get("--port-file") {
            if let Err(e) = atomic_write(Path::new(&path), local.to_string().as_bytes()) {
                eprintln!("error: write {path}: {e}");
                return ExitCode2::FAILURE;
            }
        }
        {
            let upstream = upstream.clone();
            // lint:allow(D3): proxy shell — UDP forwarder for the process lifetime
            thread::spawn(move || serve_udp(udp, upstream, seed, profile));
        }
        serve_tcp(listener, upstream, seed, kind, profile);
        ExitCode2::SUCCESS
    }
}

/// Accepts either an archive directory or a `magellan study` run
/// directory that contains one.
fn archive_dir(path: &str) -> PathBuf {
    let p = Path::new(path);
    let nested = p.join("archive");
    if nested.is_dir() {
        nested
    } else {
        p.to_path_buf()
    }
}

/// Streams an archive, printing recovery state; returns the exit code
/// (`fsck` fails on any damage, `inspect` only on I/O errors).
fn scan_archive(path: &str, strict: bool) -> ExitCode {
    let dir = archive_dir(path);
    let mut records = 0u64;
    let mut span: Option<(SimTime, SimTime)> = None;
    let mut reporters = std::collections::BTreeSet::new();
    let report = match magellan::trace::archive::read_archive(&dir, |r| {
        records += 1;
        reporters.insert(r.addr.as_u32());
        span = Some(match span {
            None => (r.time, r.time),
            Some((lo, hi)) => (lo.min(r.time), hi.max(r.time)),
        });
    }) {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!("error: read archive {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    println!("archive            : {}", dir.display());
    println!("records recovered  : {records}");
    println!("distinct reporters : {}", reporters.len());
    if let Some((lo, hi)) = span {
        println!("time span          : {lo} .. {hi}");
    }
    println!(
        "segments           : {} ({} sealed)",
        report.segments_read, report.sealed_segments
    );
    println!("corrupt regions    : {}", report.corrupt_regions);
    println!("bytes quarantined  : {}", report.bytes_quarantined);
    println!(
        "torn tail          : {}",
        if report.truncated_tail { "yes" } else { "no" }
    );
    if strict && !report.is_clean() {
        eprintln!("fsck: archive sustained damage");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `stats` on a segmented archive: recovery state plus — when the run
/// came through `magellan-traced` — the full ingest accounting and
/// its balance verdict.
fn archive_stats(path: &str) -> ExitCode {
    let dir = archive_dir(path);
    match magellan::trace::service::read_ingest_stats(&dir) {
        Ok(Some(s)) => {
            println!("--- ingest (magellan-traced service) ---");
            println!("clients            : {}", s.clients);
            println!("sent               : {}", s.sent);
            println!("admitted           : {}", s.admitted);
            println!("deduped            : {}", s.deduped);
            println!("shed busy          : {}", s.shed_busy);
            println!("rate limited       : {}", s.rate_limited);
            println!("rejected           : {}", s.rejected);
            println!("malformed          : {}", s.malformed);
            println!("late               : {}", s.late);
            println!("unavailable        : {}", s.unavailable);
            println!("lost in flight     : {}", s.lost);
            println!("surplus received   : {}", s.surplus);
            println!("evicted clients    : {}", s.evicted);
            println!("window merges      : {}", s.merges);
            println!("protocol errors    : {}", s.protocol_errors);
            println!(
                "books balance      : {}",
                if s.balanced() { "yes" } else { "NO" }
            );
        }
        Ok(None) => println!("--- ingest: no sidecar (in-process archive) ---"),
        Err(e) => {
            eprintln!("error: read ingest sidecar: {e}");
            return ExitCode::FAILURE;
        }
    }
    scan_archive(path, false)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(cmd) = args.get(1) else {
        return usage();
    };
    // The chaos proxy takes no positional path.
    if cmd == "nemesis" {
        return nemesis::run(&args);
    }
    let Some(path) = args.get(2) else {
        return usage();
    };
    let get = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    // Archive-directory commands never parse JSON lines.
    match cmd.as_str() {
        "inspect" => return scan_archive(path, false),
        "fsck" => return scan_archive(path, true),
        "stats" if Path::new(path).is_dir() => return archive_stats(path),
        _ => {}
    }
    let store = match load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "stats" => {
            let s = TraceStats::compute(&store);
            println!("reports            : {}", s.reports);
            println!("wire volume        : {:.2} MB", s.wire_bytes as f64 / 1e6);
            println!("mean report size   : {:.0} B", s.mean_report_bytes);
            println!("distinct reporters : {}", s.distinct_reporters);
            println!("distinct addresses : {}", s.distinct_addresses);
            println!("mean partners      : {:.1}", s.mean_partners);
            println!("active buckets     : {}", s.active_buckets);
            println!("reports per bucket : {:.1}", s.reports_per_bucket);
            if let Some((lo, hi)) = store.time_span() {
                println!("time span          : {lo} .. {hi}");
            }
            ExitCode::SUCCESS
        }
        "sessions" => {
            let sessions = stable_sessions(&store);
            match summarize(&sessions) {
                Some(s) => {
                    println!("stable sessions    : {}", s.sessions);
                    println!("mean length        : {:.0} min", s.mean_mins);
                    println!("median length      : {:.0} min", s.median_mins);
                    println!("p90 length         : {:.0} min", s.p90_mins);
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("no sessions in trace");
                    ExitCode::FAILURE
                }
            }
        }
        "snapshot" => {
            let Some(at) = get("--at") else {
                eprintln!("snapshot needs --at d,h,m");
                return ExitCode::FAILURE;
            };
            let parts: Vec<u64> = at
                .split(',')
                .filter_map(|p| p.trim().parse().ok())
                .collect();
            if parts.len() != 3 {
                eprintln!("--at wants day,hour,minute (e.g. 0,21,0)");
                return ExitCode::FAILURE;
            }
            let t = SimTime::at(parts[0], parts[1], parts[2]);
            let scope = match get("--scope").as_deref() {
                Some("all") => NodeScope::AllKnown,
                _ => NodeScope::StableOnly,
            };
            let snap = SnapshotBuilder::new(&store).at(t);
            let reports: Vec<_> = snap.reports().cloned().collect();
            let g = active_link_graph(&reports, scope);
            let db = IspDatabase::default();
            let output = match get("--format").as_deref() {
                Some("edges") => to_edge_list(&g),
                Some("dot") => {
                    let isps = node_isps(&g, &db);
                    to_dot(&g, &format!("snapshot_{t}"), |id, _| {
                        Some(isps[id.index()].name().to_owned())
                    })
                }
                _ => {
                    let sw = assess(&g, &SmallWorldConfig::default());
                    let rho = garlaschelli_reciprocity(&g)
                        .map(|v| format!("{v:+.3}"))
                        .unwrap_or_else(|_| "n/a".into());
                    format!(
                        "snapshot at {t}\nstable peers : {}\nknown peers  : {}\nnodes/edges  : {} / {}\nC vs C_rand  : {:.3} vs {:.4}\nL vs L_rand  : {:?} vs {:?}\nreciprocity  : {rho}\nsmall world  : {}\n",
                        snap.stable_count(),
                        snap.known_peers().len(),
                        g.node_count(),
                        g.edge_count(),
                        sw.c,
                        sw.c_rand,
                        sw.l,
                        sw.l_rand,
                        sw.is_small_world
                    )
                }
            };
            match get("--out") {
                Some(out) => {
                    if let Err(e) = atomic_write(Path::new(&out), output.as_bytes()) {
                        eprintln!("write {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {out}");
                }
                None => print!("{output}"),
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
