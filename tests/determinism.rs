//! Same-seed determinism of the whole pipeline.
//!
//! The Magellan analyses are only reproducible if the simulator is a
//! pure function of its scenario seed: two independent runs with the
//! same seed must produce *byte-identical* trace archives, down to the
//! iteration order of every internal collection. This is the dynamic
//! counterpart of `magellan-lint`'s static D1/D2 rules — the lint pass
//! bans the sources of nondeterminism (hash iteration, wall clocks,
//! entropy), and this test catches anything the ban missed.

use magellan::netsim::StudyCalendar;
use magellan::overlay::{OverlaySim, SimConfig};
use magellan::prelude::*;
use magellan::workload::DiurnalProfile;

fn archive_bytes(seed: u64) -> Vec<u8> {
    let scenario = Scenario::builder(seed, 0.0004)
        .calendar(StudyCalendar { window_days: 1 })
        .diurnal(DiurnalProfile::flat())
        .build();
    let mut sim = OverlaySim::new(scenario, SimConfig::default());
    let (store, summary) = sim.run_collecting().expect("run succeeds");
    assert!(summary.reports > 0, "a run with no reports proves nothing");
    let mut buf = Vec::new();
    store
        .write_jsonl(&mut buf)
        .expect("in-memory serialization succeeds");
    buf
}

/// FNV-1a, so a mismatch shows up as a compact hash diff before the
/// (potentially megabytes-long) byte diff.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = archive_bytes(2006);
    let b = archive_bytes(2006);
    assert_eq!(
        fnv1a(&a),
        fnv1a(&b),
        "same-seed trace archives hash differently: the simulator leaked nondeterminism"
    );
    assert_eq!(a, b, "hash collision hid a byte-level divergence");
}

#[test]
fn different_seeds_diverge() {
    let a = archive_bytes(2006);
    let b = archive_bytes(2007);
    assert_ne!(
        fnv1a(&a),
        fnv1a(&b),
        "different seeds produced identical archives: the seed is not reaching the simulator"
    );
}
