//! Same-seed determinism of the whole pipeline.
//!
//! The Magellan analyses are only reproducible if the simulator is a
//! pure function of its scenario seed: two independent runs with the
//! same seed must produce *byte-identical* trace archives, down to the
//! iteration order of every internal collection. This is the dynamic
//! counterpart of `magellan-lint`'s static D1/D2 rules — the lint pass
//! bans the sources of nondeterminism (hash iteration, wall clocks,
//! entropy), and this test catches anything the ban missed.

use magellan::analysis::study::{MagellanStudy, StudyConfig};
use magellan::netsim::{SimDuration, SimTime, StudyCalendar};
use magellan::overlay::{OverlaySim, SimConfig};
use magellan::prelude::*;
use magellan::workload::DiurnalProfile;

fn archive_bytes_with(seed: u64, faults: FaultPlan) -> Vec<u8> {
    let mut b = Scenario::builder(seed, 0.0004)
        .calendar(StudyCalendar { window_days: 1 })
        .diurnal(DiurnalProfile::flat());
    if !faults.is_empty() {
        b = b.faults(faults);
    }
    let scenario = b.build();
    let mut sim = OverlaySim::new(scenario, SimConfig::default());
    let (store, summary) = sim.run_collecting().expect("run succeeds");
    assert!(summary.reports > 0, "a run with no reports proves nothing");
    let mut buf = Vec::new();
    store
        .write_jsonl(&mut buf)
        .expect("in-memory serialization succeeds");
    buf
}

fn archive_bytes(seed: u64) -> Vec<u8> {
    archive_bytes_with(seed, FaultPlan::default())
}

/// FNV-1a, so a mismatch shows up as a compact hash diff before the
/// (potentially megabytes-long) byte diff.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = archive_bytes(2006);
    let b = archive_bytes(2006);
    assert_eq!(
        fnv1a(&a),
        fnv1a(&b),
        "same-seed trace archives hash differently: the simulator leaked nondeterminism"
    );
    assert_eq!(a, b, "hash collision hid a byte-level divergence");
}

/// A small full study whose report exercises every parallel kernel:
/// clustering, sampled paths, small-world, reciprocity.
fn study_report_debug(seed: u64) -> String {
    let cfg = StudyConfig {
        seed,
        scale: 0.0008,
        window_days: 2,
        sample_every: SimDuration::from_hours(2),
        degree_captures: vec![("9pm d1".into(), SimTime::at(1, 21, 0))],
        min_graph_nodes: 10,
        ..StudyConfig::default()
    };
    format!("{:?}", MagellanStudy::new(cfg).run())
}

#[test]
fn thread_count_does_not_change_output_bytes() {
    // The parallel-equivalence guarantee of magellan-par: the worker
    // count trades wall clock only, never output. Same seed at 1 and
    // 8 workers must yield a byte-identical trace archive and an
    // identical StudyReport (the Debug rendering covers every series
    // point of every figure, so any f64 that drifted by one ulp under
    // a different reduction order would show here).
    magellan::par::set_threads(1);
    let archive_seq = archive_bytes(2006);
    let report_seq = study_report_debug(2006);
    magellan::par::set_threads(8);
    let archive_par = archive_bytes(2006);
    let report_par = study_report_debug(2006);
    magellan::par::set_threads(0);
    assert_eq!(
        fnv1a(&archive_seq),
        fnv1a(&archive_par),
        "trace archives diverge across thread counts"
    );
    assert_eq!(archive_seq, archive_par);
    assert_eq!(
        report_seq, report_par,
        "StudyReport diverges across thread counts"
    );
}

#[test]
fn fault_runs_are_byte_identical_across_repeats_and_thread_counts() {
    // The fault subsystem draws every probabilistic event (crash
    // membership, report loss) from its own RNG fork, so a faulted
    // run must be exactly as reproducible as a clean one — same seed,
    // same plan, same bytes, at any worker count.
    magellan::par::set_threads(1);
    let a = archive_bytes_with(2006, FaultPlan::combined_stress(0));
    magellan::par::set_threads(8);
    let b = archive_bytes_with(2006, FaultPlan::combined_stress(0));
    magellan::par::set_threads(0);
    assert_eq!(
        fnv1a(&a),
        fnv1a(&b),
        "same-seed fault-injected archives hash differently"
    );
    assert_eq!(a, b, "hash collision hid a byte-level divergence");
    // And the plan must actually change the run relative to clean.
    assert_ne!(
        fnv1a(&a),
        fnv1a(&archive_bytes(2006)),
        "the combined stress plan had no effect on the trace"
    );
}

#[test]
fn different_seeds_diverge() {
    let a = archive_bytes(2006);
    let b = archive_bytes(2007);
    assert_ne!(
        fnv1a(&a),
        fnv1a(&b),
        "different seeds produced identical archives: the seed is not reaching the simulator"
    );
}

#[test]
fn incremental_engine_matches_full_recompute_bytes() {
    // The incremental snapshot engine behind the study's Fig. 7
    // clustering and Fig. 8 reciprocity must be interchangeable with a
    // from-scratch rebuild at every boundary — not just approximately,
    // but in the exact bytes of every metric it answers. (The library
    // asserts this internally in debug builds; this test keeps the
    // guarantee pinned in release runs too.) Drive one engine through
    // an evolving overlay-like snapshot sequence with link churn,
    // weight growth, and node turnover, and compare every metric's
    // bit pattern against a fresh engine built from the same snapshot.
    use magellan::graph::IncrementalTopology;

    let g = magellan::graph::random::watts_strogatz(150, 6, 0.2, 42);
    let mut edges: Vec<(u32, u32, u64)> = g
        .edges()
        .map(|e| (e.from.index() as u32, e.to.index() as u32, e.weight.max(1)))
        .collect();
    edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
    let mut nodes: Vec<u32> = (0..150).collect();

    let mut live = IncrementalTopology::new();
    for round in 0u64..10 {
        // Persisting links accumulate weight; a slice of links churns
        // out; a new peer joins with two links.
        for e in edges.iter_mut() {
            e.2 += round;
        }
        let cut = edges.len() / 12;
        edges.drain(..cut);
        let fresh = 500 + round as u32;
        edges.push((fresh, (round as u32) % 100, 5));
        edges.push(((round as u32) % 100, fresh, 3));
        edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        edges.dedup_by_key(|&mut (u, v, _)| (u, v));
        nodes.push(fresh);
        nodes.sort_unstable();
        nodes.dedup();

        live.sync_snapshot(&nodes, &edges);
        let rebuilt = IncrementalTopology::from_snapshot(&nodes, &edges);
        assert!(
            live == rebuilt,
            "round {round}: incremental state diverged from rebuild"
        );
        assert_eq!(
            live.clustering_coefficient().to_bits(),
            rebuilt.clustering_coefficient().to_bits(),
            "round {round}: clustering bytes diverged"
        );
        assert_eq!(
            live.garlaschelli_reciprocity().map(f64::to_bits),
            rebuilt.garlaschelli_reciprocity().map(f64::to_bits),
            "round {round}: reciprocity bytes diverged"
        );
        assert_eq!(
            live.weighted_reciprocity().map(f64::to_bits),
            rebuilt.weighted_reciprocity().map(f64::to_bits),
            "round {round}: weighted reciprocity bytes diverged"
        );
    }
}
