//! Integration of the simulator with the measurement substrate:
//! simulated reports survive the wire codec, the JSON-lines store,
//! and snapshot reconstruction unchanged.

use magellan::netsim::{SimTime, StudyCalendar};
use magellan::overlay::{OverlaySim, SimConfig};
use magellan::prelude::*;
use magellan::trace::{jsonl, wire, SnapshotBuilder, TraceServer, TraceStore};
use magellan::workload::DiurnalProfile;
use std::sync::OnceLock;

fn sim_store() -> &'static TraceStore {
    static STORE: OnceLock<TraceStore> = OnceLock::new();
    STORE.get_or_init(|| {
        let scenario = Scenario::builder(31337, 0.0004)
            .calendar(StudyCalendar { window_days: 1 })
            .diurnal(DiurnalProfile::flat())
            .flash_crowds(vec![])
            .build();
        let mut sim = OverlaySim::new(scenario, SimConfig::default());
        let (store, summary) = sim.run_collecting().expect("run succeeds");
        assert!(
            summary.reports > 100,
            "too few reports for the roundtrip suite"
        );
        store
    })
}

#[test]
fn every_simulated_report_roundtrips_on_the_wire() {
    let store = sim_store();
    for r in store.reports().iter().take(500) {
        let datagram = wire::encode(r);
        let back = wire::decode(&mut datagram.clone()).expect("simulated report decodes");
        assert_eq!(&back, r);
    }
}

#[test]
fn every_simulated_report_roundtrips_as_jsonl() {
    let store = sim_store();
    for r in store.reports().iter().take(500) {
        let line = jsonl::to_json_line(r);
        let back = jsonl::from_json_line(&line).expect("simulated report parses");
        assert_eq!(&back, r);
    }
}

#[test]
fn store_persistence_preserves_everything() {
    let store = sim_store();
    let mut buf = Vec::new();
    store.write_jsonl(&mut buf).unwrap();
    let reloaded = TraceStore::read_jsonl(&buf[..]).unwrap();
    assert_eq!(reloaded.len(), store.len());
    assert_eq!(reloaded.reports(), store.reports());
}

#[test]
fn snapshots_from_reloaded_store_match() {
    let store = sim_store();
    let mut buf = Vec::new();
    store.write_jsonl(&mut buf).unwrap();
    let reloaded = TraceStore::read_jsonl(&buf[..]).unwrap();
    let t = SimTime::at(0, 12, 0);
    let a = SnapshotBuilder::new(store).at(t);
    let b = SnapshotBuilder::new(&reloaded).at(t);
    assert_eq!(a.stable_count(), b.stable_count());
    assert_eq!(a.known_peers(), b.known_peers());
}

#[test]
fn simulated_reports_pass_server_validation_via_wire() {
    let store = sim_store();
    let mut server = TraceServer::new(SimTime::at(2, 0, 0));
    for r in store.reports().iter().take(300) {
        server
            .submit_wire(wire::encode(r))
            .expect("validated simulated datagram");
    }
    assert_eq!(server.stats().rejected, 0);
    assert_eq!(server.len(), 300.min(store.len()));
}

#[test]
fn snapshot_population_is_monotone_with_staleness() {
    use magellan::netsim::SimDuration;
    let store = sim_store();
    let t = SimTime::at(0, 12, 0);
    let tight = SnapshotBuilder::new(store)
        .staleness(SimDuration::from_mins(10))
        .at(t)
        .stable_count();
    let loose = SnapshotBuilder::new(store)
        .staleness(SimDuration::from_mins(30))
        .at(t)
        .stable_count();
    assert!(tight <= loose, "tight {tight} > loose {loose}");
    assert!(loose > 0);
}

#[test]
fn report_times_respect_the_study_schedule() {
    use magellan::trace::{FIRST_REPORT_DELAY, REPORT_INTERVAL};
    let store = sim_store();
    let mut by_peer: std::collections::HashMap<PeerAddr, Vec<SimTime>> =
        std::collections::HashMap::new();
    for r in store.reports() {
        by_peer.entry(r.addr).or_default().push(r.time);
    }
    let mut spacing_checked = 0;
    for times in by_peer.values() {
        for w in times.windows(2) {
            assert_eq!(w[1].since(w[0]), REPORT_INTERVAL);
            spacing_checked += 1;
        }
    }
    assert!(spacing_checked > 50, "spacing checks: {spacing_checked}");
    // First reports happen at least FIRST_REPORT_DELAY after the
    // window start (peers cannot join before t = 0).
    let earliest = store.reports().iter().map(|r| r.time).min().unwrap();
    assert!(earliest >= SimTime::ORIGIN + FIRST_REPORT_DELAY);
}
