//! Hostile-network and crash-recovery drills against the real
//! `magellan-traced` binary, with `tracetool nemesis` interposed as a
//! deterministic chaos proxy.
//!
//! Three contracts are exercised end to end:
//!
//! 1. **Chaos transparency** — the TCP drill profile (latency,
//!    fragmentation, coalescing, stalls, resets, kills; never
//!    corruption) must not change the analysis: drives with a
//!    reconnect budget pointed *through* the proxy must land an
//!    archive whose `magellan replay` is byte-identical to the
//!    in-process study's, with every casualty accounted.
//! 2. **Drain** — `SIGTERM` mid-run must seal the in-flight window,
//!    flush the sidecars, and exit 0 with balanced partial books.
//! 3. **Crash-resume** — `kill -9` mid-run followed by `serve
//!    --resume` and a re-drive must converge on the same replay as an
//!    uninterrupted run, re-receives reconciling as `Late`/`surplus`
//!    rather than duplicate archive records.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn magellan_bin() -> &'static str {
    env!("CARGO_BIN_EXE_magellan")
}

fn traced_bin() -> &'static str {
    env!("CARGO_BIN_EXE_magellan-traced")
}

fn tracetool_bin() -> &'static str {
    env!("CARGO_BIN_EXE_tracetool")
}

/// Same scenario the plain ingest drill uses: small, seconds-fast,
/// identical for the in-process study and every networked run.
const PARAMS: [&str; 8] = [
    "--seed",
    "9",
    "--scale",
    "0.0005",
    "--days",
    "1",
    "--sample-every-mins",
    "240",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("magellan-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn wait_for_addr(port_file: &Path, owner: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = std::fs::read_to_string(port_file) {
            let s = s.trim();
            if !s.is_empty() {
                return s.to_string();
            }
        }
        if let Some(status) = owner.try_wait().expect("poll child") {
            panic!("process exited before binding: {status:?}");
        }
        assert!(Instant::now() < deadline, "no port file appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Polls until `path` exists — the first `INGEST.resume` checkpoint,
/// i.e. proof the run is mid-window — failing fast if serve dies.
fn wait_for_checkpoint(path: &Path, serve: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !path.exists() {
        if let Some(status) = serve.try_wait().expect("poll serve") {
            panic!("serve exited before the first checkpoint: {status:?}");
        }
        assert!(Instant::now() < deadline, "no checkpoint appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_success(mut child: Child, what: &str) -> String {
    let mut out = String::new();
    if let Some(mut stdout) = child.stdout.take() {
        stdout.read_to_string(&mut out).expect("read child stdout");
    }
    let status = child.wait().expect("wait child");
    assert!(status.success(), "{what} failed ({status:?}):\n{out}");
    out
}

/// Reaps a child whose exit status is irrelevant (a drive whose
/// server was killed under it, a proxy at teardown).
fn wait_ignored(mut child: Child) {
    let _ = child.kill();
    let _ = child.wait();
}

fn signal(child: &Child, sig: &str) {
    let ok = Command::new("kill")
        .args([sig, &child.id().to_string()])
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill {sig} {} failed", child.id());
}

fn replay_filtered(dir: &Path) -> String {
    let out = Command::new(magellan_bin())
        .args(["replay", "--archive", &dir.to_string_lossy()])
        .output()
        .expect("spawn magellan replay");
    assert!(out.status.success(), "replay failed: {out:?}");
    String::from_utf8(out.stdout)
        .expect("utf8 report")
        .lines()
        .filter(|l| !l.starts_with("Ingest"))
        .map(|l| format!("{l}\n"))
        .collect()
}

fn in_process_study(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    let out = Command::new(magellan_bin())
        .arg("study")
        .args(["--archive", &dir.to_string_lossy()])
        .args(PARAMS)
        .output()
        .expect("spawn magellan study");
    assert!(out.status.success(), "in-process study failed: {out:?}");
    dir
}

fn serve(dir: &Path, port_file: &Path, extra: &[&str]) -> Child {
    Command::new(traced_bin())
        .arg("serve")
        .args(["--archive", &dir.to_string_lossy()])
        .args(["--listen", "127.0.0.1:0"])
        .args(["--port-file", &port_file.to_string_lossy()])
        .args(PARAMS)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn magellan-traced serve")
}

fn drive(addr: &str, client_id: u32, clients: u32, extra: &[&str]) -> Child {
    Command::new(traced_bin())
        .arg("drive")
        .args(["--server", addr])
        .args(["--client-id", &client_id.to_string()])
        .args(["--clients", &clients.to_string()])
        .args(PARAMS)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn magellan-traced drive")
}

fn nemesis(upstream: &str, port_file: &Path, profile: &str, seed: u64) -> Child {
    Command::new(tracetool_bin())
        .arg("nemesis")
        .args(["--upstream", upstream])
        .args(["--listen", "127.0.0.1:0"])
        .args(["--port-file", &port_file.to_string_lossy()])
        .args(["--profile", profile])
        .args(["--seed", &seed.to_string()])
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn tracetool nemesis")
}

/// Two TCP drives through the nemesis proxy under the full TCP drill
/// profile: splits, coalesces, delays, stalls, resets, and kills —
/// survived by the reconnect budget — must leave the analysis
/// byte-identical to the in-process study, books balanced.
#[test]
fn tcp_chaos_drill_is_invisible_to_the_analysis() {
    let inproc = in_process_study("tcp-inproc");
    let traced = temp_dir("tcp-drill");
    let serve_port = traced.join("port");
    let proxy_port = traced.join("proxy-port");

    let mut server = serve(&traced, &serve_port, &["--clients", "2", "--shards", "2"]);
    let upstream = wait_for_addr(&serve_port, &mut server);
    let mut proxy = nemesis(&upstream, &proxy_port, "tcp", 9);
    let chaos_addr = wait_for_addr(&proxy_port, &mut proxy);

    let extra = ["--transport", "tcp", "--reconnect", "64"];
    let d0 = drive(&chaos_addr, 0, 2, &extra);
    let d1 = drive(&chaos_addr, 1, 2, &extra);
    wait_success(d0, "drive 0 through chaos");
    wait_success(d1, "drive 1 through chaos");
    let serve_out = wait_success(server, "serve behind chaos");
    wait_ignored(proxy);

    assert!(
        serve_out.contains("balanced yes"),
        "chaos broke the balance identity:\n{serve_out}"
    );
    assert_eq!(
        replay_filtered(&inproc),
        replay_filtered(&traced),
        "transport chaos changed the analysis"
    );

    std::fs::remove_dir_all(&inproc).ok();
    std::fs::remove_dir_all(&traced).ok();
}

/// One UDP drive through the nemesis datagram profile — loss,
/// duplication, reordering, corruption, latency. Delivery is not
/// guaranteed, so the contract is the accounting one: the service
/// exits 0 with every datagram attributed (balanced books), even if
/// the barrier has to evict a silenced client.
#[test]
fn udp_chaos_drill_stays_balanced() {
    let traced = temp_dir("udp-drill");
    let serve_port = traced.join("port");
    let proxy_port = traced.join("proxy-port");

    let mut server = serve(
        &traced,
        &serve_port,
        &[
            "--clients",
            "1",
            "--shards",
            "1",
            "--barrier-timeout-ms",
            "3000",
        ],
    );
    let upstream = wait_for_addr(&serve_port, &mut server);
    let mut proxy = nemesis(&upstream, &proxy_port, "udp", 9);
    let chaos_addr = wait_for_addr(&proxy_port, &mut proxy);

    let d = drive(
        &chaos_addr,
        0,
        1,
        &[
            "--transport",
            "udp",
            "--max-attempts",
            "6",
            "--backoff-cap-ms",
            "8",
        ],
    );
    wait_success(d, "UDP drive through chaos");
    let serve_out = wait_success(server, "serve behind UDP chaos");
    wait_ignored(proxy);

    assert!(
        serve_out.contains("balanced yes"),
        "UDP chaos broke the balance identity:\n{serve_out}"
    );

    std::fs::remove_dir_all(&traced).ok();
}

/// The chaos schedule is a pure function of the seed: two
/// `--print-schedule` invocations agree byte for byte, and a
/// different seed diverges — a failing drill is replayable.
#[test]
fn nemesis_schedule_is_reproducible_per_seed() {
    let print = |seed: &str, profile: &str| -> String {
        let out = Command::new(tracetool_bin())
            .arg("nemesis")
            .args(["--print-schedule", "64", "--flows", "4"])
            .args(["--seed", seed])
            .args(["--profile", profile])
            .output()
            .expect("spawn tracetool nemesis --print-schedule");
        assert!(out.status.success(), "print-schedule failed: {out:?}");
        String::from_utf8(out.stdout).expect("utf8 schedule")
    };
    let a = print("42", "tcp");
    let b = print("42", "tcp");
    assert_eq!(a, b, "same seed must print the same schedule");
    assert_ne!(a, print("43", "tcp"), "different seeds must diverge");
    assert_ne!(a, print("42", "udp"), "profiles must diverge");
}

/// SIGTERM mid-window: the service seals what it has, flushes the
/// sidecars, reports the drain, and exits 0 with balanced partial
/// books — at one shard and at eight.
#[test]
fn sigterm_drains_seals_and_exits_zero() {
    for shards in ["1", "8"] {
        let traced = temp_dir(&format!("drain-{shards}"));
        let serve_port = traced.join("port");
        let checkpoint = traced.join("archive").join("INGEST.resume");

        let mut server = serve(
            &traced,
            &serve_port,
            &["--clients", "2", "--shards", shards],
        );
        let addr = wait_for_addr(&serve_port, &mut server);
        let d0 = drive(&addr, 0, 2, &["--transport", "tcp"]);
        let d1 = drive(&addr, 1, 2, &["--transport", "tcp"]);

        wait_for_checkpoint(&checkpoint, &mut server);
        signal(&server, "-TERM");
        let serve_out = wait_success(server, "serve after SIGTERM");
        wait_ignored(d0);
        wait_ignored(d1);

        assert!(
            serve_out.contains("drained_on_signal yes"),
            "[{shards} shards] drain not reported:\n{serve_out}"
        );
        assert!(
            serve_out.contains("balanced yes"),
            "[{shards} shards] drain broke the balance identity:\n{serve_out}"
        );
        // The partial archive is a valid run: replay must work.
        let replay = replay_filtered(&traced);
        assert!(
            !replay.is_empty(),
            "[{shards} shards] drained archive does not replay"
        );

        std::fs::remove_dir_all(&traced).ok();
    }
}

/// kill -9 mid-window, then `serve --resume` and a full re-drive:
/// the books are restored from the checkpoint, the torn tail is
/// truncated, re-received reports shed as `Late` below the frontier,
/// and the final replay is byte-identical to an uninterrupted
/// in-process study — at one shard and at eight.
#[test]
fn kill_nine_resume_converges_on_the_uninterrupted_study() {
    let inproc = in_process_study("resume-inproc");
    let want = replay_filtered(&inproc);

    for shards in ["1", "8"] {
        let traced = temp_dir(&format!("resume-{shards}"));
        let serve_port = traced.join("port");
        let checkpoint = traced.join("archive").join("INGEST.resume");
        let flags = ["--clients", "2", "--shards", shards];

        let mut server = serve(&traced, &serve_port, &flags);
        let addr = wait_for_addr(&serve_port, &mut server);
        let d0 = drive(&addr, 0, 2, &["--transport", "tcp"]);
        let d1 = drive(&addr, 1, 2, &["--transport", "tcp"]);

        // Crash for real the moment the run is provably mid-window.
        wait_for_checkpoint(&checkpoint, &mut server);
        signal(&server, "-KILL");
        let _ = server.wait();
        wait_ignored(d0);
        wait_ignored(d1);

        // Resume from the checkpoint and run the whole drill again.
        std::fs::remove_file(&serve_port).ok();
        let mut server = serve(&traced, &serve_port, &[&flags[..], &["--resume"]].concat());
        let addr = wait_for_addr(&serve_port, &mut server);
        let d0 = drive(&addr, 0, 2, &["--transport", "tcp"]);
        let d1 = drive(&addr, 1, 2, &["--transport", "tcp"]);
        wait_success(d0, "re-drive 0");
        wait_success(d1, "re-drive 1");
        let serve_out = wait_success(server, "serve --resume");

        assert!(
            serve_out.contains("resumed at"),
            "[{shards} shards] resume did not restore a checkpoint:\n{serve_out}"
        );
        assert!(
            serve_out.contains("balanced yes"),
            "[{shards} shards] resume broke the balance identity:\n{serve_out}"
        );
        assert_eq!(
            want,
            replay_filtered(&traced),
            "[{shards} shards] crash-resume changed the analysis"
        );

        std::fs::remove_dir_all(&traced).ok();
    }
    std::fs::remove_dir_all(&inproc).ok();
}
