//! Robustness of the study to measurement loss: the real trace
//! arrived as UDP datagrams and some never made it. Pushing the full
//! simulated report stream through a lossy path must degrade counts,
//! not conclusions — the snapshot design (staleness horizon > one
//! report interval) tolerates missed reports by construction.

use magellan::netsim::{SimTime, StudyCalendar};
use magellan::overlay::{OverlaySim, SimConfig};
use magellan::prelude::*;
use magellan::trace::loss::LossyCollector;
use magellan::trace::{SnapshotBuilder, TraceServer, TraceStats, TraceStore};
use magellan::workload::DiurnalProfile;
use std::sync::OnceLock;

fn collect(drop_prob: f64) -> (TraceStore, magellan::trace::loss::LossStats) {
    let scenario = Scenario::builder(2112, 0.0005)
        .calendar(StudyCalendar { window_days: 1 })
        .diurnal(DiurnalProfile::flat())
        .flash_crowds(vec![])
        .build();
    let mut sim = OverlaySim::new(scenario, SimConfig::default());
    let mut server = TraceServer::new(SimTime::at(2, 0, 0));
    let mut chan = LossyCollector::new(&mut server, drop_prob, 0.01, 7);
    sim.run(|r| chan.transmit(&r)).expect("run succeeds");
    let stats = chan.stats();
    (server.into_store(), stats)
}

fn pristine() -> &'static TraceStore {
    static STORE: OnceLock<TraceStore> = OnceLock::new();
    STORE.get_or_init(|| collect(0.0).0)
}

fn lossy() -> &'static (TraceStore, magellan::trace::loss::LossStats) {
    static PAIR: OnceLock<(TraceStore, magellan::trace::loss::LossStats)> = OnceLock::new();
    PAIR.get_or_init(|| collect(0.2))
}

#[test]
fn loss_reduces_volume_proportionally() {
    let clean = pristine();
    let (dirty, stats) = lossy();
    assert!(stats.dropped > 0);
    let kept = dirty.len() as f64 / clean.len() as f64;
    // 20% drop + 1% corruption → ~79% kept, binomial noise aside.
    assert!(
        (0.72..=0.86).contains(&kept),
        "kept fraction {kept:.3} inconsistent with 20% loss"
    );
}

#[test]
fn snapshots_survive_loss() {
    let clean = pristine();
    let (dirty, _) = lossy();
    let t = SimTime::at(0, 18, 0);
    let clean_snap = SnapshotBuilder::new(clean).at(t);
    let dirty_snap = SnapshotBuilder::new(dirty).at(t);
    let clean_n = clean_snap.stable_count() as f64;
    let dirty_n = dirty_snap.stable_count() as f64;
    assert!(dirty_n > 0.0, "loss wiped the snapshot out");
    // The staleness horizon (1.5 report intervals) covers one or two
    // reports per peer, so a 20% drop rate costs at most ~20% of the
    // snapshot (less for peers with two covered reports) — allow for
    // binomial noise on a few dozen peers.
    assert!(
        dirty_n / clean_n > 0.6,
        "stable population collapsed: {dirty_n} vs {clean_n}"
    );
}

#[test]
fn topology_conclusions_survive_loss() {
    use magellan::analysis::graphs::{active_link_graph, NodeScope};
    use magellan::graph::reciprocity::garlaschelli_reciprocity;
    let clean = pristine();
    let (dirty, _) = lossy();
    let t = SimTime::at(0, 18, 0);
    let graph_of = |store: &TraceStore| {
        let snap = SnapshotBuilder::new(store).at(t);
        let reports: Vec<_> = snap.reports().cloned().collect();
        active_link_graph(&reports, NodeScope::AllKnown)
    };
    let g_clean = graph_of(clean);
    let g_dirty = graph_of(dirty);
    let rho_clean = garlaschelli_reciprocity(&g_clean).unwrap();
    let rho_dirty = garlaschelli_reciprocity(&g_dirty).unwrap();
    assert!(
        rho_clean > 0.0 && rho_dirty > 0.0,
        "reciprocity sign flipped"
    );
    assert!(
        (rho_clean - rho_dirty).abs() < 0.15,
        "rho moved too much under loss: {rho_clean:.3} vs {rho_dirty:.3}"
    );
}

#[test]
fn stats_account_for_the_session() {
    let (dirty, stats) = lossy();
    assert_eq!(stats.delivered, dirty.len() as u64);
    assert_eq!(
        stats.sent,
        stats.delivered + stats.dropped + stats.rejected_by_server
    );
    let ts = TraceStats::compute(dirty);
    assert_eq!(ts.reports, dirty.len() as u64);
    assert!(ts.mean_partners > 1.0);
    assert!(ts.wire_bytes > 0);
}

#[test]
fn volume_projection_reaches_the_papers_order_of_magnitude() {
    // The paper: ~120 GB in two months at scale 1.0. Our 1-day,
    // scale-0.0005 trace projected to scale 1.0 over two months must
    // land within an order of magnitude of that.
    let clean = pristine();
    let ts = TraceStats::compute(clean);
    let projected_gb = ts.projected_bytes(1.0, 1.0 / 0.0005, 2.0) / 1e9;
    assert!(
        (12.0..=1200.0).contains(&projected_gb),
        "projected volume {projected_gb:.1} GB implausible vs the paper's 120 GB"
    );
}
