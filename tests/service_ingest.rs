//! Multi-process ingest drills against the real `magellan-traced`
//! binary.
//!
//! The service's contract is that distribution must be invisible to
//! the analysis: N drive processes streaming wire-encoded reports over
//! loopback sockets into one serve process must produce an archive
//! whose `magellan replay` report is byte-identical to replaying an
//! in-process `magellan study` archive of the same scenario (modulo
//! the `Ingest` accounting lines only the service writes). And under
//! deliberate overload the service must shed — not stall, not grow
//! without bound, not panic — with every report accounted for in the
//! balance identity `sent == admitted + deduped + shed + ... + lost`.

use magellan::trace::codec::{encode_client_msg, frame, ClientMsg};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn magellan_bin() -> &'static str {
    env!("CARGO_BIN_EXE_magellan")
}

fn traced_bin() -> &'static str {
    env!("CARGO_BIN_EXE_magellan-traced")
}

/// Shared scenario parameters, small enough to finish in seconds and
/// identical for the in-process study and the networked drill.
const PARAMS: [&str; 8] = [
    "--seed",
    "9",
    "--scale",
    "0.0005",
    "--days",
    "1",
    "--sample-every-mins",
    "240",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("magellan-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Polls the serve process's `--port-file` until the bound address
/// appears, failing fast if the server dies first.
fn wait_for_addr(port_file: &Path, serve: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = std::fs::read_to_string(port_file) {
            let s = s.trim();
            if !s.is_empty() {
                return s.to_string();
            }
        }
        if let Some(status) = serve.try_wait().expect("poll serve") {
            panic!("serve exited before binding: {status:?}");
        }
        assert!(Instant::now() < deadline, "serve never wrote its port file");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_success(mut child: Child, what: &str) -> String {
    let mut out = String::new();
    if let Some(mut stdout) = child.stdout.take() {
        stdout.read_to_string(&mut out).expect("read child stdout");
    }
    let status = child.wait().expect("wait child");
    assert!(status.success(), "{what} failed ({status:?}):\n{out}");
    out
}

/// `magellan replay` text with the service-only `Ingest` lines
/// stripped, so traced and in-process archives compare equal.
fn replay_filtered(dir: &Path) -> String {
    let out = Command::new(magellan_bin())
        .args(["replay", "--archive", &dir.to_string_lossy()])
        .output()
        .expect("spawn magellan replay");
    assert!(out.status.success(), "replay failed: {out:?}");
    String::from_utf8(out.stdout)
        .expect("utf8 report")
        .lines()
        .filter(|l| !l.starts_with("Ingest"))
        .map(|l| format!("{l}\n"))
        .collect()
}

fn serve(dir: &Path, port_file: &Path, extra: &[&str]) -> Child {
    Command::new(traced_bin())
        .arg("serve")
        .args(["--archive", &dir.to_string_lossy()])
        .args(["--listen", "127.0.0.1:0"])
        .args(["--port-file", &port_file.to_string_lossy()])
        .args(PARAMS)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn magellan-traced serve")
}

fn drive(addr: &str, client_id: u32, clients: u32, extra: &[&str]) -> Child {
    Command::new(traced_bin())
        .arg("drive")
        .args(["--server", addr])
        .args(["--client-id", &client_id.to_string()])
        .args(["--clients", &clients.to_string()])
        .args(PARAMS)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn magellan-traced drive")
}

/// Two TCP clients, partitioned by peer address, against one serve
/// process: the replayed report must match the in-process study's.
#[test]
fn multi_process_drill_matches_in_process_study() {
    let inproc = temp_dir("inproc");
    let traced = temp_dir("traced");
    let port_file = traced.join("port");

    let out = Command::new(magellan_bin())
        .arg("study")
        .args(["--archive", &inproc.to_string_lossy()])
        .args(PARAMS)
        .output()
        .expect("spawn magellan study");
    assert!(out.status.success(), "in-process study failed: {out:?}");

    let mut server = serve(&traced, &port_file, &["--clients", "2", "--shards", "2"]);
    let addr = wait_for_addr(&port_file, &mut server);
    let d0 = drive(&addr, 0, 2, &["--transport", "tcp"]);
    let d1 = drive(&addr, 1, 2, &["--transport", "tcp"]);
    wait_success(d0, "drive 0");
    wait_success(d1, "drive 1");
    let serve_out = wait_success(server, "serve");
    assert!(
        serve_out.contains("balanced yes"),
        "serve accounting did not balance:\n{serve_out}"
    );
    assert!(
        serve_out.lines().any(|l| l == "lost 0"),
        "TCP drill lost reports:\n{serve_out}"
    );

    assert_eq!(
        replay_filtered(&inproc),
        replay_filtered(&traced),
        "distributed ingest changed the analysis"
    );

    std::fs::remove_dir_all(&inproc).ok();
    std::fs::remove_dir_all(&traced).ok();
}

/// One UDP client against a serve process with deliberately tiny
/// queues and few client retries: the service must shed (not stall)
/// and still account for every report it did not admit.
#[test]
fn overload_sheds_gracefully_and_stays_balanced() {
    let traced = temp_dir("overload");
    let port_file = traced.join("port");

    let mut server = serve(
        &traced,
        &port_file,
        &[
            "--clients",
            "1",
            "--shards",
            "1",
            "--pending-cap",
            "8",
            "--queue-cap",
            "2",
        ],
    );
    let addr = wait_for_addr(&port_file, &mut server);
    let d = drive(
        &addr,
        0,
        1,
        &[
            "--transport",
            "udp",
            "--max-attempts",
            "3",
            "--backoff-cap-ms",
            "8",
        ],
    );
    wait_success(d, "drive under overload");
    let serve_out = wait_success(server, "serve under overload");

    assert!(
        serve_out.contains("balanced yes"),
        "overload broke the balance identity:\n{serve_out}"
    );
    let shed: u64 = serve_out
        .lines()
        .find_map(|l| l.strip_prefix("shed_busy "))
        .and_then(|w| w.parse().ok())
        .expect("shed_busy count in serve output");
    assert!(
        shed > 0,
        "tiny queues should have shed reports:\n{serve_out}"
    );

    std::fs::remove_dir_all(&traced).ok();
}

/// Parses one `key N` column out of the serve transcript.
fn stat(serve_out: &str, key: &str) -> u64 {
    serve_out
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| panic!("no `{key}` column in serve output:\n{serve_out}"))
}

/// A slowloris connection — opened, fed two bytes of a frame prefix,
/// then held silent — must be reaped by the idle deadline instead of
/// pinning a reader thread, while a legitimate client drills through
/// unharmed.
#[test]
fn slowloris_connection_is_reaped_not_serviced_forever() {
    let traced = temp_dir("slowloris");
    let port_file = traced.join("port");

    let mut server = serve(
        &traced,
        &port_file,
        &[
            "--clients",
            "1",
            "--shards",
            "1",
            "--idle-timeout-ms",
            "300",
        ],
    );
    let addr = wait_for_addr(&port_file, &mut server);

    // The attack: a half-open connection that never completes a frame.
    let mut loris = TcpStream::connect(&addr).expect("connect slowloris");
    loris.write_all(&[0u8, 0u8]).expect("send partial prefix");

    let d = drive(&addr, 0, 1, &["--transport", "tcp"]);
    wait_success(d, "drive alongside slowloris");
    let serve_out = wait_success(server, "serve under slowloris");
    drop(loris);

    let reaped: u64 = serve_out
        .lines()
        .find_map(|l| l.strip_prefix("magellan-traced: defense reaped_idle "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|w| w.parse().ok())
        .expect("defense line in serve output");
    assert!(
        reaped >= 1,
        "the slowloris connection was never reaped:\n{serve_out}"
    );
    assert!(
        serve_out.contains("balanced yes"),
        "slowloris broke the balance identity:\n{serve_out}"
    );
    assert_eq!(stat(&serve_out, "lost"), 0, "legit client lost reports");

    std::fs::remove_dir_all(&traced).ok();
}

/// A client that says Hello and then vanishes must be evicted at the
/// barrier deadline so the surviving client's windows still seal —
/// a partial, accounted run instead of a wedged merge pipeline.
#[test]
fn vanished_client_degrades_to_partial_seal() {
    let traced = temp_dir("vanished");
    let port_file = traced.join("port");

    let mut server = serve(
        &traced,
        &port_file,
        &[
            "--clients",
            "2",
            "--shards",
            "2",
            "--barrier-timeout-ms",
            "700",
        ],
    );
    let addr = wait_for_addr(&port_file, &mut server);

    // Client 1 joins the roster and then dies without a word.
    let mut ghost = TcpStream::connect(&addr).expect("connect ghost client");
    ghost
        .write_all(&frame(&encode_client_msg(&ClientMsg::Hello {
            client_id: 1,
            clients: 2,
        })))
        .expect("send hello");
    drop(ghost);

    let d = drive(&addr, 0, 2, &["--transport", "tcp"]);
    wait_success(d, "surviving drive");
    let serve_out = wait_success(server, "serve with vanished client");

    assert!(
        serve_out.contains("balanced yes"),
        "vanished client broke the balance identity:\n{serve_out}"
    );
    assert_eq!(
        stat(&serve_out, "evicted"),
        1,
        "the ghost client was not evicted:\n{serve_out}"
    );
    assert!(
        serve_out.contains("barrier deadline"),
        "no partial-seal eviction was reported:\n{serve_out}"
    );
    assert!(
        stat(&serve_out, "merges") > 0,
        "the surviving client's windows never sealed:\n{serve_out}"
    );

    std::fs::remove_dir_all(&traced).ok();
}

/// With a per-connection token bucket armed, a full-speed client gets
/// throttled with the retryable `RateLimited` verdict — visible in
/// the books, with every throttled report eventually delivered.
#[test]
fn rate_limited_reports_are_throttled_retried_and_accounted() {
    let traced = temp_dir("ratelimit");
    let port_file = traced.join("port");

    let mut server = serve(
        &traced,
        &port_file,
        &[
            "--clients",
            "1",
            "--shards",
            "2",
            "--rate-limit",
            "600",
            "--rate-burst",
            "8",
        ],
    );
    let addr = wait_for_addr(&port_file, &mut server);
    let d = drive(
        &addr,
        0,
        1,
        &[
            "--transport",
            "tcp",
            "--max-attempts",
            "64",
            "--backoff-cap-ms",
            "50",
        ],
    );
    wait_success(d, "drive under rate limiting");
    let serve_out = wait_success(server, "serve under rate limiting");

    assert!(
        serve_out.contains("balanced yes"),
        "rate limiting broke the balance identity:\n{serve_out}"
    );
    assert!(
        stat(&serve_out, "rate_limited") > 0,
        "a full-speed client never tripped the token bucket:\n{serve_out}"
    );
    assert_eq!(
        stat(&serve_out, "lost"),
        0,
        "throttled reports must be retried, not lost:\n{serve_out}"
    );

    std::fs::remove_dir_all(&traced).ok();
}
