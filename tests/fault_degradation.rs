//! End-to-end measurement degradation under the combined stress
//! schedule: 10% baseline report loss, a midday trace-server outage,
//! an afternoon inter-ISP partition, an evening loss spike, a
//! prime-time tracker outage, and a 15% ungraceful crash wave.
//!
//! The claim under test is the tentpole of the fault subsystem: the
//! study *degrades gracefully*. Counters record every injected event,
//! samples whose horizon overlaps the server outage are flagged
//! partial instead of silently averaged, and the paper's qualitative
//! findings (small-world clustering, positive reciprocity, bounded
//! indegree) survive within stated tolerances.

use magellan::analysis::study::{MagellanStudy, StudyConfig};
use magellan::netsim::{SimDuration, SimTime};
use magellan::prelude::*;
use std::sync::OnceLock;

fn base_config() -> StudyConfig {
    StudyConfig {
        seed: 77,
        scale: 0.0008,
        window_days: 2,
        sample_every: SimDuration::from_hours(2),
        degree_captures: vec![
            ("9pm d1".into(), SimTime::at(1, 21, 0)),
            ("12:30 d1 (mid-outage)".into(), SimTime::at(1, 12, 30)),
        ],
        min_graph_nodes: 10,
        ..StudyConfig::default()
    }
}

fn clean() -> &'static StudyReport {
    static R: OnceLock<StudyReport> = OnceLock::new();
    R.get_or_init(|| MagellanStudy::new(base_config()).run())
}

fn faulted() -> &'static StudyReport {
    static R: OnceLock<StudyReport> = OnceLock::new();
    R.get_or_init(|| {
        let mut cfg = base_config();
        cfg.faults = FaultPlan::combined_stress(1);
        MagellanStudy::new(cfg).run()
    })
}

#[test]
fn every_scheduled_fault_class_fires_and_is_counted() {
    let r = faulted();
    let f = &r.sim.faults;
    assert!(f.crashes > 0, "crash wave did not fire");
    assert!(f.reports_lost > 0, "report loss did not fire");
    assert!(
        f.tracker_denied_joins > 0,
        "tracker outage denied no bootstrap"
    );
    assert!(
        f.bootstrap_retries > 0 && f.bootstrap_recoveries > 0,
        "denied peers never retried/recovered: retries {} recoveries {}",
        f.bootstrap_retries,
        f.bootstrap_recoveries
    );
    assert!(
        f.links_blocked > 0 || f.flows_blocked > 0,
        "the partition severed nothing"
    );
    assert!(f.partner_timeouts > 0, "no dead partner was timed out");
    // The clean twin counts no injected events.
    let cf = &clean().sim.faults;
    assert_eq!(
        (cf.crashes, cf.reports_lost, cf.tracker_denied_joins),
        (0, 0, 0)
    );
}

#[test]
fn samples_inside_the_outage_are_flagged_partial_not_averaged() {
    let r = faulted();
    assert!(
        !r.partial_samples.is_empty(),
        "no sample flagged partial despite a one-hour server outage"
    );
    for p in &r.partial_samples {
        assert!(
            (0.0..1.0).contains(&p.coverage),
            "bad coverage {}",
            p.coverage
        );
    }
    // Flagged instants are excluded from the figure series.
    assert_eq!(
        r.fig1a.stable.len() + r.partial_samples.len(),
        clean().fig1a.stable.len(),
        "partial samples were not excised from the series"
    );
    // The mid-outage degree capture carries its coverage flag, and the
    // rendered report surfaces both the flag and the counters.
    let cap = r
        .fig4
        .snapshots
        .iter()
        .find(|s| s.label.contains("mid-outage"))
        .expect("capture present");
    assert!(cap.coverage < 1.0, "capture not marked partial");
    let text = r.render_text();
    assert!(text.contains("PARTIAL"), "render lacks the partial flag");
    assert!(text.contains("Faults —"), "render lacks fault counters");
    assert!(clean().partial_samples.is_empty());
}

#[test]
fn qualitative_findings_survive_the_combined_stress() {
    let c = clean();
    let d = faulted();
    // Fig. 7: the graph stays strongly clustered relative to random in
    // both runs, with short paths.
    let (rc, rd) = (
        c.fig7.global.clustering_ratio(),
        d.fig7.global.clustering_ratio(),
    );
    assert!(
        rc > 1.5 && rd > 1.5,
        "small-world clustering signal lost: clean {rc:.2} faulted {rd:.2}"
    );
    let (lc, ld) = (c.fig7.global.l.mean(), d.fig7.global.l.mean());
    assert!(
        (lc - ld).abs() < 1.0,
        "path length moved too much: clean {lc:.2} faulted {ld:.2}"
    );
    // Fig. 8: reciprocity stays positive and close.
    let (pc, pd) = (c.fig8.all.mean(), d.fig8.all.mean());
    assert!(
        pc > 0.0 && pd > 0.0,
        "reciprocity sign flipped: clean {pc:.3} faulted {pd:.3}"
    );
    assert!(
        (pc - pd).abs() < 0.15,
        "reciprocity moved too much: clean {pc:.3} faulted {pd:.3}"
    );
    // The population dips (crashes, denied joins) but does not
    // collapse, and indegree stays in the paper's regime.
    let (sc, sd) = (c.fig1a.stable.mean(), d.fig1a.stable.mean());
    assert!(
        sd > 0.5 * sc,
        "stable population collapsed: clean {sc:.0} faulted {sd:.0}"
    );
    assert!(
        d.fig5.indegree.mean() < 30.0,
        "mean indegree blew up: {:.1}",
        d.fig5.indegree.mean()
    );
}
