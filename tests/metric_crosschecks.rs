//! Cross-crate validation of the metric implementations against
//! graphs with known properties, through the same code paths the
//! study uses.

use magellan::graph::clustering::clustering_coefficient;
use magellan::graph::paths::{average_path_length, PathSampling, PathTreatment};
use magellan::graph::powerlaw;
use magellan::graph::random::{
    barabasi_albert, gnm_directed, gnm_undirected, measured_baseline, watts_strogatz,
    RandomBaseline,
};
use magellan::graph::reciprocity::{garlaschelli_reciprocity, simple_reciprocity};
use magellan::graph::smallworld::{assess, SmallWorldConfig};

#[test]
fn watts_strogatz_passes_the_small_world_test_er_fails() {
    let ws = watts_strogatz(500, 8, 0.08, 11);
    let er = gnm_undirected(500, 2_000, 11);
    let cfg = SmallWorldConfig::default();
    assert!(assess(&ws, &cfg).is_small_world, "WS not small world");
    assert!(!assess(&er, &cfg).is_small_world, "ER flagged small world");
}

#[test]
fn ba_degrees_look_power_law_ws_degrees_do_not() {
    let ba = barabasi_albert(4_000, 2, 5);
    let ba_deg: Vec<usize> = ba.node_ids().map(|i| ba.undirected_degree(i)).collect();
    let v = powerlaw::assess(&ba_deg).unwrap();
    assert!(
        v.plausible,
        "BA rejected: ks {} thr {}",
        v.fit.ks, v.threshold
    );

    let ws = watts_strogatz(4_000, 8, 0.05, 5);
    let ws_deg: Vec<usize> = ws.node_ids().map(|i| ws.undirected_degree(i)).collect();
    let v = powerlaw::assess(&ws_deg).unwrap();
    assert!(!v.plausible, "WS accepted as power law");
}

#[test]
fn er_reciprocity_is_near_zero_and_symmetrized_is_one() {
    let g = gnm_directed(800, 4_000, 9);
    let rho = garlaschelli_reciprocity(&g).unwrap();
    assert!(rho.abs() < 0.05, "ER rho = {rho}");

    // Symmetrize.
    let mut sym = g.clone();
    let edges: Vec<_> = g.edges().collect();
    for e in edges {
        sym.add_edge(e.to, e.from, e.weight);
    }
    assert!((simple_reciprocity(&sym) - 1.0).abs() < 1e-12);
    let rho_sym = garlaschelli_reciprocity(&sym).unwrap();
    assert!((rho_sym - 1.0).abs() < 1e-9, "sym rho = {rho_sym}");
}

#[test]
fn analytic_and_measured_er_baselines_agree() {
    let n = 600;
    let m = 3_000;
    let analytic = RandomBaseline::analytic(n, m);
    let measured = measured_baseline(n, m, 3, PathSampling::Exact);
    assert!((measured.c - analytic.c_expected).abs() < 0.01);
    let l = measured.l.unwrap();
    let le = analytic.l_expected.unwrap();
    assert!((l - le).abs() < 0.6, "L measured {l} vs analytic {le}");
}

#[test]
fn lattice_metrics_are_exact() {
    // Ring lattice k=4: C = 1/2, known closed form.
    let lattice = watts_strogatz(100, 4, 0.0, 0);
    assert!((clustering_coefficient(&lattice) - 0.5).abs() < 1e-9);
    // Average path on an n-ring with k=4 grows ~ n/8 — far above ER.
    let l = average_path_length(&lattice, PathTreatment::Undirected, PathSampling::Exact)
        .unwrap()
        .mean;
    assert!(l > 5.0, "lattice L = {l}");
}

#[test]
fn sampled_estimators_track_exact_values() {
    let g = watts_strogatz(1_000, 8, 0.1, 21);
    let exact_l = average_path_length(&g, PathTreatment::Undirected, PathSampling::Exact)
        .unwrap()
        .mean;
    let sampled_l = average_path_length(
        &g,
        PathTreatment::Undirected,
        PathSampling::Sources {
            count: 100,
            seed: 2,
        },
    )
    .unwrap()
    .mean;
    assert!(
        (exact_l - sampled_l).abs() / exact_l < 0.05,
        "exact {exact_l} vs sampled {sampled_l}"
    );
    let exact_c = clustering_coefficient(&g);
    let sampled_c = magellan::graph::clustering::sampled_clustering(&g, 300, 4);
    assert!(
        (exact_c - sampled_c).abs() < 0.05,
        "exact {exact_c} vs sampled {sampled_c}"
    );
}
