//! End-to-end integration: workload → overlay simulation → trace
//! collection → analysis, exercising the crates together the way the
//! examples and benches do.

use magellan::analysis::study::{MagellanStudy, StudyConfig};
use magellan::netsim::{SimDuration, SimTime};
use std::sync::OnceLock;

fn quick_config() -> StudyConfig {
    StudyConfig {
        seed: 99,
        scale: 0.0008,
        window_days: 2,
        sample_every: SimDuration::from_hours(2),
        degree_captures: vec![
            ("9am d1".into(), SimTime::at(1, 9, 0)),
            ("9pm d1".into(), SimTime::at(1, 21, 0)),
        ],
        min_graph_nodes: 10,
        ..StudyConfig::default()
    }
}

fn shared_report() -> &'static magellan::prelude::StudyReport {
    static REPORT: OnceLock<magellan::prelude::StudyReport> = OnceLock::new();
    REPORT.get_or_init(|| MagellanStudy::new(quick_config()).run())
}

#[test]
fn every_figure_is_populated() {
    let r = shared_report();
    assert!(!r.fig1a.total.is_empty());
    assert!(!r.fig1a.stable.is_empty());
    assert_eq!(r.fig1b.total.len(), 2);
    assert!(!r.fig2.shares.is_empty());
    assert!(!r.fig3.cctv1.is_empty());
    assert_eq!(r.fig4.snapshots.len(), 2);
    assert!(!r.fig5.partners.is_empty());
    assert!(!r.fig6.indegree.is_empty());
    assert!(!r.fig7.global.c.is_empty());
    assert!(!r.fig8.all.is_empty());
}

#[test]
fn population_series_are_consistent() {
    let r = shared_report();
    // Stable peers are a subset of total peers at every aligned sample.
    for (&(ts, stable), &(tt, total)) in r
        .fig1a
        .stable
        .points
        .iter()
        .zip(r.fig1a.total.points.iter())
    {
        assert_eq!(ts, tt, "misaligned sampling grids");
        assert!(
            stable <= total,
            "stable {stable} exceeds total {total} at {ts}"
        );
    }
    // Daily distinct stable IPs cannot exceed total IPs.
    for (&(d1, total), &(d2, stable)) in r.fig1b.total.iter().zip(r.fig1b.stable.iter()) {
        assert_eq!(d1, d2);
        assert!(stable <= total);
    }
}

#[test]
fn isp_shares_sum_to_one_and_are_ordered() {
    let r = shared_report();
    let sum: f64 = r.fig2.shares.iter().map(|&(_, s)| s).sum();
    assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
    // Telecom dominates Netcom dominates Unicom, as configured.
    use magellan::netsim::Isp;
    assert!(r.fig2.share(Isp::Telecom) > r.fig2.share(Isp::Netcom));
    assert!(r.fig2.share(Isp::Netcom) > r.fig2.share(Isp::Unicom));
}

#[test]
fn quality_fractions_are_valid_probabilities() {
    let r = shared_report();
    for series in [&r.fig3.cctv1, &r.fig3.cctv4] {
        for &(_, v) in &series.points {
            assert!((0.0..=1.0).contains(&v), "quality fraction {v}");
        }
    }
}

#[test]
fn degree_histograms_count_stable_peers() {
    let r = shared_report();
    for snap in &r.fig4.snapshots {
        assert_eq!(snap.partners.total(), snap.indegree.total());
        assert_eq!(snap.partners.total(), snap.outdegree.total());
        // The stable count at the capture should match fig1a roughly;
        // exact equality against the nearest sample is not guaranteed
        // (different boundary instants), so assert it is plausible.
        assert!(snap.partners.total() > 0);
    }
}

#[test]
fn intra_isp_fractions_are_valid_and_above_baseline() {
    let r = shared_report();
    for series in [&r.fig6.indegree, &r.fig6.outdegree] {
        for &(_, v) in &series.points {
            assert!((0.0..=1.0).contains(&v));
        }
    }
    // The paper's clustering claim, in miniature: the measured
    // intra-ISP fraction beats random mixing on average.
    assert!(
        r.fig6.indegree.mean() > r.fig6.baseline,
        "indegree fraction {:.3} not above baseline {:.3}",
        r.fig6.indegree.mean(),
        r.fig6.baseline
    );
}

#[test]
fn smallworld_series_are_aligned_and_positive() {
    let r = shared_report();
    let sw = &r.fig7.global;
    assert_eq!(sw.c.len(), sw.c_rand.len());
    assert_eq!(sw.l.len(), sw.l_rand.len());
    for &(_, v) in &sw.c.points {
        assert!((0.0..=1.0).contains(&v));
    }
    for &(_, v) in &sw.l.points {
        assert!(v >= 1.0, "path length {v} below 1");
    }
}

#[test]
fn reciprocity_is_in_range_and_positive_on_average() {
    let r = shared_report();
    for series in [&r.fig8.all, &r.fig8.intra, &r.fig8.inter] {
        for &(_, v) in &series.points {
            assert!(v <= 1.0 + 1e-9, "rho {v} above 1");
            assert!(v.is_finite());
        }
    }
    assert!(r.fig8.all.mean() > 0.0, "mesh not reciprocal");
}

#[test]
fn report_renders_without_panicking() {
    let text = shared_report().render_text();
    assert!(text.contains("Fig 1(A)"));
    assert!(text.contains("Fig 4"));
    assert!(text.contains("Fig 8"));
    // CSV renderers too.
    assert!(shared_report().fig1a.to_csv().lines().count() > 2);
    assert!(shared_report().fig8.to_csv().starts_with("time_ms"));
}

#[test]
fn locality_aware_tracker_raises_intra_isp_share() {
    // The future-work extension: a tracker that bootstraps 70% of
    // partners from the joiner's ISP must visibly shift active links
    // intra-ISP relative to the paper's oblivious tracker.
    // Locality needs per-channel, per-ISP member pools to draw from:
    // run denser than the shared config (two channels, double scale,
    // one day) so the joiner's ISP actually has members to offer.
    let base_cfg = StudyConfig {
        seed: 555,
        scale: 0.002,
        window_days: 1,
        sample_every: SimDuration::from_hours(2),
        degree_captures: vec![],
        min_graph_nodes: 10,
        channels: Some(magellan::workload::ChannelDirectory::uusee(2)),
        ..StudyConfig::default()
    };
    let oblivious = MagellanStudy::new(base_cfg.clone()).run();
    let mut aware_cfg = base_cfg;
    aware_cfg.sim.tracker_locality_fraction = 0.7;
    let aware = MagellanStudy::new(aware_cfg).run();
    // Active-traffic locality is supply-limited (each ISP's peer
    // upload roughly covers its own demand), so the tracker's direct
    // effect shows in the *partner pool* composition.
    assert!(
        aware.fig6.pool.mean() > oblivious.fig6.pool.mean() + 0.03,
        "locality tracker did not shift the partner pool: {:.3} vs {:.3}",
        aware.fig6.pool.mean(),
        oblivious.fig6.pool.mean()
    );
    // And the active-traffic share must not get *worse*.
    assert!(
        aware.fig6.indegree.mean() > oblivious.fig6.indegree.mean() - 0.05,
        "locality tracker reduced active intra-ISP share: {:.3} vs {:.3}",
        aware.fig6.indegree.mean(),
        oblivious.fig6.indegree.mean()
    );
    // And it must not wreck delivery.
    assert!(
        aware.fig3.cctv1.mean() > oblivious.fig3.cctv1.mean() - 0.2,
        "locality tracker broke quality: {:.3} vs {:.3}",
        aware.fig3.cctv1.mean(),
        oblivious.fig3.cctv1.mean()
    );
}
