//! Default-scale shape validation — the EXPERIMENTS.md claims as
//! executable assertions.
//!
//! These run the default experiment scale (~1,000 concurrent peers,
//! the full 14-day window) and take minutes, so they are `#[ignore]`d
//! by default. Run them in release mode:
//!
//! ```text
//! cargo test --release --test full_scale -- --ignored
//! ```

use magellan::analysis::study::{MagellanStudy, StudyConfig};
use magellan::netsim::StudyCalendar;
use std::sync::OnceLock;

fn default_scale_report() -> &'static magellan::prelude::StudyReport {
    static REPORT: OnceLock<magellan::prelude::StudyReport> = OnceLock::new();
    REPORT.get_or_init(|| MagellanStudy::new(StudyConfig::default()).run())
}

/// Reduced-scale smoke version of [`fig1_population_shape`]: the same
/// 14-day calendar and flash crowd at 0.05× the default population
/// (scale 0.0005 ≈ 50 concurrent peers vs the default 0.01 ≈ 1,000),
/// with the shape assertions loosened for the miniature statistics.
/// Runs on every `cargo test` so the default-scale scenario path is
/// exercised continuously, not only in `--ignored` runs.
///
/// Wall-clock budget (documented, not enforced): ~20 s in a debug
/// build on one core of the baseline box; if it creeps past a minute,
/// shrink `scale` or `window_days` rather than `#[ignore]`-ing it.
#[test]
fn smoke_population_shape_at_reduced_scale() {
    let cfg = StudyConfig {
        scale: 0.0005,
        min_graph_nodes: 10,
        ..StudyConfig::default()
    };
    let r = MagellanStudy::new(cfg).run();
    // Stable peers are a minority but a visible one (the full-scale
    // band is 0.2..=0.45; tiny populations are noisier).
    let ratio = r.fig1a.stable_ratio();
    assert!((0.05..=0.8).contains(&ratio), "stable ratio {ratio:.3}");
    // The flash crowd still dominates the window even in miniature.
    let (t, _) = r.fig1a.total.max_point().unwrap();
    let fc = StudyCalendar::default().flash_crowd_instant();
    assert_eq!(t.day(), fc.day(), "window peak at {t}, expected day 5");
    // Every figure family produced points.
    assert!(!r.fig7.global.c.is_empty(), "fig7 empty");
    assert!(!r.fig8.all.is_empty(), "fig8 empty");
    assert!(r.fig8.all.mean() > 0.0, "reciprocity not positive");
}

#[test]
#[ignore = "minutes-long default-scale run; use cargo test --release -- --ignored"]
fn fig1_population_shape() {
    let r = default_scale_report();
    // Stable ≈ 1/3 of total.
    let ratio = r.fig1a.stable_ratio();
    assert!((0.2..=0.45).contains(&ratio), "stable ratio {ratio:.3}");
    // The flash crowd is the peak of the whole window, at 9 p.m. day 5.
    let (t, _) = r.fig1a.total.max_point().unwrap();
    let fc = StudyCalendar::default().flash_crowd_instant();
    assert!(
        t.day() == fc.day() && (20..=22).contains(&t.hour()),
        "window peak at {t}, expected the flash crowd"
    );
}

#[test]
#[ignore = "minutes-long default-scale run; use cargo test --release -- --ignored"]
fn fig3_quality_shape() {
    let r = default_scale_report();
    assert!(
        r.fig3.cctv1.mean() > 0.65,
        "CCTV1 mean {:.3} below the paper's ~3/4 regime",
        r.fig3.cctv1.mean()
    );
    let ratio = r.fig3.viewer_ratio();
    assert!((3.5..=6.5).contains(&ratio), "viewer ratio {ratio:.1}");
}

#[test]
#[ignore = "minutes-long default-scale run; use cargo test --release -- --ignored"]
fn fig4_flash_crowd_capture_rejects_power_law() {
    let r = default_scale_report();
    let flash = r
        .fig4
        .snapshots
        .iter()
        .find(|s| s.label.contains("flash"))
        .expect("flash capture configured");
    let v = flash.partner_powerlaw.as_ref().expect("fit available");
    assert!(
        !v.plausible,
        "flash-crowd capture accepted as power law (ks {:.3} thr {:.3}, n {})",
        v.fit.ks,
        v.threshold,
        flash.partners.total()
    );
    // Indegree stays in the paper's regime.
    let p99 = flash.indegree.quantile(0.99).unwrap();
    assert!((15..=45).contains(&p99), "indegree p99 {p99}");
}

#[test]
#[ignore = "minutes-long default-scale run; use cargo test --release -- --ignored"]
fn fig6_fig7_fig8_shapes() {
    let r = default_scale_report();
    // Fig 6: clustering well above mixing.
    assert!(
        r.fig6.indegree.mean() > r.fig6.baseline + 0.1,
        "fig6 {:.3} vs baseline {:.3}",
        r.fig6.indegree.mean(),
        r.fig6.baseline
    );
    // Fig 7: an order of magnitude of clustering, L ≈ L_rand.
    let ratio = r.fig7.global.clustering_ratio();
    assert!(ratio >= 10.0, "C/C_rand = {ratio:.1}");
    let l = r.fig7.global.l.mean();
    let lr = r.fig7.global.l_rand.mean();
    assert!(l / lr < 2.0, "L {l:.2} vs L_rand {lr:.2}");
    // Fig 8: positive and ordered.
    assert!(r.fig8.all.mean() > 0.3);
    assert!(r.fig8.intra.mean() > r.fig8.all.mean());
    assert!(r.fig8.inter.mean() < r.fig8.all.mean());
}
