//! The paper's four headline insights, asserted end-to-end on a
//! small-scale run of the full pipeline:
//!
//! 1. the platform scales — streaming quality holds through the
//!    flash crowd;
//! 2. active-degree distributions are not power laws;
//! 3. ISP-level clusters form from quality-driven peer selection;
//! 4. peers exchange blocks reciprocally (ρ > 0).

use magellan::analysis::study::{MagellanStudy, StudyConfig};
use magellan::netsim::{SimDuration, SimTime, StudyCalendar};
use magellan::prelude::*;
use std::sync::OnceLock;

/// One shared run covering the flash-crowd day (day 5): scale kept
/// small so the whole file stays debug-test friendly.
fn crowd_week() -> &'static StudyReport {
    static REPORT: OnceLock<StudyReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        MagellanStudy::new(StudyConfig {
            seed: 1964,
            scale: 0.002,
            window_days: 6, // day 5 = Friday Oct 6, the Mid-Autumn gala
            sample_every: SimDuration::from_hours(1),
            degree_captures: vec![
                ("9am d2".into(), SimTime::at(2, 9, 0)),
                ("9pm d2".into(), SimTime::at(2, 21, 0)),
                ("9pm d5 flash".into(), SimTime::at(5, 21, 0)),
            ],
            min_graph_nodes: 10,
            ..StudyConfig::default()
        })
        .run()
    })
}

#[test]
fn finding_1_scalability_under_the_flash_crowd() {
    let r = crowd_week();
    let fc = StudyCalendar::default().flash_crowd_instant();
    let before = fc - SimDuration::from_days(1);
    // The crowd visibly grows the population...
    let pop_peak = r.fig1a.total.at(fc).unwrap();
    let pop_before = r.fig1a.total.at(before).unwrap();
    assert!(
        pop_peak > pop_before * 1.3,
        "no flash crowd visible: {pop_before} -> {pop_peak}"
    );
    // ...while streaming quality does not collapse: the majority of
    // viewers keep satisfactory rates through the spike. (The paper
    // saw CCTV4 quality *rise*; that needs populations where peer
    // upload dominates supply — EXPERIMENTS.md checks it at the
    // larger default scale. At this test scale CCTV4 has a handful
    // of viewers, so the statistically meaningful assertion is on
    // CCTV1, the 5x-bigger channel.)
    let q_peak = r.fig3.cctv1.at(fc).unwrap_or(1.0);
    assert!(
        q_peak >= 0.5,
        "CCTV1 quality collapsed under the crowd: {q_peak:.2}"
    );
}

#[test]
fn finding_2_degrees_are_not_power_law() {
    // At test scale the KS threshold (∝ 1/√n) is too lenient to
    // reject anything, so assert the paper's *structural* argument
    // instead: a power law is monotone decreasing from its minimum
    // degree, while UUSee's distributions carry an interior spike.
    // (The statistical rejection at larger n is covered by the
    // magellan-graph unit tests and the default-scale run recorded in
    // EXPERIMENTS.md.)
    let r = crowd_week();
    for snap in &r.fig4.snapshots {
        let h = &snap.partners;
        let spike = h.spike().expect("non-empty capture");
        let min_deg = (1..)
            .find(|&d| h.count_at(d) > 0)
            .expect("some peer has partners");
        assert!(
            spike > min_deg,
            "[{}] mode {spike} at the minimum degree {min_deg}: monotone like a power law",
            snap.label
        );
        assert!(
            h.fraction_at(spike) >= 1.5 * h.fraction_at(min_deg),
            "[{}] no interior spike: f({spike}) = {:.3} vs f({min_deg}) = {:.3}",
            snap.label,
            h.fraction_at(spike),
            h.fraction_at(min_deg)
        );
    }
}

#[test]
fn finding_2b_indegree_is_capped_despite_many_partners() {
    let r = crowd_week();
    // Paper: peers know many partners, yet the active indegree stays
    // flat (~10 there); the gap between partner count and active
    // indegree is the signature.
    let partners = r.fig5.partners.mean();
    let indeg = r.fig5.indegree.mean();
    assert!(
        partners > indeg * 1.5,
        "partner count {partners:.1} not well above indegree {indeg:.1}"
    );
    assert!(indeg < 30.0, "indegree {indeg:.1} out of regime");
}

#[test]
fn finding_3_isp_clustering_above_mixing_baseline() {
    let r = crowd_week();
    assert!(
        r.fig6.indegree.mean() > r.fig6.baseline + 0.03,
        "intra-ISP indegree {:.3} vs baseline {:.3}",
        r.fig6.indegree.mean(),
        r.fig6.baseline
    );
    assert!(
        r.fig6.outdegree.mean() > r.fig6.baseline + 0.03,
        "intra-ISP outdegree {:.3} vs baseline {:.3}",
        r.fig6.outdegree.mean(),
        r.fig6.baseline
    );
    // And the stable-peer graph clusters far above random.
    assert!(
        r.fig7.global.clustering_ratio() > 2.0,
        "C/C_rand = {:.1}",
        r.fig7.global.clustering_ratio()
    );
}

#[test]
fn finding_4_reciprocity_positive_and_ordered_by_isp() {
    let r = crowd_week();
    assert!(r.fig8.all.mean() > 0.1, "rho = {:.3}", r.fig8.all.mean());
    // Paper's Fig. 8B ordering: intra-ISP above the whole topology,
    // inter-ISP below it.
    assert!(
        r.fig8.intra.mean() >= r.fig8.all.mean() - 0.02,
        "intra {:.3} not above all {:.3}",
        r.fig8.intra.mean(),
        r.fig8.all.mean()
    );
    assert!(
        r.fig8.inter.mean() <= r.fig8.all.mean() + 0.02,
        "inter {:.3} not below all {:.3}",
        r.fig8.inter.mean(),
        r.fig8.all.mean()
    );
}

#[test]
fn stable_backbone_is_roughly_a_third() {
    let r = crowd_week();
    let ratio = r.fig1a.stable_ratio();
    assert!(
        (0.15..=0.55).contains(&ratio),
        "stable/total ratio {ratio:.3} far from the paper's ~1/3"
    );
}

#[test]
fn channel_audience_ratio_matches_the_papers_footnote() {
    // Paper footnote 2: CCTV1's concurrent audience is about five
    // times CCTV4's (~30,000 vs ~6,000). The ratio is configured in
    // the channel directory but must survive the whole pipeline —
    // sessions, churn, and the CCTV-targeted flash crowd included.
    let r = crowd_week();
    let ratio = r.fig3.viewer_ratio();
    assert!(
        (3.0..=7.5).contains(&ratio),
        "CCTV1:CCTV4 viewer ratio {ratio:.1} far from the paper's ~5"
    );
}
