//! End-to-end crash drills against the real `magellan` binary.
//!
//! A study killed with `abort()` at a deterministic tick and resumed
//! from its checkpoint must finish with an archive and a report that
//! are *byte-identical* to an uninterrupted run — at one worker and at
//! eight, since resume restores every RNG stream and the metric
//! kernels are schedule-independent. A flipped byte in a sealed
//! segment must cost only the damaged frame, with the damage
//! quantified in the replayed report.

use std::path::{Path, PathBuf};
use std::process::Command;

fn magellan_bin() -> &'static str {
    env!("CARGO_BIN_EXE_magellan")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("magellan-crashdrill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Shared study parameters, small enough to finish in seconds.
fn study_args(dir: &Path, threads: u64) -> Vec<String> {
    [
        "study",
        "--archive",
        &dir.to_string_lossy(),
        "--seed",
        "9",
        "--scale",
        "0.0005",
        "--days",
        "1",
        "--sample-every-mins",
        "240",
        "--checkpoint-every-ticks",
        "64",
        "--segment-bytes",
        "16384",
        "--threads",
        &threads.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn run(args: &[String]) -> std::process::Output {
    Command::new(magellan_bin())
        .args(args)
        .output()
        .expect("spawn magellan")
}

/// Every archive file (segments + manifest), name-sorted, with bytes.
fn archive_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir.join("archive"))
        .expect("read archive dir")
        .map(|e| {
            let e = e.expect("dir entry");
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("read archive file"),
            )
        })
        .collect();
    files.sort();
    files
}

fn kill_and_resume_at(threads: u64) {
    let clean = temp_dir(&format!("clean-{threads}"));
    let crashed = temp_dir(&format!("crashed-{threads}"));
    let clean_report = clean.join("report.txt");
    let crashed_report = crashed.join("report.txt");

    let mut args = study_args(&clean, threads);
    args.extend([
        "--report".into(),
        clean_report.to_string_lossy().into_owned(),
    ]);
    let out = run(&args);
    assert!(out.status.success(), "clean run failed: {out:?}");

    // Crash: abort() at tick 150 (checkpoints land every 64 ticks).
    let mut args = study_args(&crashed, threads);
    args.extend(["--kill-at-tick".into(), "150".into()]);
    let out = run(&args);
    assert!(!out.status.success(), "the crash drill was supposed to die");

    // Resume and finish.
    let resume_args: Vec<String> = [
        "study",
        "--archive",
        &crashed.to_string_lossy(),
        "--resume",
        "--threads",
        &threads.to_string(),
        "--report",
        &crashed_report.to_string_lossy(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = run(&resume_args);
    assert!(out.status.success(), "resume failed: {out:?}");

    assert_eq!(
        archive_files(&clean),
        archive_files(&crashed),
        "resumed archive is not byte-identical at {threads} thread(s)"
    );
    assert_eq!(
        std::fs::read(&clean_report).expect("clean report"),
        std::fs::read(&crashed_report).expect("crashed report"),
        "resumed report is not byte-identical at {threads} thread(s)"
    );

    std::fs::remove_dir_all(&clean).ok();
    std::fs::remove_dir_all(&crashed).ok();
}

#[test]
fn kill_and_resume_is_byte_identical_single_threaded() {
    kill_and_resume_at(1);
}

#[test]
fn kill_and_resume_is_byte_identical_parallel() {
    kill_and_resume_at(8);
}

#[test]
fn corrupted_segment_costs_one_frame_and_is_reported() {
    let dir = temp_dir("corrupt");
    let out = run(&study_args(&dir, 1));
    assert!(out.status.success(), "study failed: {out:?}");

    // Count clean records via replay, then flip one byte mid-segment.
    let replay = |d: &Path| {
        let out = run(&[
            "replay".into(),
            "--archive".into(),
            d.to_string_lossy().into_owned(),
        ]);
        assert!(out.status.success(), "replay failed: {out:?}");
        String::from_utf8(out.stdout).expect("utf8 report")
    };
    let clean_text = replay(&dir);
    assert!(
        clean_text.contains("corrupt regions 0"),
        "clean replay reported damage:\n{clean_text}"
    );

    let seg = std::fs::read_dir(dir.join("archive"))
        .expect("read archive dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().starts_with("seg-"))
                .unwrap_or(false)
        })
        .min()
        .expect("a sealed segment");
    let mut bytes = std::fs::read(&seg).expect("read segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&seg, bytes).expect("write segment");

    let text = replay(&dir);
    assert!(
        text.contains("corrupt regions 1"),
        "damage not reported:\n{text}"
    );
    let recovered = |t: &str| -> u64 {
        t.lines()
            .find(|l| l.contains("Archive replay"))
            .and_then(|l| {
                l.split_whitespace()
                    .skip_while(|w| *w != "—")
                    .nth(1)
                    .and_then(|w| w.parse().ok())
            })
            .expect("recovered count in report text")
    };
    let lost = recovered(&clean_text) - recovered(&text);
    assert!(
        (1..=4).contains(&lost),
        "one flipped byte should cost a frame or two, lost {lost}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
