//! Flash-crowd scalability (paper §4.1, Figs. 1A & 3).
//!
//! The paper's most striking claim: during the Mid-Autumn flash crowd
//! the fraction of CCTV4 viewers with satisfactory rates *rose*,
//! because a larger peer population brings more aggregate upload
//! capacity. This example runs the flash-crowd week twice — once with
//! the crowd, once without — and compares population and quality
//! around the event.
//!
//! ```text
//! cargo run --release --example flash_crowd -- [--scale 0.002]
//! ```

use magellan::analysis::study::StudyConfig;
use magellan::netsim::{SimDuration, SimTime};
use magellan::prelude::*;

fn arg(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn config(scale: f64, with_crowd: bool) -> StudyConfig {
    StudyConfig {
        seed: 1006,
        scale,
        window_days: 7, // includes Friday Oct 6 (day 5)
        sample_every: SimDuration::from_mins(30),
        flash_crowds: if with_crowd { None } else { Some(vec![]) },
        ..StudyConfig::default()
    }
}

fn main() {
    let scale = arg("--scale", 0.002);
    println!("Flash-crowd study — scale {scale}\n");

    let crowd = MagellanStudy::new(config(scale, true)).run();
    let calm = MagellanStudy::new(config(scale, false)).run();
    let fc = StudyCalendar::default().flash_crowd_instant();

    print!("{}", crowd.fig1a.render_text());
    print!("{}", crowd.fig3.render_text());

    let day_before = fc - SimDuration::from_days(1);
    let pop_before = crowd.fig1a.total.at(day_before).unwrap_or(0.0);
    let pop_peak = crowd.fig1a.total.at(fc).unwrap_or(0.0);
    let pop_calm = calm.fig1a.total.at(fc).unwrap_or(0.0);
    println!(
        "\npopulation: Thu 9pm {pop_before:.0} -> flash-crowd peak {pop_peak:.0} \
         ({:.2}x; same instant without the crowd: {pop_calm:.0})",
        pop_peak / pop_before.max(1.0)
    );

    let q4_before = crowd.fig3.cctv4.at(day_before).unwrap_or(0.0);
    let q4_peak = crowd.fig3.cctv4.at(fc).unwrap_or(0.0);
    println!("CCTV4 satisfied viewers: Thu 9pm {q4_before:.2} -> during crowd {q4_peak:.2}");
    if q4_peak >= q4_before - 0.05 {
        println!(
            "=> quality held (or rose) under a {:.1}x population spike: the protocol scales,\n   \
             exactly the paper's flash-crowd finding.",
            pop_peak / pop_calm.max(1.0)
        );
    } else {
        println!("=> quality dropped under the crowd at this scale; rerun with a larger --scale.");
    }

    // The paper also notes satisfaction is a bit *higher* at the
    // daily peak hours in general.
    let quiet = SimTime::at(4, 5, 0);
    let busy = SimTime::at(4, 21, 0);
    println!(
        "\nCCTV1 satisfied viewers at 5am {:.2} vs 9pm {:.2} (paper: higher at peak hours)",
        crowd.fig3.cctv1.at(quiet).unwrap_or(0.0),
        crowd.fig3.cctv1.at(busy).unwrap_or(0.0)
    );
}
