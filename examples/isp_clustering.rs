//! ISP-level "natural clustering" (paper §4.2.3 & §4.3, Figs. 6 & 7).
//!
//! The UUSee protocol never looks at ISP labels, yet its topology
//! clusters inside ISPs because intra-ISP paths have better measured
//! throughput/RTT and the active-set selection chases quality. This
//! example demonstrates the mechanism by running the same workload
//! twice: with quality-driven selection and with the
//! `random_selection` ablation — under random selection the intra-ISP
//! degree fraction collapses to the ISP-share mixing baseline.
//!
//! ```text
//! cargo run --release --example isp_clustering -- [--scale 0.002]
//! ```

use magellan::analysis::study::StudyConfig;
use magellan::netsim::SimDuration;
use magellan::prelude::*;

fn arg(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn config(scale: f64, random_selection: bool) -> StudyConfig {
    let mut cfg = StudyConfig {
        seed: 7,
        scale,
        window_days: 2,
        sample_every: SimDuration::from_mins(60),
        ..StudyConfig::default()
    };
    cfg.sim.random_selection = random_selection;
    cfg
}

fn main() {
    let scale = arg("--scale", 0.002);
    println!("ISP clustering study — scale {scale}\n");

    let quality = MagellanStudy::new(config(scale, false)).run();
    let random = MagellanStudy::new(config(scale, true)).run();

    print!("{}", quality.fig6.render_text());
    print!("{}", quality.fig7.render_text());
    print!("{}", quality.fig8.render_text());

    // The paper: "Similar properties were observed for sub topologies
    // for other ISPs as well." Check every populated China ISP at one
    // evening snapshot.
    {
        use magellan::analysis::graphs::{active_link_graph, per_isp_smallworld, NodeScope};
        use magellan::netsim::{IspDatabase, SimTime};
        use magellan::overlay::OverlaySim;
        use magellan::trace::SnapshotBuilder;
        let cfg = config(scale, false);
        let scenario = cfg.scenario();
        let mut sim = OverlaySim::new(scenario, cfg.sim.clone());
        let db: IspDatabase = sim.isp_database().clone();
        let (store, _) = sim
            .run_collecting()
            .expect("example scenario is self-consistent");
        let snap = SnapshotBuilder::new(&store).at(SimTime::at(1, 21, 0));
        let reports: Vec<_> = snap.reports().cloned().collect();
        let g = active_link_graph(&reports, NodeScope::StableOnly);
        println!("\nper-ISP small-world panels at Mon 9 p.m.:");
        for (isp, r) in per_isp_smallworld(&g, &db, 8) {
            println!(
                "  {:<14} n {:>4} | C {:.3} vs C_rand {:.4} | L {:?}",
                isp.name(),
                r.n,
                r.c,
                r.c_rand,
                r.l
            );
        }
    }

    println!("\n--- ablation: quality-driven vs random selection ---");
    println!(
        "intra-ISP indegree fraction : {:.3} (quality) vs {:.3} (random) | mixing baseline {:.3}",
        quality.fig6.indegree.mean(),
        random.fig6.indegree.mean(),
        quality.fig6.baseline
    );
    println!(
        "intra-ISP outdegree fraction: {:.3} (quality) vs {:.3} (random)",
        quality.fig6.outdegree.mean(),
        random.fig6.outdegree.mean()
    );
    println!(
        "reciprocity rho             : {:.3} (quality) vs {:.3} (random)",
        quality.fig8.all.mean(),
        random.fig8.all.mean()
    );
    if quality.fig6.indegree.mean() > random.fig6.indegree.mean() + 0.02 {
        println!(
            "=> clustering above the baseline comes from bandwidth-aware peer selection,\n   \
             the causal mechanism the paper proposes."
        );
    } else {
        println!("=> gap too small at this scale; rerun with a larger --scale.");
    }
}
