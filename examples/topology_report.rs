//! A complete topology characterization of one overlay snapshot —
//! every metric in `magellan-graph` applied to the simulated UUSee
//! mesh, the way a measurement paper's "graph properties" table would
//! present it, with ER/WS/BA reference topologies alongside.
//!
//! ```text
//! cargo run --release --example topology_report -- [--scale 0.002]
//! ```

use magellan::analysis::graphs::{active_link_graph, NodeScope};
use magellan::graph::assortativity::{assortativity, AssortKind};
use magellan::graph::clustering::{clustering_coefficient, transitivity};
use magellan::graph::degree::{average_degree, degree_histogram, DegreeKind};
use magellan::graph::kcore::core_decomposition;
use magellan::graph::paths::{
    average_path_length, largest_component_fraction, PathSampling, PathTreatment,
};
use magellan::graph::powerlaw;
use magellan::graph::random::{barabasi_albert, gnm_undirected, watts_strogatz, RandomBaseline};
use magellan::graph::reciprocity::{garlaschelli_reciprocity, simple_reciprocity};
use magellan::graph::DiGraph;
use magellan::netsim::{SimTime, StudyCalendar};
use magellan::overlay::{OverlaySim, SimConfig};
use magellan::prelude::*;
use magellan::trace::SnapshotBuilder;
use std::hash::Hash;

fn arg(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn characterize<N: Eq + Hash + Clone>(name: &str, g: &DiGraph<N>) {
    let n = g.node_count();
    let m_und = g.undirected_edge_count();
    let c = clustering_coefficient(g);
    let t = transitivity(g);
    let l = average_path_length(g, PathTreatment::Undirected, PathSampling::Exact)
        .map(|s| s.mean)
        .unwrap_or(f64::NAN);
    let baseline = RandomBaseline::analytic(n, m_und);
    let r = simple_reciprocity(g);
    let rho = garlaschelli_reciprocity(g)
        .map(|v| format!("{v:+.3}"))
        .unwrap_or("n/a".into());
    let assort = assortativity(g, AssortKind::Undirected)
        .map(|v| format!("{v:+.3}"))
        .unwrap_or("n/a".into());
    let giant = largest_component_fraction(g);
    let h = degree_histogram(g, DegreeKind::Undirected);
    let pl = powerlaw::assess(&h.to_samples())
        .map(|v| {
            format!(
                "{} (alpha {:.2}, ks {:.3})",
                if v.plausible { "plausible" } else { "rejected" },
                v.fit.alpha,
                v.fit.ks
            )
        })
        .unwrap_or_else(|e| format!("n/a ({e})"));
    println!("== {name} ==");
    println!(
        "  nodes {n}, undirected edges {m_und}, giant component {:.2}",
        giant
    );
    println!(
        "  degree: mean {:.1}, spike {:?}, max {:?}",
        average_degree(g, DegreeKind::Undirected),
        h.spike(),
        h.max_degree()
    );
    println!(
        "  clustering C {:.3} (transitivity {:.3}) vs C_rand {:.4}",
        c, t, baseline.c_expected
    );
    println!(
        "  path length L {:.2} vs L_rand {}",
        l,
        baseline
            .l_expected
            .map(|v| format!("{v:.2}"))
            .unwrap_or("n/a".into())
    );
    let cores = core_decomposition(g);
    println!("  reciprocity r {r:.3}, rho {rho}; assortativity {assort}");
    println!(
        "  k-core: degeneracy {}, deepest-core size {}",
        cores.degeneracy(),
        cores.core_size(cores.degeneracy())
    );
    println!("  power law: {pl}\n");
}

fn main() {
    let scale = arg("--scale", 0.002);
    println!("Topology characterization — scale {scale}\n");

    // Simulate one day and snapshot the evening peak.
    let scenario = Scenario::builder(70_000, scale)
        .calendar(StudyCalendar { window_days: 1 })
        .build();
    let mut sim = OverlaySim::new(scenario, SimConfig::default());
    let (store, summary) = sim
        .run_collecting()
        .expect("example scenario is self-consistent");
    println!(
        "simulated {} joins, {} reports, peak {} concurrent\n",
        summary.joins, summary.reports, summary.peak_concurrent
    );
    let snap = SnapshotBuilder::new(&store).at(SimTime::at(0, 21, 0));
    let reports: Vec<_> = snap.reports().cloned().collect();
    let overlay = active_link_graph(&reports, NodeScope::StableOnly);
    characterize("UUSee stable-peer overlay (9 p.m.)", &overlay);

    // Matched references.
    let n = overlay.node_count().max(10);
    let m = overlay.undirected_edge_count().max(20);
    characterize("Erdős–Rényi G(n, m) match", &gnm_undirected(n, m, 1));
    let k = ((2 * m) / n).max(2) & !1usize; // even mean degree
    if k < n {
        characterize(
            "Watts–Strogatz (same n, k, beta 0.1)",
            &watts_strogatz(n, k.max(2), 0.1, 2),
        );
    }
    let ba_m = (m / n).max(1);
    characterize("Barabási–Albert (same n, m)", &barabasi_albert(n, ba_m, 3));

    println!(
        "reading: the overlay clusters like WS, stays reciprocal unlike BA/ER,\n\
         and its degree distribution is spiked where BA's is a power law —\n\
         the combination the paper uses to distinguish streaming meshes from\n\
         file-sharing overlays."
    );
}
