//! Quickstart: run a small-scale Magellan study end to end and print
//! every figure of the paper.
//!
//! ```text
//! cargo run --release --example quickstart -- [--scale 0.002] [--days 3] [--seed 2006]
//! ```
//!
//! `--scale 1.0` reproduces the paper's ~100k concurrent peers (slow);
//! the default keeps a laptop happy while preserving every *shape* the
//! paper reports.

use magellan::analysis::study::StudyConfig;
use magellan::prelude::*;

fn arg(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = arg("--scale", 0.002);
    let days = arg("--days", 3.0) as u64;
    let seed = arg("--seed", 2006.0) as u64;

    println!("Magellan quickstart — seed {seed}, scale {scale}, {days} day(s)\n");
    let cfg = StudyConfig {
        seed,
        scale,
        window_days: days,
        ..StudyConfig::default()
    };
    let report = MagellanStudy::new(cfg).run();
    println!("{}", report.render_text());

    println!("--- interpretation ---");
    println!(
        "stable/total ratio {:.2} (paper: ~1/3); reciprocity rho {:.2} (paper: consistently > 0);",
        report.fig1a.stable_ratio(),
        report.fig8.all.mean()
    );
    println!(
        "clustering ratio C/C_rand {:.0}x (paper: more than an order of magnitude).",
        report.fig7.global.clustering_ratio()
    );
}
