//! Beyond the paper: ISP-locality-aware tracker bootstrap.
//!
//! Magellan closes by noting its findings "will be instrumental
//! towards further improvements of P2P streaming protocol design".
//! The most direct one its data suggests: if ISP clustering emerges
//! anyway because intra-ISP paths are better, let the tracker help —
//! bootstrap new peers mostly from their own ISP. This example runs
//! the same workload with the paper's ISP-oblivious tracker and with
//! a locality-aware one, and compares inter-ISP link load (the cost
//! carriers care about) against delivered streaming quality.
//!
//! ```text
//! cargo run --release --example locality_tracker -- [--scale 0.002]
//! ```

use magellan::analysis::study::StudyConfig;
use magellan::netsim::SimDuration;
use magellan::prelude::*;

fn arg(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn config(scale: f64, locality: f64) -> StudyConfig {
    let mut cfg = StudyConfig {
        seed: 1701,
        scale,
        window_days: 2,
        sample_every: SimDuration::from_mins(60),
        // Locality needs per-channel, per-ISP member pools to draw
        // from; concentrate the audience on two channels so the demo
        // scale has material to work with (a full-scale run shows the
        // effect with the whole 20-channel lineup).
        channels: Some(magellan::workload::ChannelDirectory::uusee(2)),
        ..StudyConfig::default()
    };
    cfg.sim.tracker_locality_fraction = locality;
    cfg
}

fn main() {
    let scale = arg("--scale", 0.002);
    println!("Locality-aware tracker study — scale {scale}\n");

    let oblivious = MagellanStudy::new(config(scale, 0.0)).run();
    let aware = MagellanStudy::new(config(scale, 0.7)).run();

    println!("                         ISP-oblivious   locality-aware");
    println!(
        "intra-ISP indegree frac     {:>8.3}        {:>8.3}",
        oblivious.fig6.indegree.mean(),
        aware.fig6.indegree.mean()
    );
    println!(
        "intra-ISP outdegree frac    {:>8.3}        {:>8.3}",
        oblivious.fig6.outdegree.mean(),
        aware.fig6.outdegree.mean()
    );
    println!(
        "intra-ISP partner pool      {:>8.3}        {:>8.3}",
        oblivious.fig6.pool.mean(),
        aware.fig6.pool.mean()
    );
    println!(
        "CCTV1 satisfied fraction    {:>8.3}        {:>8.3}",
        oblivious.fig3.cctv1.mean(),
        aware.fig3.cctv1.mean()
    );
    println!(
        "mean indegree               {:>8.1}        {:>8.1}",
        oblivious.fig5.indegree.mean(),
        aware.fig5.indegree.mean()
    );
    println!(
        "reciprocity rho             {:>8.3}        {:>8.3}",
        oblivious.fig8.all.mean(),
        aware.fig8.all.mean()
    );

    let gain = aware.fig6.pool.mean() - oblivious.fig6.pool.mean();
    let quality_delta = aware.fig3.cctv1.mean() - oblivious.fig3.cctv1.mean();
    println!(
        "\n=> intra-ISP partner-pool share {} by {:.1} percentage points with quality change {:+.3}.",
        if gain >= 0.0 { "rises" } else { "falls" },
        gain.abs() * 100.0,
        quality_delta
    );
    if quality_delta > -0.05 {
        println!(
            "   Locality-aware bootstrapping shifts load off inter-carrier peering links\n   \
             (the congested resource in 2006 China) without sacrificing delivery —\n   \
             the protocol improvement the paper's clustering finding points at."
        );
    } else {
        println!(
            "   The pool shifts intra-ISP at a modest delivery cost at this demo scale\n   \
             (thin per-ISP supply); at larger --scale values the per-ISP pools are\n   \
             self-sufficient and the trade-off disappears."
        );
    }
}
