//! Edge reciprocity (paper §4.4, Fig. 8).
//!
//! Does mesh streaming actually run on mutual exchange, or does
//! content trickle down a tree? The Garlaschelli–Loffredo reciprocity
//! ρ answers it: ρ < 0 for trees, ρ ≈ 0 for random wiring, ρ > 0 for
//! genuinely reciprocal meshes. This example prints the measured ρ
//! over time (whole topology, intra-ISP, inter-ISP) alongside the
//! tree and random baselines computed on matched graphs.
//!
//! ```text
//! cargo run --release --example reciprocity_probe -- [--scale 0.002]
//! ```

use magellan::analysis::study::StudyConfig;
use magellan::graph::random::gnm_directed;
use magellan::graph::reciprocity::{garlaschelli_reciprocity, simple_reciprocity, tree_baseline};
use magellan::netsim::SimDuration;
use magellan::prelude::*;

fn arg(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = arg("--scale", 0.002);
    println!("Reciprocity probe — scale {scale}\n");

    let cfg = StudyConfig {
        seed: 808,
        scale,
        window_days: 2,
        sample_every: SimDuration::from_mins(60),
        ..StudyConfig::default()
    };
    let report = MagellanStudy::new(cfg).run();
    print!("{}", report.fig8.render_text());

    println!("\nrho over time (all | intra | inter):");
    for (i, &(t, all)) in report.fig8.all.points.iter().enumerate() {
        let intra = report.fig8.intra.points.get(i).map_or(f64::NAN, |p| p.1);
        let inter = report.fig8.inter.points.get(i).map_or(f64::NAN, |p| p.1);
        println!("  {t}: {all:+.3} | {intra:+.3} | {inter:+.3}");
    }

    // Matched baselines: a random digraph of a typical snapshot's
    // size, and the analytic tree value.
    let n = 500;
    let m = 3_000;
    let random = gnm_directed(n, m, 17);
    println!(
        "\nbaselines on a matched G({n}, {m}): r = {:.3}, rho = {:+.3} (≈0 expected)",
        simple_reciprocity(&random),
        garlaschelli_reciprocity(&random).unwrap()
    );
    println!(
        "a tree of the same density would give rho = {:+.4}",
        tree_baseline(&random)
    );
    println!(
        "\nmeasured mean rho = {:+.3}: {}",
        report.fig8.all.mean(),
        if report.fig8.all.mean() > 0.05 {
            "strongly reciprocal — pairs trade segments both ways, as the paper found"
        } else {
            "weak reciprocity at this scale; rerun with a larger --scale"
        }
    );
    println!(
        "intra-ISP rho {:+.3} > all {:+.3} > inter-ISP {:+.3}: {}",
        report.fig8.intra.mean(),
        report.fig8.all.mean(),
        report.fig8.inter.mean(),
        if report.fig8.intra.mean() >= report.fig8.inter.mean() {
            "ISP clusters are where the trading happens (Fig. 8B's ordering)"
        } else {
            "ordering differs at this scale"
        }
    );
}
