//! Fault injection: run the same small study clean and under the
//! combined stress schedule (tracker + trace-server outages, an
//! inter-ISP partition, a 15% ungraceful crash wave, 10% report loss
//! with an evening spike), and show how the measurement degrades
//! gracefully instead of lying.
//!
//! ```text
//! cargo run --release --example faults -- [--scale 0.001] [--days 2] [--seed 2006]
//! ```

use magellan::analysis::study::StudyConfig;
use magellan::netsim::SimTime;
use magellan::prelude::*;

fn arg(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = arg("--scale", 0.001);
    let days = (arg("--days", 2.0) as u64).max(2);
    let seed = arg("--seed", 2006.0) as u64;
    let fault_day = 1; // the stress schedule packs into day 1

    println!("Magellan fault drill — seed {seed}, scale {scale}, {days} day(s), faults on day {fault_day}\n");
    let base = StudyConfig {
        seed,
        scale,
        window_days: days,
        degree_captures: vec![
            ("9pm d1".into(), SimTime::at(1, 21, 0)),
            ("12:30 d1 (mid-outage)".into(), SimTime::at(1, 12, 30)),
        ],
        ..StudyConfig::default()
    };
    let clean = MagellanStudy::new(base.clone()).run();
    let mut stressed_cfg = base;
    stressed_cfg.faults = FaultPlan::combined_stress(fault_day);
    let stressed = MagellanStudy::new(stressed_cfg).run();

    println!("=== faulted run ===\n{}", stressed.render_text());

    println!("--- degradation, clean vs faulted ---");
    let f = &stressed.sim.faults;
    println!(
        "crashes {} | tracker denials {} (retries {}, recovered {}) | gossip fallbacks {}",
        f.crashes,
        f.tracker_denied_joins,
        f.bootstrap_retries,
        f.bootstrap_recoveries,
        f.gossip_fallbacks
    );
    println!(
        "reports: clean {} vs faulted {} ({} lost in flight)",
        clean.sim.reports, stressed.sim.reports, f.reports_lost
    );
    println!(
        "partial samples: {} (clean: {})",
        stressed.partial_samples.len(),
        clean.partial_samples.len()
    );
    println!(
        "findings survive — reciprocity {:.3} vs {:.3}, clustering ratio {:.0}x vs {:.0}x, stable/total {:.2} vs {:.2}",
        clean.fig8.all.mean(),
        stressed.fig8.all.mean(),
        clean.fig7.global.clustering_ratio(),
        stressed.fig7.global.clustering_ratio(),
        clean.fig1a.stable_ratio(),
        stressed.fig1a.stable_ratio(),
    );
}
