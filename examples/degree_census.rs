//! Degree distributions and the power-law question (paper §4.2,
//! Figs. 4 & 5).
//!
//! Earlier P2P measurement work reported power-law degree
//! distributions; Magellan found spiked, protocol-shaped
//! distributions instead. This example prints the three degree
//! distributions at morning/evening instants, runs the
//! Clauset-style power-law test on them, and — as a control — shows
//! the same test *accepting* a Barabási–Albert graph.
//!
//! ```text
//! cargo run --release --example degree_census -- [--scale 0.002]
//! ```

use magellan::analysis::study::StudyConfig;
use magellan::graph::powerlaw;
use magellan::graph::random::barabasi_albert;
use magellan::netsim::SimTime;
use magellan::prelude::*;

fn arg(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = arg("--scale", 0.002);
    println!("Degree census — scale {scale}\n");

    let cfg = StudyConfig {
        seed: 404,
        scale,
        window_days: 2,
        degree_captures: vec![
            ("9am d1".into(), SimTime::at(1, 9, 0)),
            ("9pm d1".into(), SimTime::at(1, 21, 0)),
        ],
        ..StudyConfig::default()
    };
    let report = MagellanStudy::new(cfg).run();

    print!("{}", report.fig4.render_text());
    print!("{}", report.fig5.render_text());

    for snap in &report.fig4.snapshots {
        println!("\n[{}] partner-count pmf (degree: fraction):", snap.label);
        for p in snap.partners.pmf().iter().take(30) {
            let bar = "#".repeat((p.fraction * 200.0).round() as usize);
            println!("  {:>4}: {:.4} {bar}", p.degree, p.fraction);
        }
    }

    // Control: the same test on a genuine power-law topology.
    let ba = barabasi_albert(3_000, 2, 99);
    let degrees: Vec<usize> = ba.node_ids().map(|id| ba.undirected_degree(id)).collect();
    match powerlaw::assess(&degrees) {
        Ok(v) => println!(
            "\ncontrol — Barabási–Albert graph: power-law plausible = {} (alpha {:.2}, ks {:.3})",
            v.plausible, v.fit.alpha, v.fit.ks
        ),
        Err(e) => println!("\ncontrol fit failed: {e}"),
    }
    for snap in &report.fig4.snapshots {
        if let Some(v) = &snap.partner_powerlaw {
            println!(
                "UUSee-like [{}]: power-law plausible = {} (ks {:.3} vs threshold {:.3}) — {}",
                snap.label,
                v.plausible,
                v.fit.ks,
                v.threshold,
                if v.plausible {
                    "unexpectedly plausible at this scale"
                } else {
                    "rejected, as the paper argues"
                }
            );
        }
    }
}
