#!/usr/bin/env bash
# Metric-engine benchmark baseline: builds the workspace in release
# mode and runs the machine-readable bench binary, writing
# BENCH_metrics.json at the repo root. Progress goes to stderr; the
# JSON document is everything the binary prints on stdout.
#
# The file records ns/op for each Csr kernel at three graph scales and
# 1 vs 8 workers, the legacy DiGraph-walk baselines the kernels
# replaced, the magellan-traced ingest throughput (reports/sec through
# one shard's sans-I/O admission path), cold/warm wall time of the
# magellan-lint gate, end-to-end study latency per sample instant, and
# host_cores (thread scaling is only physically possible when the
# measuring box has >1 core).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release -p magellan-bench -p magellan-lint" >&2
# The lint binary is benched too (cold/warm gate wall time). Built as
# a separate invocation: `--bin bench_metrics` filters the target list
# across *every* selected package, so a combined command would skip
# the magellan-lint binary and time whatever stale build was lying
# around.
cargo build --release -p magellan-bench --bin bench_metrics
cargo build --release -p magellan-lint

echo "==> running bench_metrics (writes BENCH_metrics.json)" >&2
# Stage into a temp file and rename so an interrupted run never leaves
# a truncated BENCH_metrics.json behind.
./target/release/bench_metrics > BENCH_metrics.json.tmp
mv BENCH_metrics.json.tmp BENCH_metrics.json

echo "==> wrote BENCH_metrics.json" >&2
