#!/usr/bin/env bash
# Pre-PR gate for the Magellan workspace: formatting, clippy with
# warnings denied, the magellan-lint determinism/invariant pass, and
# the test suite. Run from anywhere inside the repo.
#
# The two advisory clippy lints (unwrap_used, indexing_slicing) are
# allowed here on purpose: their enforced counterpart is magellan-lint's
# budgeted C1 rule — see DESIGN.md §9.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- \
    -D warnings \
    -A clippy::unwrap_used \
    -A clippy::indexing_slicing

echo "==> magellan-lint"
cargo run -q -p magellan-lint

echo "==> cargo test"
cargo test -q --workspace

echo "==> all checks passed"
