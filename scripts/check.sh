#!/usr/bin/env bash
# Pre-PR gate for the Magellan workspace: formatting, clippy with
# warnings denied, the magellan-lint pass (line rules, D4 taint, the
# H2/H3/P2 hot-path cost analysis, and the L1/S1/U1 concurrency
# pass), the test suite, a loom smoke over the worker pool, and the
# end-to-end smokes: fault schedule, crash recovery, the
# multi-process loopback-ingest drill against magellan-traced, and
# the chaos-ingest drill through the tracetool nemesis proxy. Run
# from anywhere inside the repo.
#
# The two advisory clippy lints (unwrap_used, indexing_slicing) are
# allowed here on purpose: their enforced counterpart is magellan-lint's
# budgeted C1 rule — see DESIGN.md §9.
#
# Every stage prints a banner; on failure the trap below names the
# stage that died, so CI logs point straight at the culprit.
set -euo pipefail

cd "$(dirname "$0")/.."

STAGE="startup"
trap 'status=$?; if [ "$status" -ne 0 ]; then echo "==> FAILED at stage: ${STAGE} (exit ${status})" >&2; fi' EXIT

stage() {
    STAGE="$1"
    echo
    echo "=================================================================="
    echo "==> stage: ${STAGE}"
    echo "=================================================================="
}

stage "cargo fmt --check"
cargo fmt --all --check

stage "cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- \
    -D warnings \
    -A clippy::unwrap_used \
    -A clippy::indexing_slicing

stage "magellan-lint"
# Full pass — line rules plus both call-graph analyses (D4 backward
# taint, H2/H3/P2 forward hot-path cost). Human report on stdout;
# SARIF written for the CI code-scanning artifact (target/ is
# gitignored, so local runs stay clean).
mkdir -p target
cargo run -q -p magellan-lint -- --format sarif --output target/magellan-lint.sarif

stage "kernel equivalence (bit-parallel BFS vs scalar, incremental vs rebuild)"
# Fast fail-early pass over the equivalence tests that pin the
# perf-path kernels to their reference implementations: the 64-wide
# bit-parallel BFS against per-source scalar BFS, and the incremental
# snapshot engine against full recomputation. These are the guarantees
# the study's byte-determinism rests on, so they get their own stage
# before the full suite.
cargo test -q -p magellan-graph --lib multi64
cargo test -q -p magellan-graph --lib incremental

stage "cargo test"
cargo test -q --workspace

stage "loom smoke (pool queue/shutdown protocol)"
# A bounded-iteration pass over the worker-pool model tests: the
# cfg(loom) shim swaps the pool's std primitives for the in-tree
# schedule-perturbing stand-in (vendor/loom), so shutdown draining,
# parked-worker wakeup, and steal races get exercised under many
# interleavings. The nightly workflow runs the full-iteration suite
# plus Miri; this is the fail-early version (DESIGN.md §10).
RUSTFLAGS="--cfg loom" LOOM_MAX_ITER=16 \
    cargo test -q -p magellan-par --test loom

stage "fault-schedule smoke"
# A 0.05x-scale study under the combined stress schedule (tracker +
# server outages, partition, crash wave, report loss): proves the
# fault path stays wired end to end. Warm runtime is ~1 s in release.
cargo run -q --release --example faults -- --scale 0.0005 --days 2 > /dev/null

stage "crash-recovery smoke"
# Kill a durable study with abort() at a deterministic tick, resume it
# from its checkpoint, and require the archive and report to be
# byte-identical to an uninterrupted run (DESIGN.md §12).
cargo build -q --release --bin magellan --bin tracetool
SMOKE=$(mktemp -d)
COMMON=(--seed 9 --scale 0.0005 --days 1 --sample-every-mins 240 \
        --checkpoint-every-ticks 64 --segment-bytes 16384 --threads 2)
./target/release/magellan study --archive "${SMOKE}/clean" "${COMMON[@]}" \
    --report "${SMOKE}/clean.txt" > /dev/null
./target/release/magellan study --archive "${SMOKE}/crashed" "${COMMON[@]}" \
    --kill-at-tick 150 > /dev/null 2>&1 && {
        echo "==> crash drill did not crash" >&2; exit 1; } || true
./target/release/magellan study --archive "${SMOKE}/crashed" --resume \
    --threads 2 --report "${SMOKE}/crashed.txt" > /dev/null
diff -r "${SMOKE}/clean/archive" "${SMOKE}/crashed/archive"
cmp "${SMOKE}/clean.txt" "${SMOKE}/crashed.txt"
./target/release/tracetool fsck "${SMOKE}/crashed" > /dev/null
rm -rf "${SMOKE}"

stage "loopback-ingest smoke"
# The networked service drill (DESIGN.md §13): two drive processes
# stream the same study over real loopback TCP sockets into one serve
# process, and the replayed traced archive must match the replayed
# in-process archive line for line (minus the service-only `Ingest`
# accounting lines). Then an overload drill — tiny queues, few client
# retries — must shed instead of stalling and still close balanced
# books. `wait` propagates each child's exit status, so a panicking
# serve or drive fails the stage.
cargo build -q --release --bin magellan-traced
INGEST=$(mktemp -d)
PARAMS=(--seed 9 --scale 0.0005 --days 1 --sample-every-mins 240)
./target/release/magellan study --archive "${INGEST}/inproc" "${PARAMS[@]}" \
    > /dev/null
./target/release/magellan-traced serve --archive "${INGEST}/traced" \
    --listen 127.0.0.1:0 --port-file "${INGEST}/port" \
    --clients 2 --shards 2 "${PARAMS[@]}" > "${INGEST}/serve.txt" &
SERVE=$!
for _ in $(seq 1 150); do [ -s "${INGEST}/port" ] && break; sleep 0.2; done
ADDR=$(cat "${INGEST}/port")
./target/release/magellan-traced drive --server "${ADDR}" --client-id 0 \
    --clients 2 --transport tcp "${PARAMS[@]}" > /dev/null &
DRIVE0=$!
./target/release/magellan-traced drive --server "${ADDR}" --client-id 1 \
    --clients 2 --transport tcp "${PARAMS[@]}" > /dev/null
wait "${DRIVE0}"
wait "${SERVE}"
grep -q '^balanced yes$' "${INGEST}/serve.txt"
./target/release/magellan replay --archive "${INGEST}/inproc" \
    | grep -v '^Ingest' > "${INGEST}/inproc.txt"
./target/release/magellan replay --archive "${INGEST}/traced" \
    | grep -v '^Ingest' > "${INGEST}/traced.txt"
cmp "${INGEST}/inproc.txt" "${INGEST}/traced.txt"
./target/release/magellan-traced serve --archive "${INGEST}/overload" \
    --listen 127.0.0.1:0 --port-file "${INGEST}/oport" \
    --clients 1 --shards 1 --pending-cap 8 --queue-cap 2 "${PARAMS[@]}" \
    > "${INGEST}/overload.txt" &
OSERVE=$!
for _ in $(seq 1 150); do [ -s "${INGEST}/oport" ] && break; sleep 0.2; done
./target/release/magellan-traced drive --server "$(cat "${INGEST}/oport")" \
    --client-id 0 --clients 1 --transport udp --max-attempts 3 \
    --backoff-cap-ms 8 "${PARAMS[@]}" > /dev/null
wait "${OSERVE}"
grep -q '^balanced yes$' "${INGEST}/overload.txt"
rm -rf "${INGEST}"

stage "chaos-ingest smoke"
# The hostile-network drill (DESIGN.md §14): the same two-drive TCP
# study, but every client byte now crosses `tracetool nemesis` — the
# seeded chaos proxy injecting latency, partial/coalesced writes,
# stalls, resets, and mid-stream kills. The drives carry a reconnect
# budget, the serve process must close balanced books, and the
# replayed archive must still match the in-process study byte for
# byte. The schedule itself must be a pure function of the seed:
# printing it twice must agree exactly.
CHAOS=$(mktemp -d)
./target/release/magellan study --archive "${CHAOS}/inproc" "${PARAMS[@]}" \
    > /dev/null
./target/release/magellan-traced serve --archive "${CHAOS}/traced" \
    --listen 127.0.0.1:0 --port-file "${CHAOS}/port" \
    --clients 2 --shards 2 "${PARAMS[@]}" > "${CHAOS}/serve.txt" &
CSERVE=$!
for _ in $(seq 1 150); do [ -s "${CHAOS}/port" ] && break; sleep 0.2; done
./target/release/tracetool nemesis --upstream "$(cat "${CHAOS}/port")" \
    --listen 127.0.0.1:0 --port-file "${CHAOS}/proxy-port" \
    --profile tcp --seed 9 > /dev/null &
NEMESIS=$!
for _ in $(seq 1 150); do [ -s "${CHAOS}/proxy-port" ] && break; sleep 0.2; done
CADDR=$(cat "${CHAOS}/proxy-port")
./target/release/magellan-traced drive --server "${CADDR}" --client-id 0 \
    --clients 2 --transport tcp --reconnect 64 "${PARAMS[@]}" > /dev/null &
CDRIVE0=$!
./target/release/magellan-traced drive --server "${CADDR}" --client-id 1 \
    --clients 2 --transport tcp --reconnect 64 "${PARAMS[@]}" > /dev/null
wait "${CDRIVE0}"
wait "${CSERVE}"
kill "${NEMESIS}" 2> /dev/null || true
grep -q '^balanced yes$' "${CHAOS}/serve.txt"
./target/release/magellan replay --archive "${CHAOS}/inproc" \
    | grep -v '^Ingest' > "${CHAOS}/inproc.txt"
./target/release/magellan replay --archive "${CHAOS}/traced" \
    | grep -v '^Ingest' > "${CHAOS}/traced.txt"
cmp "${CHAOS}/inproc.txt" "${CHAOS}/traced.txt"
./target/release/tracetool nemesis --print-schedule 64 --flows 4 --seed 9 \
    --profile tcp > "${CHAOS}/sched-a.txt"
./target/release/tracetool nemesis --print-schedule 64 --flows 4 --seed 9 \
    --profile tcp > "${CHAOS}/sched-b.txt"
cmp "${CHAOS}/sched-a.txt" "${CHAOS}/sched-b.txt"
rm -rf "${CHAOS}"

stage "done"
echo "==> all checks passed"
