//! Mirror of `loom::sync`: std primitives wrapped with yield
//! injection at every acquire/wait/notify, plus a bounded condvar
//! wait that turns lost wakeups into panics instead of hangs.

use std::time::Duration;

pub use std::sync::{Arc, LockResult, MutexGuard, PoisonError};

/// Re-export of std atomics (real loom models these; the stand-in
/// relies on the host's actual atomics, which is sound — just not
/// exhaustive).
pub mod atomic {
    pub use std::sync::atomic::*;
}

/// How long [`Condvar::wait`] blocks before declaring the wakeup
/// lost. Model-suite critical sections are microseconds long; five
/// seconds of silence means the notify never came.
const WAIT_BOUND: Duration = Duration::from_secs(5);

/// A mutex that touches the yield schedule before every acquisition.
/// API-compatible with `std::sync::Mutex` (and loom 0.7): `lock`
/// returns a [`LockResult`] over the std guard.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock after a scheduled yield decision, so the
    /// winner of a contended acquire varies across model iterations.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        crate::sched::yield_point();
        self.0.lock()
    }
}

/// A condition variable with yield injection on wait/notify and a
/// bounded wait: if no notification arrives within [`WAIT_BOUND`],
/// the wait panics — a lost-wakeup bug fails the test instead of
/// hanging the suite (real loom reports the same situation as a
/// deadlocked execution).
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Releases `guard` and blocks until notified (or panics after
    /// [`WAIT_BOUND`] — see the type docs). Spurious wakeups are
    /// possible, exactly as with `std`.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        crate::sched::yield_point();
        match self.0.wait_timeout(guard, WAIT_BOUND) {
            Ok((reacquired, timeout)) => {
                assert!(
                    !timeout.timed_out(),
                    "loom (vendored): condvar wait exceeded {WAIT_BOUND:?} — \
                     lost wakeup or deadlock in the modeled protocol"
                );
                Ok(reacquired)
            }
            Err(poisoned) => {
                let (reacquired, _) = poisoned.into_inner();
                Err(PoisonError::new(reacquired))
            }
        }
    }

    /// Wakes one waiter, after a scheduled yield decision (so the
    /// notify can land before or after a racing wait across model
    /// iterations).
    pub fn notify_one(&self) {
        crate::sched::yield_point();
        self.0.notify_one();
    }

    /// Wakes every waiter, after a scheduled yield decision.
    pub fn notify_all(&self) {
        crate::sched::yield_point();
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waker = {
            let pair = Arc::clone(&pair);
            crate::thread::spawn(move || {
                let (flag, cv) = &*pair;
                *flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
                cv.notify_all();
            })
        };
        let (flag, cv) = &*pair;
        let mut ready = flag.lock().unwrap_or_else(PoisonError::into_inner);
        while !*ready {
            ready = cv.wait(ready).unwrap_or_else(PoisonError::into_inner);
        }
        drop(ready);
        waker.join().expect("waker thread");
    }
}
