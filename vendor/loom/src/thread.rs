//! Mirror of `loom::thread`: real OS threads with yield points
//! injected at spawn boundaries.

pub use std::thread::{yield_now, JoinHandle};

/// Spawns a real OS thread, touching the yield schedule on both sides
/// of the spawn so the parent/child race is perturbed across model
/// iterations.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    crate::sched::yield_point();
    std::thread::spawn(move || {
        crate::sched::yield_point();
        f()
    })
}
