//! The deterministic yield schedule behind [`crate::model`].
//!
//! Each model iteration owns an FNV-1a-derived seed; every
//! synchronization touch point ([`yield_point`]) hashes the seed with
//! a global touch counter and yields the OS scheduler when the hash
//! lands in a fixed residue class (~1 in 3 touches). The counter is
//! shared across threads, so concurrent touches interleave its
//! increments — that cross-thread nondeterminism is *input* to the
//! perturbation, not a bug: the seed still forces a different yield
//! pattern per iteration, which is all the sampling needs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Seed for the current model iteration.
static SEED: AtomicU64 = AtomicU64::new(0);

/// Monotone counter of synchronization touch points since the last
/// [`reseed`].
static CLOCK: AtomicU64 = AtomicU64::new(0);

/// FNV-1a 64 over the little-endian bytes of `x` — tiny, stable,
/// dependency-free.
fn fnv64(x: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Starts the yield schedule for model iteration `iteration`.
pub(crate) fn reseed(iteration: u64) {
    SEED.store(fnv64(iteration), Ordering::SeqCst);
    CLOCK.store(0, Ordering::SeqCst);
}

/// One synchronization touch point: maybe hand the OS scheduler a
/// chance to run someone else, per the current iteration's schedule.
pub(crate) fn yield_point() {
    let tick = CLOCK.fetch_add(1, Ordering::Relaxed);
    let seed = SEED.load(Ordering::Relaxed);
    if fnv64(seed ^ tick.wrapping_mul(0x9e37_79b9_7f4a_7c15)).is_multiple_of(3) {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_tick() {
        let a = fnv64(fnv64(3) ^ 41u64.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let b = fnv64(fnv64(3) ^ 41u64.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        assert_eq!(a, b);
        // Distinct iterations produce distinct seeds (no collision in
        // the tiny range the iteration loop uses).
        let seeds: std::collections::BTreeSet<u64> = (0..64).map(fnv64).collect();
        assert_eq!(seeds.len(), 64);
    }
}
