//! Offline stand-in for the `loom` model checker.
//!
//! The build container has no access to crates.io, so this façade
//! mirrors the small slice of loom's API the `magellan-par` model
//! suite uses (`loom::model`, `loom::thread`, `loom::sync`). It is
//! **not** an exhaustive model checker: where real loom enumerates
//! every reachable interleaving under the C11 memory model, this
//! stand-in re-runs the closure under *bounded deterministic schedule
//! perturbation* — each [`model`] iteration reseeds an FNV-1a
//! sequence that decides, at every synchronization touch point
//! (lock, condvar wait/notify, spawn), whether to inject an OS-level
//! yield. Different seeds push the real scheduler through different
//! interleavings, so protocol bugs (lost wakeups, double-claims,
//! shutdown races) get many distinct executions per test run instead
//! of one.
//!
//! Two properties make hangs and races *fail* instead of wedging CI:
//!
//! * [`sync::Condvar::wait`] bounds each wait at five seconds and
//!   panics on timeout — a lost wakeup becomes a red test, not a hung
//!   job.
//! * The yield decisions are a pure function of `(iteration, touch
//!   counter)`, so a failing seed reproduces locally with the same
//!   `LOOM_MAX_ITER`.
//!
//! Swapping in real loom later needs no source changes in the model
//! suite: the API subset here matches loom 0.7 (`model` takes
//! `Fn() + Send + Sync + 'static`, `sync::Mutex::lock` returns a
//! `LockResult`, etc.). The iteration bound comes from the
//! `LOOM_MAX_ITER` environment variable (default 64), mirroring
//! loom's own `LOOM_MAX_BRANCHES`-style env knobs.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod sync;
pub mod thread;

mod sched;

/// Runs `f` repeatedly — `LOOM_MAX_ITER` times, default 64 — under a
/// fresh deterministic yield schedule per iteration.
///
/// Real loom explores interleavings exhaustively; this stand-in
/// explores a bounded pseudo-random sample of OS schedules. The
/// closure bounds match loom 0.7 so call sites are source-compatible.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iterations = std::env::var("LOOM_MAX_ITER")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64);
    for iteration in 0..iterations {
        sched::reseed(iteration);
        f();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn model_runs_the_default_iteration_count() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        // LOOM_MAX_ITER may be set by an outer harness; accept any
        // positive count but require the loop to actually repeat the
        // closure.
        super::model(|| {
            RUNS.fetch_add(1, Ordering::SeqCst);
        });
        assert!(RUNS.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn perturbed_threads_still_join() {
        super::model(|| {
            let flag = crate::sync::Arc::new(AtomicUsize::new(0));
            let t = {
                let flag = crate::sync::Arc::clone(&flag);
                crate::thread::spawn(move || flag.store(7, Ordering::SeqCst))
            };
            t.join().expect("spawned thread completes");
            assert_eq!(flag.load(Ordering::SeqCst), 7);
        });
    }
}
