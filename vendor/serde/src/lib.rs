//! Offline stand-in for `serde`.
//!
//! The workspace's `#[derive(Serialize, Deserialize)]` annotations are
//! schema documentation: no code path serializes through serde (the
//! trace JSONL codec is hand-written). This stub supplies the two
//! marker traits and re-exports the no-op derives so the annotated
//! types compile in the offline build container.

#![forbid(unsafe_code)]

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
