//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value from the deterministic stream.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates values satisfying `f`, rejecting the rest by retry.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// [`Strategy::prop_filter`] adapter (bounded retry).
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Wraps a generation closure as a strategy (used by `prop_compose!`).
pub struct FnStrategy<F>(pub F);

impl<V, F> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> V,
{
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128 - start as u128).wrapping_add(1);
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let off = rng.below(span as u64) as $u;
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_int_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).new_value(rng) as f32
    }
}

/// String patterns (`"\\PC*"` and friends) generate arbitrary short
/// strings; the pattern itself is not interpreted beyond choosing
/// printable ASCII vs. full Unicode.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let len = rng.below(64) as usize;
        let unicode = self.contains("\\PC") || self.contains("\\p");
        (0..len)
            .map(|_| {
                if unicode && rng.below(4) == 0 {
                    // Any scalar value except surrogates.
                    loop {
                        if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                            return c;
                        }
                    }
                } else {
                    (b' ' + rng.below(95) as u8) as char
                }
            })
            .collect()
    }
}

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, F);
impl_tuple!(A, B, C, D, E, F, G);
impl_tuple!(A, B, C, D, E, F, G, H);
impl_tuple!(A, B, C, D, E, F, G, H, I);
impl_tuple!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let (a, b, w) = (0u8..12, 3u8..=5, -4i64..4).new_value(&mut rng);
            assert!(a < 12);
            assert!((3..=5).contains(&b));
            assert!((-4..4).contains(&w));
            let f = (0.5f64..2.0).new_value(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::from_seed(2);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut rng) % 2, 0);
        }
    }
}
