//! Sampling helpers (`prop::sample::Index`).

/// An abstract index resolved against a concrete collection length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Wraps raw random bits.
    pub fn from_raw(raw: u64) -> Self {
        Index { raw }
    }

    /// Resolves to an index in `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.raw % len as u64) as usize
    }
}
