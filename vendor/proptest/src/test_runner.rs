//! Deterministic case runner and its RNG.

use std::fmt;

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case violated a `prop_assert*!`.
    Fail(String),
    /// The case was filtered out by `prop_assume!`.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Deterministic xoshiro256++ stream used to generate case inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A stream derived from an arbitrary seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn base_seed() -> u64 {
    match std::env::var("MAGELLAN_PROPTEST_SEED") {
        Ok(v) => v.parse().unwrap_or_else(|_| fnv1a(&v)),
        Err(_) => 0,
    }
}

/// Runs `case` until `config.cases` accepted cases pass, panicking on
/// the first failure with enough context to reproduce it.
///
/// # Panics
///
/// Panics when a case fails or when `prop_assume!` rejects too great a
/// fraction of the generated inputs.
pub fn run<F>(name: &str, config: &Config, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = base_seed() ^ fnv1a(name);
    let mut accepted: u32 = 0;
    let mut attempts: u32 = 0;
    let max_attempts = config.cases.saturating_mul(10).max(100);
    while accepted < config.cases {
        if attempts >= max_attempts {
            panic!(
                "property {name}: prop_assume! rejected too many inputs \
                 ({accepted}/{attempts} accepted)"
            );
        }
        let mut rng = TestRng::from_seed(seed.wrapping_add(attempts as u64));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {name} failed at case {attempts} \
                     (seed {seed:#018x}): {msg}"
                );
            }
        }
        attempts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic() {
        let mut seen_a = Vec::new();
        run("det", &Config::with_cases(8), |rng| {
            seen_a.push(rng.next_u64());
            Ok(())
        });
        let mut seen_b = Vec::new();
        run("det", &Config::with_cases(8), |rng| {
            seen_b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(seen_a, seen_b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_context() {
        run("boom", &Config::with_cases(4), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    #[should_panic(expected = "rejected too many")]
    fn pathological_assume_is_detected() {
        run("reject", &Config::with_cases(4), |_| {
            Err(TestCaseError::Reject)
        });
    }
}
