//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification: fixed or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A strategy for vectors of `element` values with the given length.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_respected() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            let v = vec(0u8..10, 2..6).new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            let fixed = vec(0u8..10, 7).new_value(&mut rng);
            assert_eq!(fixed.len(), 7);
        }
    }
}
