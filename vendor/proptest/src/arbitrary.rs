//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: tests feed these into numeric code.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                return c;
            }
        }
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}
