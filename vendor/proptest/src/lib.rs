//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the workspace's property
//! tests use — `proptest!`, `prop_compose!`, `prop_assert*!`,
//! `prop_assume!`, range / tuple / `vec` / `any` strategies and
//! `prop_map` — on top of a deterministic xoshiro256++ stream. Every
//! case is a pure function of (test name, case index), so failures
//! reproduce exactly; there is no shrinking and no persistence. Set
//! `MAGELLAN_PROPTEST_SEED` to perturb the stream for exploratory
//! runs.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary;
pub mod collection;
pub mod sample;

/// The `proptest::prelude::prop` namespace.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };
}

/// Runs every `#[test]` item in the block as a property over its
/// strategies. Supports an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run(stringify!($name), &config, |__rng| {
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                    let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __out
                });
            }
        )*
    };
}

/// Defines a function returning a composed strategy:
/// `prop_compose! { fn name()(x in s, ...) -> T { expr } }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:tt)*)($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// `assert!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `assert_ne!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Rejects the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
