//! Offline stand-in for `serde_derive`.
//!
//! Magellan uses `#[derive(Serialize, Deserialize)]` purely as schema
//! documentation — nothing in the workspace bounds on the serde traits
//! or calls a serializer (the JSONL codec is hand-rolled). These
//! derives therefore expand to nothing, which keeps the annotated
//! types compiling without the real proc-macro stack (`syn`/`quote`)
//! that the offline build container cannot fetch.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts and ignores `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts and ignores `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
