//! Offline stand-in for `criterion`.
//!
//! Provides just enough of the criterion API for the workspace's
//! benchmark harnesses to compile and produce rough timings offline:
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros. Each bench runs
//! a short calibrated loop and prints a mean time — useful as a smoke
//! signal, not a statistics engine.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Drives the timed closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Times `f`, printing a mean per-iteration estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up pass, then a short measured loop.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let per_iter = start.elapsed().as_secs_f64() / self.iters as f64;
        println!("    {:>12.3} µs/iter", per_iter * 1e6);
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(&format!("{}/{}", self.name, id.into_benchmark_id().name), f);
        self
    }

    /// Runs `f` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_named(
            &format!("{}/{}", self.name, id.into_benchmark_id().name),
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Conversion into a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

fn run_named<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    println!("bench {name}");
    let mut b = Bencher { iters: 10 };
    f(&mut b);
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs `f` as a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(name, f);
        self
    }
}

/// Declares a group function invoking each listed bench target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` invoking each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
