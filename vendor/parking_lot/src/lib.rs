//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning
//! API: `lock()` returns the guard directly, recovering the data if a
//! previous holder panicked (parking_lot has no poisoning at all, so
//! recovery is the faithful translation).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard for [`RwLock`] reads.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard for [`RwLock`] writes.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
