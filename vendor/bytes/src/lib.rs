//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the trace wire codec uses: [`Bytes`] (an
//! immutable buffer with a consuming read cursor), [`BytesMut`] (a
//! growable write buffer), and the big-endian [`Buf`]/[`BufMut`]
//! accessor traits. Semantics match the real crate where Magellan
//! relies on them: `advance`/`get_*` consume from the front, reads
//! past the end panic (callers length-check with [`Buf::remaining`]),
//! and all multi-byte accessors are network byte order.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read access to a byte cursor, big-endian accessors included.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// A view of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes out, consuming them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice past end of buffer"
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Copies the next `len` bytes into an owned [`Bytes`],
    /// consuming them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes past end of buffer");
        let out = Bytes::from(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of slice");
        *self = &self[n..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, n: usize) {
        (**self).advance(n);
    }
}

/// Write access to a growable byte buffer, big-endian accessors
/// included.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// An immutable byte buffer with a consuming front cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    start: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer over static data (copied here — the stand-in has no
    /// zero-copy machinery, only the real crate's signature).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data)
    }

    /// Unread length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new buffer holding the given sub-range of the unread bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.as_slice()[range].to_vec(),
            start: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, start: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            start: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            start: 0,
        }
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Preallocates room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at` exceeds the current length.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to past end of BytesMut");
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: src.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.data.len(), "advance past end of BytesMut");
        self.data.drain(..n);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_roundtrip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_f64(2.5);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 2 + 4 + 8 + 8);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_f64(), 2.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.advance(2);
        assert_eq!(&b.slice(0..2)[..], &[3, 4]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overrun_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u16();
    }
}
