//! Offline, deterministic stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.10 API that
//! Magellan actually uses: the [`Rng`] core trait, the [`RngExt`]
//! extension with `random_range`, [`SeedableRng::seed_from_u64`], a
//! [`rngs::StdRng`] built on xoshiro256++ (seeded via SplitMix64), and
//! slice shuffling. Everything here is a pure function of the seed —
//! no OS entropy, no thread-local state — which is exactly the
//! determinism contract `magellan-lint` enforces on the simulation.

#![forbid(unsafe_code)]

/// Core random-number source: a stream of `u64` words.
pub trait Rng {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    // 53 mantissa bits; 2^-53 spacing keeps the result strictly < 1.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire widening-multiply bounded draw (bias < 2^-64).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start.wrapping_add(hi)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    // Full-width range: every word is a valid draw.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start.wrapping_add(hi)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let off = (rng.next_u64() as u128 * span as u128 >> 64) as $u;
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        let wide: f64 = (self.start as f64..self.end as f64).sample_from(rng);
        wide as f32
    }
}

/// Ready-made generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Expose the raw xoshiro256++ state so callers can persist a
        /// generator mid-stream (checkpoint/resume) and later rebuild
        /// it with [`StdRng::from_state`] at the exact same point.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state previously captured with
        /// [`StdRng::state`]. The restored generator produces the same
        /// output stream as the original from that point onward.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related randomness.
pub mod seq {
    use super::{Rng, RngExt};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly picks one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u8 = rng.random_range(3..9);
            assert!((3..9).contains(&v));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i64 = rng.random_range(-10i64..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v: usize = rng.random_range(0..=2);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn float_unit_interval_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
